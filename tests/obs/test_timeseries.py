"""Time-series sampling: rings, rates, windowed quantiles, edges."""

import math

import pytest

from repro.obs import MetricsRegistry, TimeSeriesSampler, histogram_quantile


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(histogram_quantile((1.0, 10.0), (0, 0, 0), 0.99))

    def test_no_finite_buckets_is_nan(self):
        # Every observation landed in +Inf and there is nothing finite
        # to interpolate against.
        assert math.isnan(histogram_quantile((), (5,), 0.5))

    def test_single_bucket_interpolates_from_zero(self):
        # 10 observations <= 2.0: the median interpolates to the middle
        # of the [0, 2.0] bucket.
        assert histogram_quantile((2.0,), (10, 0), 0.5) == pytest.approx(1.0)

    def test_interpolation_across_buckets(self):
        # 4 observations: 2 in (0,1], 2 in (1,10].  p75 ranks 3rd, i.e.
        # halfway through the second bucket.
        value = histogram_quantile((1.0, 10.0), (2, 2, 0), 0.75)
        assert value == pytest.approx(5.5)

    def test_rank_in_inf_bucket_clamps_to_highest_finite_bound(self):
        # p99 ranks inside +Inf; the estimate must not exceed the
        # highest finite bound (Prometheus semantics).
        assert histogram_quantile((1.0, 10.0), (1, 1, 8), 0.99) == 10.0

    def test_quantile_zero_and_one(self):
        bounds, counts = (1.0, 10.0), (2, 2, 0)
        assert histogram_quantile(bounds, counts, 0.0) == 0.0
        assert histogram_quantile(bounds, counts, 1.0) == 10.0

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="within"):
            histogram_quantile((1.0,), (1, 0), 1.5)

    def test_count_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bucket counts"):
            histogram_quantile((1.0, 2.0), (1, 2), 0.5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            histogram_quantile((1.0,), (1, -1), 0.5)


class TestSampling:
    def test_counter_series_accumulates_points(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        counter = registry.counter("cells")
        for stamp in (0.0, 1.0, 2.0):
            counter.inc(2)
            sampler.sample(now=stamp)
        assert sampler.series("cells") == [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]
        assert sampler.latest("cells") == 6.0

    def test_capacity_bounds_the_ring(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry, capacity=3)
        counter = registry.counter("cells")
        for stamp in range(10):
            counter.inc()
            sampler.sample(now=float(stamp))
        points = sampler.series("cells")
        assert len(points) == 3
        assert points[-1] == (9.0, 10.0)

    def test_capacity_must_hold_a_delta(self):
        with pytest.raises(ValueError, match="at least 2"):
            TimeSeriesSampler(MetricsRegistry(), capacity=1)

    def test_never_sampled_metric_is_nan(self):
        sampler = TimeSeriesSampler(MetricsRegistry())
        assert math.isnan(sampler.latest("ghost"))
        assert math.isnan(sampler.increase("ghost"))
        assert math.isnan(sampler.rate("ghost"))
        assert math.isnan(sampler.quantile("ghost", 0.5))


class TestIncreaseAndRate:
    def test_all_time_increase_is_the_absolute_total(self):
        # Counters are born at zero, so increase(window=None) must
        # agree exactly with the raw registry/Prometheus value — the
        # property the SLO layer leans on.
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        registry.counter("done").inc(7)
        sampler.sample(now=0.0)
        assert sampler.increase("done") == 7.0

    def test_windowed_increase_takes_the_delta(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        counter = registry.counter("done")
        for stamp in range(6):
            counter.inc()
            sampler.sample(now=float(stamp))
        assert sampler.increase("done", window=2.5) == 2.0
        assert sampler.increase("done") == 6.0

    def test_increase_sums_matching_label_sets(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        registry.counter("done", worker="a").inc(2)
        registry.counter("done", worker="b").inc(3)
        sampler.sample(now=0.0)
        assert sampler.increase("done") == 5.0
        assert sampler.increase("done", worker="a") == 2.0

    def test_rate_over_observed_span(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        counter = registry.counter("done")
        sampler.sample(now=0.0)
        counter.inc(10)
        sampler.sample(now=5.0)
        assert sampler.rate("done") == pytest.approx(2.0)

    def test_rate_with_single_sample_is_zero(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        registry.counter("done").inc()
        sampler.sample(now=0.0)
        assert sampler.rate("done") == 0.0


class TestWindowedQuantiles:
    def test_all_time_quantile_matches_registry_state(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.5, 5.0, 5.0):
            histogram.observe(value)
        sampler.sample(now=0.0)
        assert sampler.quantile("lat", 0.5) == pytest.approx(1.0)

    def test_windowed_quantile_sees_only_recent_observations(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        histogram.observe(0.5)  # old and fast
        sampler.sample(now=0.0)
        for _ in range(10):
            histogram.observe(9.0)  # recent and slow
        sampler.sample(now=10.0)
        windowed = sampler.quantile("lat", 0.5, window=5.0)
        all_time = sampler.quantile("lat", 0.5)
        assert windowed > all_time  # the old fast point is excluded
        assert windowed == pytest.approx(5.5)  # middle of (1, 10]

    def test_mismatched_buckets_refuse_to_merge(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        registry.histogram("lat", buckets=(1.0,), worker="a").observe(0.5)
        registry.histogram("lat", buckets=(2.0,), worker="b").observe(0.5)
        sampler.sample(now=0.0)
        with pytest.raises(ValueError, match="different"):
            sampler.quantile("lat", 0.5)


class TestPayload:
    def test_payload_shape_and_name_filter(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        registry.counter("keep", worker="a").inc()
        registry.counter("drop").inc()
        sampler.sample(now=1.0)
        payload = sampler.to_payload(names=("keep",))
        assert list(payload) == ["keep{worker=a}"]
        assert payload["keep{worker=a}"] == {
            "kind": "counter", "t": [1.0], "v": [1.0],
        }

    def test_payload_limit_keeps_the_tail(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry)
        counter = registry.counter("n")
        for stamp in range(5):
            counter.inc()
            sampler.sample(now=float(stamp))
        payload = sampler.to_payload(limit=2)
        assert payload["n"]["t"] == [3.0, 4.0]
        assert payload["n"]["v"] == [4.0, 5.0]
