"""Per-run manifests: what ran, from which code, with which inputs.

A manifest is the provenance record ArchGym-style reproducibility
needs: a unique run id, the seed, the git commit of the code, a
checksum of the inputs, wall-clock bounds, a per-stage timing summary
and the final metric counters — one JSON file written next to the run's
other artefacts (campaign checkpoints, benchmark results).  Two runs
whose manifests agree on seed, git sha and input checksum are claims
about the *same* experiment; diverging numbers then point at the
environment, not the configuration.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
import time
import uuid
from typing import Dict, Optional, Union

from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["build_manifest", "write_manifest", "git_sha"]

#: Manifest schema version, bumped on breaking layout changes.
MANIFEST_SCHEMA = 1


def git_sha() -> Optional[str]:
    """The repository HEAD sha, or ``None`` outside a git checkout.

    Resolved relative to this file so an installed-from-checkout
    package reports its commit; failures (no git binary, no repository,
    a shallow CI export) degrade to ``None`` rather than raising.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def build_manifest(
    run_id: Optional[str] = None,
    seed: Optional[int] = None,
    config_checksum: Optional[str] = None,
    extra: Optional[Dict] = None,
    tracer: Optional[Tracer] = None,
    trace_start: int = 0,
    registry: Optional[MetricsRegistry] = None,
    started: Optional[float] = None,
) -> Dict:
    """Assemble a manifest dict for the current run.

    Args:
        run_id: Stable identifier; a fresh UUID4 hex when omitted.
        seed: The run's base seed (``None`` when seedless).
        config_checksum: Checksum of the run's input configuration
            (campaigns use their sampled-configuration checksum).
        extra: Run-specific payload merged in under ``"run"`` —
            accounting counts, CLI argv, anything the caller owes its
            future self.
        tracer: Timing source (the global tracer by default).
        trace_start: :meth:`Tracer.mark` value taken when the run
            began, so the timing summary covers only this run's spans.
        registry: Metrics source (the global registry by default).
        started: Epoch seconds when the run began (for the wall-clock
            bound; defaults to "now", i.e. a zero-length run).
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    now = time.time()
    return {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id if run_id is not None else uuid.uuid4().hex,
        "seed": seed,
        "git_sha": git_sha(),
        "config_checksum": config_checksum,
        "started": started if started is not None else now,
        "finished": now,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "pid": os.getpid(),
            "argv": list(sys.argv),
        },
        "timing": tracer.summary(trace_start),
        "spans_dropped": tracer.dropped,
        "metrics": registry.to_json(),
        "run": dict(extra or {}),
    }


def write_manifest(
    path: Union[str, pathlib.Path], manifest: Dict
) -> pathlib.Path:
    """Atomically write a manifest as pretty-printed JSON.

    Temp-file-then-rename, like every other checkpoint artefact: a
    crash mid-write leaves the previous manifest intact, never a torn
    file.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(scratch, path)
    return path
