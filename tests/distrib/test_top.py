"""``repro top`` rendering and session state — no network needed.

``render_status`` is a pure function of a status payload, and
``TopSession`` only folds snapshots into rate/throughput history, so
everything here runs on synthetic dicts; the one driver test stubs
``fetch_status`` at the module seam.
"""

from __future__ import annotations

import io
import math

import pytest

from repro.distrib import top
from repro.distrib.top import TopSession, render_status, sparkline


def _status(**overrides):
    base = {
        "version": "1.2.3",
        "draining": False,
        "trace_id": "ab" * 16,
        "campaign": {
            "programs": ["gzip", "art"],
            "config_count": 60,
            "chunk_size": 16,
            "seed": 5,
        },
        "progress": {
            "total": 8,
            "journalled": 4,
            "leased": 2,
            "queued": 2,
            "failed": 0,
        },
        "stats": {"workers_seen": 2, "joins": 2, "leaves": 0},
        "fleet": [
            {
                "worker": "w0",
                "active": True,
                "rate": 2.5,
                "tasks_completed": 3,
                "bundle_size": 2,
            },
            {
                "worker": "w1",
                "active": False,
                "rate": None,
                "tasks_completed": 1,
                "bundle_size": 1,
            },
        ],
        "slo": [],
        "leases": [],
    }
    base.update(overrides)
    return base


class TestSparkline:
    def test_scales_to_window_maximum(self):
        line = sparkline([0.0, 5.0, 10.0], width=3)
        assert line[0] == top.SPARK[0]
        assert line[-1] == top.SPARK[-1]

    def test_nan_renders_as_a_gap(self):
        assert sparkline([1.0, math.nan, 1.0], width=3)[1] == " "

    def test_flat_zero_window_stays_low(self):
        assert sparkline([0.0, 0.0], width=2) == top.SPARK[0] * 2

    def test_right_aligned_to_width(self):
        line = sparkline([3.0], width=5)
        assert len(line) == 5
        assert line[:4] == "    "
        assert line[4] == top.SPARK[-1]

    def test_window_keeps_the_tail(self):
        # Only the newest ``width`` values matter for scaling.
        line = sparkline([100.0, 1.0, 1.0], width=2)
        assert line == top.SPARK[-1] * 2


class TestRenderStatus:
    def test_header_progress_and_fleet(self):
        text = render_status(_status(), throughput=2.0)
        assert "trace " + "ab" * 16 in text
        assert "[running]" in text
        assert "4/8 ( 50.0%)" in text
        assert "[###############---------------]" in text
        assert "2.00 cells/s" in text
        assert "2 program(s) x 60 config(s)" in text
        w0_line = next(
            line for line in text.splitlines() if line.startswith("w0")
        )
        assert "active" in w0_line and "2.50" in w0_line
        w1_line = next(
            line for line in text.splitlines() if line.startswith("w1")
        )
        assert "gone" in w1_line and "-" in w1_line

    def test_draining_and_empty_fleet(self):
        text = render_status(
            _status(draining=True, fleet=[], trace_id=None)
        )
        assert "[draining]" in text
        assert "trace -" in text
        assert "(no workers have connected yet)" in text

    def test_slo_rows_cover_all_three_states(self):
        slo = [
            {"name": "p99", "ok": True, "no_data": False,
             "burn": 0.25, "value": 1.5},
            {"name": "burn", "ok": False, "no_data": False,
             "burn": 2.0, "value": 0.9},
            {"name": "drops", "ok": True, "no_data": True},
        ]
        lines = render_status(_status(slo=slo)).splitlines()
        by_name = {
            line.split()[0]: line
            for line in lines
            if line.split() and line.split()[0] in ("p99", "burn", "drops")
        }
        assert "ok" in by_name["p99"] and "0.25x" in by_name["p99"]
        assert "VIOLATED" in by_name["burn"] and "2.00x" in by_name["burn"]
        assert "no-data" in by_name["drops"]

    def test_oldest_leases_capped_at_five(self):
        leases = [
            {"cell": f"c{i}", "worker": "w0", "age_seconds": float(i),
             "deadline_in": 9.0, "speculative": i == 0}
            for i in range(7)
        ]
        text = render_status(_status(leases=leases))
        assert "c0 -> w0" in text and "(speculative)" in text
        assert "c4" in text and "c5" not in text

    def test_slow_worker_flagged(self):
        status = _status()
        status["fleet"][0]["slow"] = True
        assert "active,slow" in render_status(status)


class TestTopSession:
    def test_observe_tracks_rates_and_departures(self):
        session = TopSession("127.0.0.1", 0)
        session.observe(_status(), now=0.0)
        # w1 departs entirely from the next snapshot.
        gone = _status()
        gone["fleet"] = [gone["fleet"][0]]
        session.observe(gone, now=1.0)
        rates = {k: list(v) for k, v in session._rates.items()}
        assert rates["w0"] == [2.5, 2.5]
        # inactive then departed: both render as gaps
        assert all(math.isnan(v) for v in rates["w1"])

    def test_throughput_is_journalled_delta_over_time(self):
        session = TopSession("127.0.0.1", 0)
        session.observe(_status(), now=0.0)
        assert math.isnan(session.throughput())  # one point: no delta
        later = _status()
        later["progress"]["journalled"] = 8
        session.observe(later, now=2.0)
        assert session.throughput() == pytest.approx(2.0)

    def test_throughput_never_negative(self):
        session = TopSession("127.0.0.1", 0)
        session.observe(_status(), now=0.0)
        rewound = _status()
        rewound["progress"]["journalled"] = 0
        session.observe(rewound, now=1.0)
        assert session.throughput() == 0.0

    def test_run_once_writes_one_plain_frame(self, monkeypatch):
        monkeypatch.setattr(
            top, "fetch_status", lambda *a, **k: _status()
        )
        stream = io.StringIO()
        assert TopSession("127.0.0.1", 0).run_once(stream) == 0
        text = stream.getvalue()
        assert text.startswith("repro top")
        assert "\x1b[" not in text  # --once stays ANSI-free

    def test_live_loop_exits_when_coordinator_goes_away(
        self, monkeypatch
    ):
        calls = {"n": 0}

        def flaky_fetch(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise ConnectionRefusedError("campaign over")
            return _status()

        monkeypatch.setattr(top, "fetch_status", flaky_fetch)
        stream = io.StringIO()
        rc = TopSession("127.0.0.1", 0).run(
            stream, interval=0.0, max_frames=10
        )
        assert rc == 0
        text = stream.getvalue()
        assert calls["n"] == 3  # two frames, then the hang-up
        assert text.startswith("\x1b[?1049h")  # alt screen on entry
        assert text.endswith("\x1b[?25h\x1b[?1049l")  # restored on exit
        assert text.count("repro top") == 2
