"""How far can a new workload drift before the predictor breaks?

A robustness study beyond the paper: generate random programs at
increasing *drift* from the SPEC-like training population and watch
three things —

1. prediction error rises with drift,
2. correlation (the exploration-critical quantity) degrades gracefully,
3. the predictor's own training error rises in lock-step, so the
   architect is warned exactly when not to trust the model.

Run:  python examples/workload_drift_study.py
"""

import numpy as np

from repro import (
    DesignSpaceDataset,
    Metric,
    TrainingPool,
    evaluate_on_program,
    spec2000_suite,
)
from repro.workloads import drift_study_suites

DRIFTS = (0.0, 0.25, 0.5, 0.75, 1.0)
PROGRAMS_PER_LEVEL = 6


def main() -> None:
    spec = spec2000_suite()
    spec_dataset = DesignSpaceDataset.sampled(spec, sample_size=1000, seed=17)
    pool = TrainingPool(spec_dataset, Metric.CYCLES, training_size=512,
                        seed=0)
    models = pool.models()
    print(f"Offline pool: {len(models)} SPEC-trained models\n")

    suites = drift_study_suites(PROGRAMS_PER_LEVEL, drifts=DRIFTS, seed=23)
    print(f"{'drift':>5} | {'rmae':>6} | {'corr':>6} | {'train err':>9} | "
          "verdict")
    print("-" * 55)
    for drift, suite in suites.items():
        dataset = DesignSpaceDataset(
            suite, spec_dataset.configs, spec_dataset.simulator
        )
        scores = [
            evaluate_on_program(models, dataset, program, responses=32,
                                seed=31)
            for program in suite.programs
        ]
        rmae = np.mean([s.rmae for s in scores])
        corr = np.mean([s.correlation for s in scores])
        train = np.mean([s.training_error for s in scores])
        verdict = ("ok" if train < 5.0
                   else "caution: behaviour drifting off the training population")
        print(f"{drift:>5.2f} | {rmae:>5.1f}% | {corr:>6.3f} | "
              f"{train:>8.1f}% | {verdict}")

    print(
        "\nThe training error (computed from the 32 responses alone, no "
        "extra simulation)\nrises together with the true error: the model "
        "knows when it is out of its depth."
    )


if __name__ == "__main__":
    main()
