"""One-call textual reports over a simulated design-space dataset.

Combines the Section 3-4 analyses — per-program statistics, outlier
ranking, dominant extreme-tail parameter values, sensitivities and the
clustering dendrogram — into a single human-readable report, used by
``python -m repro analyze --full`` and handy in notebooks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exploration.dataset import DesignSpaceDataset
from repro.exploration.reporting import format_table
from repro.sim.metrics import Metric

from .clustering import average_linkage, render_dendrogram
from .extremes import dominant_values, extreme_frequencies
from .sensitivity import suite_main_effects
from .similarity import distance_matrix, outlier_scores
from .space_stats import suite_statistics


def suite_report(
    dataset: DesignSpaceDataset,
    metric: Metric,
    include_dendrogram: bool = True,
    extreme_fraction: float = 0.01,
) -> str:
    """A full design-space characterisation report for one metric.

    Sections: per-program five-number summaries, the outlier ranking,
    the dominant best/worst-tail parameter values, suite-average
    parameter sensitivities, and (optionally) the clustering dendrogram.
    """
    sections: List[str] = [
        f"==== design-space report: suite={dataset.suite.name} "
        f"metric={metric.value} samples={len(dataset)} ===="
    ]

    # Per-program statistics ------------------------------------------------
    stats = suite_statistics(dataset, metric)
    rows = [
        (
            s.program,
            f"{s.minimum:.3e}",
            f"{s.median:.3e}",
            f"{s.maximum:.3e}",
            f"{s.spread:.1f}x",
            f"{s.baseline:.3e}",
        )
        for s in stats.values()
    ]
    sections.append(
        "\n-- per-program space statistics --\n"
        + format_table(
            ("program", "min", "median", "max", "spread", "baseline"), rows
        )
    )

    # Outliers ---------------------------------------------------------------
    distances, programs = distance_matrix(dataset, metric)
    scores = outlier_scores(distances, programs)
    ranked = sorted(scores.items(), key=lambda item: -item[1])
    sections.append(
        "\n-- outliers (mean behavioural distance to the rest) --\n"
        + format_table(
            ("program", "mean distance"),
            [(name, round(score, 2)) for name, score in ranked[:8]],
        )
    )

    # Extreme tails ----------------------------------------------------------
    for tail in ("best", "worst"):
        frequencies = extreme_frequencies(
            dataset, metric, tail, fraction=extreme_fraction
        )
        dominant = dominant_values(frequencies, threshold=0.3)
        rows = [
            (parameter, value, f"{share * 100:.0f}%",
             f"{frequencies.lift(parameter, value):.1f}x")
            for parameter, value, share in dominant[:6]
        ]
        sections.append(
            f"\n-- dominant values in the {tail} "
            f"{extreme_fraction * 100:.0f}% --\n"
            + (
                format_table(
                    ("parameter", "value", "share", "lift"), rows
                )
                if rows
                else "(no value clears the dominance threshold)"
            )
        )

    # Sensitivities ----------------------------------------------------------
    effects = suite_main_effects(dataset, metric)
    ranked_effects = sorted(effects.items(), key=lambda item: -item[1])
    sections.append(
        "\n-- suite-average parameter main effects --\n"
        + format_table(
            ("parameter", "variance share"),
            [
                (name, f"{value * 100:.1f}%")
                for name, value in ranked_effects[:8]
            ],
        )
    )

    # Dendrogram -------------------------------------------------------------
    if include_dendrogram:
        root = average_linkage(distances, programs)
        sections.append(
            "\n-- hierarchical clustering (average linkage) --\n"
            + render_dendrogram(root)
        )

    return "\n".join(sections)
