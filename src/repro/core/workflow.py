"""The one-call workflow: characterise a new program end to end.

Everything the paper's Fig. 6 pipeline does, packaged for a user who
has a trained offline pool and a brand-new workload:

1. simulate the new program at R sampled configurations (the only
   simulations spent) — behind a retrying, fault-tolerant backend;
2. fit the architecture-centric combiner on those responses;
3. read the training error as the confidence signal (Section 7.2) and
   turn it into an explicit verdict;
4. optionally scan a large candidate set for predicted sweet spots.

Responses are simulated in small chunks through
:func:`repro.runtime.call_with_retry`: a transient backend failure
costs one retry, a corrupted (NaN/Inf) chunk is discarded and retried,
and a *permanently* failing chunk is dropped rather than sinking the
whole characterisation.  When that happens the fit proceeds on the
surviving responses, the report's ``degraded`` flag is raised, and the
confidence verdict is demoted one level — a partially characterised
program must never look more trustworthy than a fully characterised
one.

The returned :class:`ExplorationReport` carries the fitted predictor,
so all further prediction is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.sampling import sample_configurations
from repro.runtime.backend import (
    IntervalBackend,
    SimulationBackend,
    SimulationError,
    validate_batch,
)
from repro.runtime.retry import CircuitBreaker, RetryPolicy, call_with_retry
from repro.sim.interval import IntervalSimulator
from repro.sim.metrics import Metric
from repro.workloads.profile import WorkloadProfile, stable_seed

from .predictor import ArchitectureCentricPredictor
from .program_model import ProgramSpecificPredictor

#: Training-error (%) thresholds for the confidence verdict.
_TRUSTED_BELOW = 8.0
_SUSPECT_ABOVE = 15.0

#: Responses simulated per backend call: the unit of retry and of loss.
_RESPONSE_CHUNK = 8


@dataclass(frozen=True)
class ExplorationReport:
    """Everything :func:`explore_new_program` learned.

    Attributes:
        program: The new program's name.
        metric: Target metric.
        predictor: The fitted architecture-centric predictor (reusable).
        responses: The configurations whose simulations survived (and
            were used for the fit).
        training_error: rmae (%) of the response fit — the confidence
            signal.
        verdict: ``"trusted"`` / ``"usable"`` / ``"suspect"`` from the
            training error (Section 7.2's decision rule made explicit),
            demoted one level when the characterisation is degraded.
        sweet_spots: Predicted-best configurations with their predicted
            values (empty when scanning was disabled).
        simulations_spent: Responses that were successfully simulated.
        degraded: True when some responses failed permanently and the
            fit ran on a surviving subset.
        failed_responses: Requested responses that never produced a
            usable simulation.
    """

    program: str
    metric: Metric
    predictor: ArchitectureCentricPredictor
    responses: Tuple[Configuration, ...]
    training_error: float
    verdict: str
    sweet_spots: Tuple[Tuple[Configuration, float], ...]
    simulations_spent: int
    degraded: bool = False
    failed_responses: int = 0

    @property
    def trustworthy(self) -> bool:
        """True unless the confidence signal flags unique behaviour."""
        return self.verdict != "suspect"


def _verdict(training_error: float) -> str:
    if training_error < _TRUSTED_BELOW:
        return "trusted"
    if training_error <= _SUSPECT_ABOVE:
        return "usable"
    return "suspect"


def _demote(verdict: str) -> str:
    """Degraded characterisations drop one confidence level."""
    return {"trusted": "usable", "usable": "suspect"}.get(verdict, "suspect")


def _simulate_responses(
    backend: SimulationBackend,
    profile: WorkloadProfile,
    configs: Sequence[Configuration],
    metric: Metric,
    retry_policy: RetryPolicy,
    seed: int,
    sleep,
    clock,
) -> Tuple[List[Configuration], List[np.ndarray], int]:
    """Simulate responses chunk by chunk, tolerating permanent failures.

    Returns:
        (surviving configs, their metric arrays, failed response count).
    """
    breaker = CircuitBreaker()
    surviving: List[Configuration] = []
    chunks: List[np.ndarray] = []
    failed = 0
    for start in range(0, len(configs), _RESPONSE_CHUNK):
        chunk = list(configs[start : start + _RESPONSE_CHUNK])
        try:
            batch = call_with_retry(
                lambda chunk=chunk: backend.simulate_batch(profile, chunk),
                retry_policy,
                seed=stable_seed(
                    "response-retry", profile.name, str(start), str(seed)
                ),
                breaker=breaker,
                validate=lambda result: validate_batch(
                    result, f"for {profile.name!r} responses"
                ),
                sleep=sleep,
                clock=clock,
            )
        except SimulationError:
            failed += len(chunk)
            continue
        surviving.extend(chunk)
        chunks.append(batch.metric(metric))
    return surviving, chunks, failed


def explore_new_program(
    models: Sequence[ProgramSpecificPredictor],
    profile: WorkloadProfile,
    simulator: Optional[IntervalSimulator] = None,
    responses: int = 32,
    sweet_spot_candidates: int = 5000,
    sweet_spots: int = 5,
    seed: int = 0,
    backend: Optional[SimulationBackend] = None,
    retry_policy: Optional[RetryPolicy] = None,
    sleep=None,
    clock=None,
) -> ExplorationReport:
    """Characterise a new program from R simulations and scan the space.

    Args:
        models: The offline-trained per-program pool (all one metric).
        profile: The new program.
        simulator: Simulator supplying the responses (defaults to a
            fresh interval simulator over the full Table 1 space);
            ignored when ``backend`` is given.
        responses: R — simulations of the new program (the only cost).
        sweet_spot_candidates: Random candidates scanned by prediction;
            0 disables the scan.
        sweet_spots: Predicted-best configurations to report.
        seed: Sampling seed.
        backend: Optional :class:`~repro.runtime.SimulationBackend`
            supplying the responses (e.g. a fault-injecting or remote
            one); failures are retried and permanent losses degrade the
            report instead of raising.
        retry_policy: Per-chunk retry policy for the response
            simulations.
        sleep: Backoff sleep hook (injectable for tests).
        clock: Monotonic clock hook for the per-call timeout guard.

    Returns:
        An :class:`ExplorationReport`; its ``predictor`` predicts any
        configuration of the space from here on for free.

    Raises:
        SimulationError: when so many responses fail that fewer than
            two survive — nothing can be fitted from that.
    """
    if responses < 2:
        raise ValueError("at least two responses are required")
    if backend is None:
        simulator = (
            simulator if simulator is not None else IntervalSimulator()
        )
        backend = IntervalBackend(simulator)
    space = getattr(backend, "space", None)
    if space is None:
        space = (
            simulator.space if simulator is not None else IntervalSimulator().space
        )
    metric = models[0].metric
    retry_policy = retry_policy if retry_policy is not None else RetryPolicy()

    response_configs = sample_configurations(space, responses, seed=seed)
    surviving, value_chunks, failed = _simulate_responses(
        backend,
        profile,
        response_configs,
        metric,
        retry_policy,
        seed,
        sleep,
        clock,
    )
    if len(surviving) < 2:
        raise SimulationError(
            f"only {len(surviving)} of {responses} responses for "
            f"{profile.name!r} survived; cannot fit a combiner"
        )
    response_values = np.concatenate(value_chunks)

    predictor = ArchitectureCentricPredictor(models)
    predictor.fit_responses(surviving, response_values)

    spots: List[Tuple[Configuration, float]] = []
    if sweet_spot_candidates > 0:
        candidates = sample_configurations(
            space, sweet_spot_candidates, seed=seed + 1
        )
        predictions = predictor.predict(candidates)
        order = np.argsort(predictions)[:sweet_spots]
        spots = [
            (candidates[i], float(predictions[i])) for i in order
        ]

    degraded = failed > 0
    verdict = _verdict(predictor.training_error)
    if degraded:
        verdict = _demote(verdict)

    return ExplorationReport(
        program=profile.name,
        metric=metric,
        predictor=predictor,
        responses=tuple(surviving),
        training_error=predictor.training_error,
        verdict=verdict,
        sweet_spots=tuple(spots),
        simulations_spent=len(surviving),
        degraded=degraded,
        failed_responses=failed,
    )
