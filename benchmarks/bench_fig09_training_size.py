"""Fig. 9: program-specific accuracy vs training-set size T.

The paper concludes T = 512 is the sweet spot: more simulations per
training program buy little further rmae or correlation.
"""

from scale import SAMPLE_SIZE

from repro.exploration import format_series, scale_banner, training_size_sweep
from repro.sim import Metric

#: Reduced program subset (the full sweep over 26 programs x 4 metrics
#: is a paper-scale run); chosen to span behaviours incl. the outlier.
PROGRAMS = ("gzip", "crafty", "parser", "applu", "swim", "mesa", "galgel",
            "art")
SIZES = (16, 32, 64, 128, 256, 512)


def test_fig09_training_size(benchmark, spec_dataset, record_artifact):
    def regenerate():
        return {
            metric: training_size_sweep(
                spec_dataset, metric, sizes=SIZES, repeats=1,
                programs=PROGRAMS,
            )
            for metric in (Metric.CYCLES, Metric.ENERGY, Metric.ED,
                           Metric.EDD)
        }

    sweeps = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 9 — program-specific accuracy vs training size T",
            samples=SAMPLE_SIZE, programs=len(PROGRAMS), repeats=1,
        )
    ]
    for metric, sweep in sweeps.items():
        sections.append(
            f"\n({metric.value})\n"
            + format_series(
                "T",
                sweep.budgets(),
                {
                    "rmae%": [p.rmae_mean for p in sweep.points],
                    "corr": [p.correlation_mean for p in sweep.points],
                },
            )
        )
    record_artifact("fig09_training_size", "\n".join(sections))

    for metric, sweep in sweeps.items():
        first, last = sweep.points[0], sweep.points[-1]
        # Accuracy improves with T (the figure's monotone trend) and the
        # paper's T = 512 operating point reaches high accuracy.  Note:
        # in our substrate the curve has not fully plateaued at 512 (the
        # Adam-trained MLP keeps improving with data); EXPERIMENTS.md
        # records this deviation.
        assert last.rmae_mean < first.rmae_mean
        assert last.correlation_mean > first.correlation_mean
        if metric in (Metric.CYCLES, Metric.ENERGY):
            assert last.correlation_mean > 0.8
