"""Unit tests for the fleet roster and capacity model."""

from __future__ import annotations

import pytest

from repro.distrib.membership import (
    FleetMembership,
    WorkerCapabilities,
    detect_capabilities,
    measure_calibration,
)


def caps(throughput: float = 0.0, cores: int = 1) -> WorkerCapabilities:
    return WorkerCapabilities(cores=cores, throughput=throughput)


class TestWorkerCapabilities:
    def test_validation(self):
        with pytest.raises(ValueError, match="cores"):
            WorkerCapabilities(cores=0)
        with pytest.raises(ValueError, match="memory_mb"):
            WorkerCapabilities(memory_mb=-1)
        with pytest.raises(ValueError, match="throughput"):
            WorkerCapabilities(throughput=-0.5)

    def test_wire_round_trip(self):
        original = WorkerCapabilities(cores=8, memory_mb=16384,
                                      throughput=123.456,
                                      simulate_suite=True)
        assert WorkerCapabilities.from_wire(original.to_wire()) == original

    def test_from_wire_tolerates_pre_elastic_hello(self):
        # An old worker sends no capabilities at all.
        assert WorkerCapabilities.from_wire(None) == WorkerCapabilities()
        assert WorkerCapabilities.from_wire("junk") == WorkerCapabilities()
        assert WorkerCapabilities.from_wire({}) == WorkerCapabilities()

    def test_pre_suite_hello_decodes_suiteless(self):
        # A worker predating the suite fast path never sends the key.
        wire = {"cores": 2, "memory_mb": 1024, "throughput": 50.0}
        assert WorkerCapabilities.from_wire(wire).simulate_suite is False

    def test_from_wire_clamps_hostile_values(self):
        decoded = WorkerCapabilities.from_wire(
            {"cores": -4, "memory_mb": -1, "throughput": -9.0}
        )
        assert decoded.cores == 1
        assert decoded.memory_mb == 0
        assert decoded.throughput == 0.0

    def test_detect_capabilities(self):
        detected = detect_capabilities(calibrate=False)
        assert detected.cores >= 1
        assert detected.throughput == 0.0
        assert measure_calibration(budget_seconds=0.005) > 0.0


class TestMembershipTransitions:
    def test_join_rejoin_leave(self):
        fleet = FleetMembership()
        member = fleet.hello("w0", caps(), now=10.0)
        assert member.active and fleet.joins == 1
        fleet.leave("w0", now=20.0, reason="disconnect")
        assert not fleet.get("w0").active
        assert fleet.leaves == 1
        # A rejoin reactivates the same record, history intact.
        fleet.get("w0").tasks_completed = 3
        rejoined = fleet.hello("w0", caps(throughput=5.0), now=30.0)
        assert rejoined is member
        assert rejoined.active
        assert rejoined.tasks_completed == 3
        assert rejoined.capabilities.throughput == 5.0
        events = [(e["event"], e["worker"]) for e in fleet.events]
        assert events == [("join", "w0"), ("leave", "w0"),
                          ("rejoin", "w0")]
        assert [e["seq"] for e in fleet.events] == [1, 2, 3]

    def test_leave_is_idempotent(self):
        fleet = FleetMembership()
        fleet.hello("w0", caps(), now=0.0)
        fleet.leave("w0", now=1.0, reason="goodbye")
        fleet.leave("w0", now=2.0, reason="disconnect")
        fleet.leave("ghost", now=3.0, reason="disconnect")
        assert fleet.leaves == 1

    def test_task_done_builds_an_ewma_rate(self):
        fleet = FleetMembership(ewma_alpha=0.5)
        fleet.hello("w0", caps(), now=0.0)
        fleet.task_done("w0", now=1.0)  # first gap: 1 s -> 1.0/s
        assert fleet.get("w0").rate == pytest.approx(1.0)
        fleet.task_done("w0", now=1.5)  # gap 0.5 s -> sample 2.0/s
        assert fleet.get("w0").rate == pytest.approx(1.5)
        assert fleet.get("w0").tasks_completed == 2
        fleet.task_done("ghost", now=2.0)  # unknown worker: ignored


class TestCapacityWeighting:
    def test_unmeasured_fleet_weighs_everyone_equally(self):
        fleet = FleetMembership(max_bundle=4)
        fleet.hello("w0", caps(), now=0.0)
        fleet.hello("w1", caps(), now=0.0)
        assert fleet.weight("w0") == 1.0
        assert fleet.bundle_size("w0") == 1
        assert fleet.weight("unknown") == 1.0

    def test_bundle_scales_with_throughput_ratio(self):
        fleet = FleetMembership(max_bundle=4)
        fleet.hello("fast", caps(throughput=300.0), now=0.0)
        fleet.hello("mid", caps(throughput=100.0), now=0.0)
        fleet.hello("slow", caps(throughput=50.0), now=0.0)
        assert fleet.weight("fast") == pytest.approx(3.0)
        assert fleet.bundle_size("fast") == 3
        assert fleet.bundle_size("mid") == 1
        assert fleet.bundle_size("slow") == 1

    def test_bundle_clamped_to_max_bundle(self):
        fleet = FleetMembership(max_bundle=2)
        fleet.hello("huge", caps(throughput=1000.0), now=0.0)
        fleet.hello("tiny", caps(throughput=10.0), now=0.0)
        assert fleet.bundle_size("huge") == 2

    def test_slow_flag_forces_bundle_of_one(self):
        fleet = FleetMembership(max_bundle=4)
        fleet.hello("fast", caps(throughput=400.0), now=0.0)
        fleet.hello("p0", caps(throughput=100.0), now=0.0)
        fleet.hello("p1", caps(throughput=100.0), now=0.0)
        assert fleet.bundle_size("fast") == 4  # 400 / median 100
        fleet.get("fast").slow = True
        assert fleet.bundle_size("fast") == 1

    def test_suite_capable_bundle_is_doubled(self):
        suite = WorkerCapabilities(throughput=100.0, simulate_suite=True)
        fleet = FleetMembership(max_bundle=4)
        fleet.hello("suite", suite, now=0.0)
        fleet.hello("plain", caps(throughput=100.0), now=0.0)
        # Same weight, but the suite worker amortises a whole bundle
        # into one program-major call: double size, double ceiling.
        assert fleet.bundle_size("plain") == 1
        assert fleet.bundle_size("suite") == 2
        fleet.hello("big", WorkerCapabilities(
            throughput=600.0, simulate_suite=True), now=0.0)
        assert fleet.bundle_size("big") == 8  # 2 * max_bundle ceiling
        # Slow still wins: a straggler never gets a bundle.
        fleet.get("suite").slow = True
        assert fleet.bundle_size("suite") == 1


class TestRebalanceScan:
    def _rated_fleet(self) -> FleetMembership:
        fleet = FleetMembership(slow_fraction=0.25)
        for worker_id in ("w0", "w1", "w2"):
            fleet.hello(worker_id, caps(), now=0.0)
            fleet.get(worker_id).tasks_completed = 1
        return fleet

    def test_straggler_is_flagged_and_recovers_with_hysteresis(self):
        fleet = self._rated_fleet()
        fleet.get("w0").rate = 1.0
        fleet.get("w1").rate = 1.0
        fleet.get("w2").rate = 0.1  # 10% of median: below 25%
        assert fleet.rebalance_scan() == [("w2", True)]
        assert fleet.get("w2").slow
        # Above the slow line but below the 2x recovery line: stays slow.
        fleet.get("w2").rate = 0.4
        assert fleet.rebalance_scan() == []
        assert fleet.get("w2").slow
        # At/above 2 * slow_fraction * median: recovers.
        fleet.get("w2").rate = 0.6
        assert fleet.rebalance_scan() == [("w2", False)]
        assert not fleet.get("w2").slow
        kinds = [e["event"] for e in fleet.events]
        assert kinds[-2:] == ["slow", "recovered"]

    def test_single_rater_defines_no_fleet(self):
        fleet = FleetMembership()
        fleet.hello("w0", caps(), now=0.0)
        fleet.get("w0").tasks_completed = 1
        fleet.get("w0").rate = 0.001
        assert fleet.rebalance_scan() == []

    def test_unrated_workers_do_not_skew_the_median(self):
        fleet = self._rated_fleet()
        fleet.hello("idle", caps(), now=0.0)  # no completions yet
        fleet.get("w0").rate = 1.0
        fleet.get("w1").rate = 1.0
        fleet.get("w2").rate = 1.0
        assert fleet.median_rate() == pytest.approx(1.0)
        assert fleet.rebalance_scan() == []

    def test_validation(self):
        with pytest.raises(ValueError, match="max_bundle"):
            FleetMembership(max_bundle=0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            FleetMembership(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="slow_fraction"):
            FleetMembership(slow_fraction=1.0)


class TestRoster:
    def test_roster_is_json_ready_and_sorted(self):
        fleet = FleetMembership(max_bundle=4)
        fleet.hello("w1", caps(throughput=200.0, cores=4), now=5.0)
        fleet.hello("w0", caps(throughput=100.0), now=0.0)
        fleet.leave("w0", now=8.0, reason="goodbye")
        roster = fleet.roster(now=10.0)
        assert [entry["worker"] for entry in roster] == ["w0", "w1"]
        w0, w1 = roster
        assert w0["active"] is False
        assert w1["active"] is True
        # w0 left, so the active-peer median is w1's own throughput.
        assert w1["weight"] == pytest.approx(1.0, abs=0.001)
        assert w1["bundle_size"] == 1
        assert w1["simulate_suite"] is False
        assert w1["age_seconds"] == pytest.approx(5.0)
        import json

        json.dumps(roster)  # must serialise without custom encoders
