"""Event-driven vs tick engine equivalence.

The tick engine is the straightforward transcription of the stage
semantics and serves as the oracle; the event engine must produce
bit-identical :class:`PipelineStats` (and energy) on every run.  The
suite sweeps trace lengths, wrong-path mode, warmup snapshots and
degenerate machine shapes, then fuzzes random small traces.
"""

from dataclasses import asdict
from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import DesignSpace
from repro.sim.machine import FixedParameters
from repro.sim.pipeline import PipelineSimulator
from repro.sim.pipeline.core import ENGINES
from repro.workloads import generate_trace, spec2000_profile
from repro.workloads.tracegen import OpClass, TraceInstruction

_SPACE = DesignSpace()


def assert_engines_identical(
    config,
    trace,
    *,
    wrong_path=False,
    warmup=0,
    fixed=None,
):
    """Run both engines and require field-by-field identical results."""
    tick = PipelineSimulator(
        config, fixed=fixed, wrong_path=wrong_path, engine="tick"
    ).run(trace, warmup=warmup)
    event = PipelineSimulator(
        config, fixed=fixed, wrong_path=wrong_path, engine="event"
    ).run(trace, warmup=warmup)
    assert asdict(tick.stats) == asdict(event.stats)
    assert tick.energy == event.energy
    assert tick.cycles == event.cycles
    return tick, event


def _instruction(
    index: int,
    op: OpClass,
    pc: Optional[int] = None,
    dest: Optional[int] = None,
    sources: Tuple[int, ...] = (0,),
    address: Optional[int] = None,
    taken: Optional[bool] = None,
) -> TraceInstruction:
    if dest is None and op not in (OpClass.STORE, OpClass.BRANCH):
        dest = index % 32
    if address is None and op.is_memory:
        address = 0x1000 + (index % 16) * 32
    branch_id = index % 8 if op is OpClass.BRANCH else None
    if op is OpClass.BRANCH and taken is None:
        taken = False
    return TraceInstruction(
        index=index,
        op=op,
        pc=pc if pc is not None else index * 4,
        dest=dest,
        sources=sources,
        address=address,
        branch_id=branch_id,
        taken=taken,
    )


class TestEngineSelection:
    def test_engines_constant(self):
        assert ENGINES == ("event", "tick")

    def test_unknown_engine_rejected(self, space):
        with pytest.raises(ValueError, match="engine"):
            PipelineSimulator(space.baseline, engine="cycle-accurate")

    def test_default_engine_is_event(self, space):
        assert PipelineSimulator(space.baseline).engine == "event"


class TestSeededEquivalence:
    @pytest.mark.parametrize("length", [1, 7, 64, 500, 4000])
    def test_trace_lengths(self, space, length):
        trace = generate_trace(spec2000_profile("gzip"), length, seed=11)
        assert_engines_identical(space.baseline, trace)

    @pytest.mark.parametrize("program", ["gzip", "swim", "art"])
    def test_profiles(self, space, program):
        trace = generate_trace(spec2000_profile(program), 2000, seed=5)
        assert_engines_identical(space.baseline, trace)

    @pytest.mark.parametrize("warmup", [0, 1, 500, 1999])
    def test_warmup_snapshots(self, space, warmup):
        trace = generate_trace(spec2000_profile("gzip"), 2000, seed=13)
        assert_engines_identical(space.baseline, trace, warmup=warmup)

    @pytest.mark.parametrize("warmup", [0, 700])
    def test_wrong_path_mode(self, space, warmup):
        trace = generate_trace(spec2000_profile("crafty"), 3000, seed=17)
        tick, event = assert_engines_identical(
            space.baseline, trace, wrong_path=True, warmup=warmup
        )
        # The mode actually exercised speculation in this trace.
        assert tick.stats.wrong_path_fetched > 0

    def test_extreme_corner_configs(self, space):
        trace = generate_trace(spec2000_profile("mesa"), 1500, seed=23)
        widest = space.baseline.replace(
            width=8, rob_size=160, iq_size=80, lsq_size=80,
            rf_read_ports=16, rf_write_ports=8,
        )
        narrowest = space.baseline.replace(
            width=2, rob_size=32, iq_size=8, lsq_size=8,
            rf_size=40, rf_read_ports=2, rf_write_ports=1, max_branches=8,
        )
        for config in (widest, narrowest):
            for wrong_path in (False, True):
                assert_engines_identical(
                    config, trace, wrong_path=wrong_path
                )


class TestDegenerateMachines:
    """Off-grid minima: 1-wide, 1-entry IQ, 1 MSHR, tiny fetch buffer."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(spec2000_profile("gzip"), 1200, seed=29)

    def test_one_wide_one_entry_iq(self, space, trace):
        config = space.baseline.replace(
            width=1, iq_size=1, rf_read_ports=2, rf_write_ports=1
        )
        assert_engines_identical(config, trace)
        assert_engines_identical(config, trace, wrong_path=True)

    def test_single_mshr(self, space, trace):
        fixed = FixedParameters(mshr_entries=1)
        assert_engines_identical(space.baseline, trace, fixed=fixed)
        assert_engines_identical(
            space.baseline, trace, fixed=fixed, wrong_path=True
        )

    def test_single_mshr_on_narrow_machine(self, space, trace):
        config = space.baseline.replace(width=2, iq_size=8, lsq_size=8)
        fixed = FixedParameters(mshr_entries=1, fetch_buffer_entries=2)
        assert_engines_identical(config, trace, fixed=fixed)


_ops = st.sampled_from(list(OpClass))


@st.composite
def random_traces(draw):
    length = draw(st.integers(min_value=5, max_value=120))
    trace: List[TraceInstruction] = []
    for i in range(length):
        op = draw(_ops)
        sources = tuple(
            draw(st.lists(st.integers(0, 31), min_size=0, max_size=2))
        )
        taken = draw(st.booleans()) if op is OpClass.BRANCH else None
        address = (
            draw(st.integers(0, 1 << 20)) * 32 if op.is_memory else None
        )
        trace.append(
            _instruction(
                i, op, pc=draw(st.integers(0, 4096)) * 4,
                sources=sources, address=address, taken=taken,
            )
        )
    return trace


class TestFuzzEquivalence:
    @given(trace=random_traces(), wrong_path=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_random_traces(self, trace, wrong_path):
        assert_engines_identical(
            _SPACE.baseline, trace, wrong_path=wrong_path
        )

    @given(trace=random_traces())
    @settings(max_examples=15, deadline=None)
    def test_random_traces_narrow_machine(self, trace):
        config = _SPACE.baseline.replace(
            width=2, rob_size=32, iq_size=8, lsq_size=8, rf_write_ports=1
        )
        assert_engines_identical(
            config, trace, fixed=FixedParameters(mshr_entries=1)
        )
