"""Tests for the Cacti/Wattch-style energy model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    EnergyModel,
    MachineSpec,
    array_area,
    array_read_energy,
    array_write_energy,
    cache_access_energy,
    cache_area,
    cam_search_energy,
)


class TestArrayEnergy:
    def test_grows_with_entries(self):
        assert array_read_energy(160, 64) > array_read_energy(40, 64)

    def test_grows_with_bits(self):
        assert array_read_energy(64, 128) > array_read_energy(64, 32)

    def test_grows_with_ports(self):
        assert array_read_energy(64, 64, 16) > array_read_energy(64, 64, 2)

    def test_write_costs_more_than_read_bitline(self):
        # Full swing on writes: write > read for wide arrays.
        assert array_write_energy(4096, 64) > 0

    def test_vectorised(self):
        entries = np.array([40, 96, 160])
        energies = array_read_energy(entries, 64, 4)
        assert energies.shape == (3,)
        assert np.all(np.diff(energies) > 0)

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            array_read_energy(0, 64)

    def test_invalid_ports_rejected(self):
        with pytest.raises(ValueError):
            array_read_energy(64, 64, 0)

    @given(
        entries=st.integers(min_value=1, max_value=100_000),
        bits=st.integers(min_value=1, max_value=512),
        ports=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_positive(self, entries, bits, ports):
        assert array_read_energy(entries, bits, ports) > 0
        assert array_write_energy(entries, bits, ports) > 0
        assert array_area(entries, bits, ports) > 0


class TestCamAndCache:
    def test_cam_linear_in_entries(self):
        small = cam_search_energy(16, 10)
        large = cam_search_energy(80, 10)
        assert large == pytest.approx(5 * small)

    def test_cache_energy_grows_with_capacity(self):
        capacities = np.array([8, 32, 128]) * 1024
        energies = cache_access_energy(capacities, 32, 2)
        assert np.all(np.diff(energies) > 0)

    def test_cache_smaller_than_line_rejected(self):
        with pytest.raises(ValueError):
            cache_access_energy(16, 32, 2)

    def test_cache_area_linear(self):
        assert cache_area(2 * 1024) == pytest.approx(2 * cache_area(1024))


class TestEnergyModel:
    def test_total_energy_accumulates(self, space):
        model = EnergyModel(MachineSpec(space.baseline))
        idle = model.total_energy({}, cycles=1000)
        busy = model.total_energy({"rf_read": 1000.0}, cycles=1000)
        assert busy > idle > 0

    def test_leakage_grows_with_structures(self, space):
        small = EnergyModel(MachineSpec(space.baseline.replace(l2cache_kb=256,
                                                               dcache_kb=8)))
        large = EnergyModel(MachineSpec(space.baseline.replace(l2cache_kb=4096)))
        assert large.leakage_power > small.leakage_power

    def test_port_replication_raises_area(self, space):
        narrow = EnergyModel(
            MachineSpec(space.baseline.replace(rf_read_ports=2,
                                               rf_write_ports=1))
        )
        wide = EnergyModel(
            MachineSpec(space.baseline.replace(rf_read_ports=16,
                                               rf_write_ports=8,
                                               width=8))
        )
        assert wide.area > narrow.area

    def test_alu_energy_lookup(self, space):
        model = EnergyModel(MachineSpec(space.baseline))
        assert model.alu_energy("fp_mul") > model.alu_energy("int_alu")

    def test_unknown_alu_class_rejected(self, space):
        model = EnergyModel(MachineSpec(space.baseline))
        with pytest.raises(KeyError):
            model.alu_energy("vector_unit")

    def test_negative_activity_rejected(self, space):
        model = EnergyModel(MachineSpec(space.baseline))
        with pytest.raises(ValueError):
            model.total_energy({"rf_read": -1.0}, cycles=10)

    def test_negative_cycles_rejected(self, space):
        model = EnergyModel(MachineSpec(space.baseline))
        with pytest.raises(ValueError):
            model.total_energy({}, cycles=-1)

    def test_alu_activity_counts(self, space):
        model = EnergyModel(MachineSpec(space.baseline))
        with_alu = model.total_energy({"int_mul": 100.0}, cycles=0)
        assert with_alu == pytest.approx(100 * model.alu_energy("int_mul"))
