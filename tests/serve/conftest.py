"""Serving fixtures: a fitted predictor and a live server harness.

The predictor is session-scoped (it reuses the expensive session
``cycles_pool``); each server test gets its own
:class:`ServerHarness`, which runs a :class:`PredictionServer` on a
private event loop in a daemon thread and tears it down through the
real drain path.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core import ArchitectureCentricPredictor
from repro.serve import PredictionClient, PredictionServer
from repro.sim import Metric

#: Responses split seed shared by the fixtures so holdout configs and
#: the fitted predictor agree.
_SPLIT_SEED = 11


@pytest.fixture(scope="session")
def fitted_predictor(cycles_pool, small_dataset):
    models = cycles_pool.models(exclude=["gzip"])
    predictor = ArchitectureCentricPredictor(models)
    response_idx, _ = small_dataset.split_indices(24, seed=_SPLIT_SEED)
    predictor.fit_responses(
        small_dataset.subset_configs(response_idx),
        small_dataset.subset_values("gzip", Metric.CYCLES, response_idx),
    )
    return predictor


@pytest.fixture(scope="session")
def holdout_configs(small_dataset):
    _, holdout_idx = small_dataset.split_indices(24, seed=_SPLIT_SEED)
    return small_dataset.subset_configs(holdout_idx)


class ServerHarness:
    """A PredictionServer on its own loop thread, drained on close."""

    def __init__(self, predictor, **kwargs) -> None:
        self._predictor = predictor
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.server: PredictionServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server failed to start in time")
        if self._failure is not None:
            raise self._failure

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced to the test thread
            self._failure = error
            self._ready.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.server = PredictionServer(self._predictor, **self._kwargs)
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 30.0) -> PredictionClient:
        return PredictionClient("127.0.0.1", self.port, timeout=timeout)

    def drain(self) -> None:
        """Run the server's graceful drain and wait for it."""
        asyncio.run_coroutine_threadsafe(
            self.server.drain(), self.loop
        ).result(timeout=60)

    def close(self) -> None:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=60)


@pytest.fixture()
def harness(fitted_predictor):
    active = []

    def _start(**kwargs) -> ServerHarness:
        kwargs.setdefault("port", 0)
        started = ServerHarness(fitted_predictor, **kwargs)
        active.append(started)
        return started

    yield _start
    for started in active:
        started.close()
