"""Quickstart: predict a brand-new program from 32 simulations.

The workflow of the paper in five steps:

1. sample the legal design space (shared across all programs);
2. train one small ANN per *training* program, offline (T = 512
   simulations each) — this cost is paid once, ever;
3. when a new program arrives, simulate it at just R = 32 sampled
   configurations (the "responses");
4. fit the architecture-centric linear combiner on those responses;
5. predict the new program anywhere in the 18-billion-point space.

Run:  python examples/quickstart.py
"""

from repro import (
    ArchitectureCentricPredictor,
    DesignSpaceDataset,
    Metric,
    TrainingPool,
    correlation,
    rmae,
    spec2000_suite,
)

NEW_PROGRAM = "applu"  # pretend we have never seen this one


def main() -> None:
    suite = spec2000_suite()
    print(f"Suite: {len(suite)} programs; new program: {NEW_PROGRAM}")

    # 1. One shared sample of the legal space (paper: 3,000 points).
    dataset = DesignSpaceDataset.sampled(suite, sample_size=1000, seed=42)
    space = dataset.simulator.space
    print(f"Design space: {space.legal_size:,} legal configurations, "
          f"sampled {len(dataset)}")

    # 2. Offline training on every *other* program.
    pool = TrainingPool(dataset, Metric.CYCLES, training_size=512, seed=0)
    models = pool.models(exclude=[NEW_PROGRAM])
    print(f"Offline pool: {len(models)} program-specific ANNs at T=512")

    # 3. + 4. Thirty-two responses from the new program.
    response_idx, holdout_idx = dataset.split_indices(32, seed=7)
    predictor = ArchitectureCentricPredictor(models)
    predictor.fit_responses(
        dataset.subset_configs(response_idx),
        dataset.subset_values(NEW_PROGRAM, Metric.CYCLES, response_idx),
    )
    print(f"Fitted on 32 responses; training error "
          f"{predictor.training_error:.1f}% (the confidence signal)")

    # 5. Predict everywhere; score against held-out simulations.
    predictions = predictor.predict(dataset.subset_configs(holdout_idx))
    actual = dataset.subset_values(NEW_PROGRAM, Metric.CYCLES, holdout_idx)
    print(f"Held-out accuracy over {len(holdout_idx)} configurations: "
          f"rmae {rmae(predictions, actual):.1f}%, "
          f"correlation {correlation(predictions, actual):.3f}")

    baseline = space.baseline
    predicted = predictor.predict_one(baseline)
    simulated = dataset.simulator.simulate(
        suite[NEW_PROGRAM], baseline
    ).cycles
    print(f"Baseline machine: predicted {predicted:.3e} cycles, "
          f"simulated {simulated:.3e} "
          f"({abs(predicted - simulated) / simulated * 100:.1f}% off)")


if __name__ == "__main__":
    main()
