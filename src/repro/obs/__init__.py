"""repro.obs — the dependency-free observability layer.

Everything the rest of the package uses to explain itself at runtime:

* **Structured logging** — :func:`get_logger` /
  :func:`configure_logging`, human or JSON lines, level picked by
  ``--log-level`` or ``REPRO_LOG``.
* **Metrics** — :class:`MetricsRegistry` of counters, gauges and
  histograms with JSON and Prometheus-textfile exporters, plus a
  snapshot/merge protocol so worker processes aggregate into the
  parent correctly.
* **Tracing** — :func:`span` context managers collected by a
  :class:`Tracer`, exported as ``chrome://tracing`` JSON or JSONL,
  with trace/span ids for cross-host stitching.
* **Run manifests** — :func:`build_manifest` /
  :func:`write_manifest`: run id, seed, git sha, input checksum,
  timing summary and final metrics in one provenance file.
* **Time series + SLOs** — :class:`TimeSeriesSampler` ring-buffers
  registry samples for rates and windowed percentiles;
  :class:`SLOTracker` evaluates declarative objectives (latency
  budgets, burn rates) against a registry, a sampler, or a parsed
  Prometheus export (:class:`MetricsView`).
* **HTTP plumbing** — the stdlib-only request/response helpers and
  the read-only :class:`ObservabilityEndpoint` behind ``repro serve``
  and the coordinator's ``/metrics``/``/healthz``/``/status`` twins.

Instrumentation is always-on but cheap (dict bumps and two clock
reads per span); it records *around* the computation and never touches
random state, so results stay bit-identical with telemetry enabled,
exported, or ignored.
"""

from .logging import (
    HumanFormatter,
    JsonFormatter,
    configure_logging,
    get_logger,
    resolve_level,
)
from .http import ObservabilityEndpoint
from .manifest import build_manifest, git_sha, write_manifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from .slo import MetricsView, SLObjective, SLOTracker
from .timeseries import TimeSeriesSampler, histogram_quantile
from .tracing import (
    Tracer,
    get_tracer,
    new_trace_id,
    scoped_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HumanFormatter",
    "JsonFormatter",
    "MetricsRegistry",
    "MetricsView",
    "ObservabilityEndpoint",
    "SLObjective",
    "SLOTracker",
    "TimeSeriesSampler",
    "Tracer",
    "build_manifest",
    "configure_logging",
    "get_logger",
    "get_registry",
    "get_tracer",
    "git_sha",
    "histogram_quantile",
    "new_trace_id",
    "resolve_level",
    "scoped_registry",
    "scoped_tracer",
    "set_registry",
    "set_tracer",
    "span",
    "write_manifest",
]
