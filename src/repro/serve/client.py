"""A small blocking HTTP client for the prediction server.

Thin ``http.client`` wrapper used by the benchmarks, the CI smoke job
and the tests — and a reasonable starting point for real callers.  One
client owns one keep-alive connection and is **not** thread-safe; give
each thread its own instance (connections are cheap, and that is
exactly what the load generator does to model independent clients).
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["PredictionClient", "ServerError"]

#: A request configuration: a full 13-value list/tuple in Table 1
#: order, or a (possibly partial) parameter mapping.
ConfigLike = Union[Sequence[int], Dict[str, int]]


class ServerError(RuntimeError):
    """A non-2xx response, carrying the HTTP status and server message."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class PredictionClient:
    """Blocking client for one server, reusing one connection.

    Args:
        host: Server host.
        port: Server port.
        timeout: Socket timeout in seconds for each request.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def predict(self, configs: Sequence[ConfigLike]) -> List[float]:
        """Predictions for ``configs``, in order.

        Raises:
            ServerError: on any non-200 response (status 503 carries
                ``retry_after`` when the server is saturated).
        """
        payload = self._request(
            "POST", "/predict",
            body=json.dumps({"configs": [_jsonable(c) for c in configs]}),
        )
        return [float(v) for v in payload["predictions"]]

    def predict_one(self, config: ConfigLike) -> float:
        """A single configuration's prediction."""
        return self.predict([config])[0]

    def search(
        self,
        agent: str = "hill",
        budget: int = 128,
        batch: int = 16,
        seed: int = 0,
    ) -> Dict:
        """Run a bounded closed-loop search on the server.

        Args:
            agent: Search agent name (see ``repro.search.AGENT_NAMES``).
            budget: Predictor-evaluation budget for the run.
            batch: Proposals evaluated per round.
            seed: Agent seed; the same seed replays the same search.

        Returns:
            The search outcome payload — best configuration, frontier,
            hypervolume, budget accounting and the served model info.

        Raises:
            ServerError: on any non-200 response (503 when the server
                already runs its maximum of concurrent searches).
        """
        return self._request(
            "POST", "/search",
            body=json.dumps({
                "agent": agent, "budget": budget,
                "batch": batch, "seed": seed,
            }),
        )

    def healthz(self) -> Dict:
        """The server's health document (raises 503 while draining)."""
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition text from ``/metrics``."""
        status, headers, body = self._raw_request("GET", "/metrics")
        if status != 200:
            raise ServerError(status, body.decode("utf-8", "replace"))
        return body.decode("utf-8")

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[str] = None) -> Dict:
        status, headers, raw = self._raw_request(method, path, body)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = {"error": raw.decode("utf-8", "replace")}
        if status != 200:
            retry_after = headers.get("Retry-After")
            raise ServerError(
                status,
                str(payload.get("error", "unexpected response")),
                retry_after=float(retry_after) if retry_after else None,
            )
        return payload

    def _raw_request(
        self, method: str, path: str, body: Optional[str] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection = self._connect()
        try:
            connection.request(
                method, path,
                body=body.encode("utf-8") if body else None,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # One reconnect: the server may have closed an idle
            # keep-alive connection between requests.
            self.close()
            connection = self._connect()
            connection.request(
                method, path,
                body=body.encode("utf-8") if body else None,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            raw = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status, dict(response.getheaders()), raw

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection


def _jsonable(config: ConfigLike):
    if isinstance(config, dict):
        return {name: int(value) for name, value in config.items()}
    if hasattr(config, "values") and callable(config.values):
        # A Configuration object: send its canonical tuple.
        return [int(v) for v in config.values()]
    return [int(v) for v in config]
