"""Multi-process serving: a prefork fleet behind one port.

``repro serve --workers N`` runs N full :class:`PredictionServer`
processes answering on one ``host:port``.  The parent loads the
published predictor **once**; workers are forked, so every process
reads the same registry snapshot through copy-on-write memory instead
of N loads.  Two socket-sharing modes:

* ``reuse-port`` (default where available) — every worker binds its
  own listening socket with ``SO_REUSEPORT`` and the kernel balances
  incoming connections across them.  The parent holds a bound (never
  listening) placeholder on the port from before the first fork until
  every worker is ready, so port 0 resolves once and no stranger can
  grab the port in between.
* ``shared-socket`` (fallback) — the parent binds and listens once
  and every forked worker accepts from the same inherited socket.

Lifecycle is supervisor-shaped: the parent relays SIGTERM to every
worker (each drains gracefully — in-flight requests answered, new
ones 503'd), waits, and then merges each worker's final metrics
snapshot into its own registry via the same
:meth:`~repro.obs.MetricsRegistry.merge` machinery the distributed
campaign workers use — so ``--metrics-out`` after a fleet run holds
fleet-wide totals (``serve_requests{status="200"}`` across every
worker), plus ``serve_fleet_workers`` / ``serve_fleet_exit_codes``
for the roster.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import get_logger, get_registry

__all__ = ["FleetReport", "ServingFleet", "serve_fleet_forever"]

_log = get_logger("serve.fleet")

#: Socket-sharing modes (see the module docstring).
FLEET_MODES = ("auto", "reuse-port", "shared-socket")


def reuse_port_available() -> bool:
    """Whether this platform exposes ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass
class FleetReport:
    """What a stopped fleet left behind."""

    workers: int
    exit_codes: List[int]
    snapshots: List[Optional[Dict]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every worker drained and exited 0."""
        return all(code == 0 for code in self.exit_codes)


class ServingFleet:
    """N forked :class:`PredictionServer` workers behind one port.

    Args:
        predictor: The fitted predictor, loaded once pre-fork.
        workers: Process count (>= 1).
        host / port: Shared bind address (port 0 picks a free one,
            resolved before the first fork).
        model_info: Identity dict forwarded to every worker.
        server_options: Keyword arguments for each worker's
            :class:`PredictionServer` (``max_batch``, ``cache_size``,
            ``service_delay``, ...) plus the admission scalars
            ``max_inflight`` / ``client_rate`` / ``client_burst``,
            from which each worker builds its own
            :class:`~repro.serve.admission.AdmissionController`
            (admission state is per worker).
        mode: ``auto`` | ``reuse-port`` | ``shared-socket``.
    """

    def __init__(
        self,
        predictor,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        model_info: Optional[Dict] = None,
        server_options: Optional[Dict] = None,
        mode: str = "auto",
    ) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if mode not in FLEET_MODES:
            raise ValueError(
                f"unknown fleet mode {mode!r}; expected one of "
                f"{', '.join(FLEET_MODES)}"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "a serving fleet needs the fork start method (the "
                "predictor and sockets are inherited, not pickled); "
                "this platform does not support it"
            )
        self._predictor = predictor
        self.workers = workers
        self.host = host
        self.port = port
        self.model_info = dict(model_info or {})
        self.server_options = dict(server_options or {})
        self.mode = (
            ("reuse-port" if reuse_port_available() else "shared-socket")
            if mode == "auto" else mode
        )
        if self.mode == "reuse-port" and not reuse_port_available():
            raise RuntimeError("SO_REUSEPORT is not available here")
        self._ctx = multiprocessing.get_context("fork")
        self._processes: List = []
        self._placeholder: Optional[socket.socket] = None
        self._listener: Optional[socket.socket] = None
        self._snapshot_dir: Optional[str] = None
        self._report: Optional[FleetReport] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: float = 120.0) -> None:
        """Bind the port, fork the workers, wait until all are ready."""
        if self._processes:
            raise RuntimeError("the fleet is already running")
        self._snapshot_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        listener = None
        if self.mode == "reuse-port":
            # A bound, non-listening placeholder: resolves port 0 and
            # pins the port (SO_REUSEPORT binds only bind alongside
            # other SO_REUSEPORT binds by the same user) without ever
            # receiving connections — the kernel balances only across
            # *listening* sockets.
            placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            placeholder.bind((self.host, self.port))
            self.port = placeholder.getsockname()[1]
            self._placeholder = placeholder
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(1024)
            self.port = listener.getsockname()[1]
            self._listener = listener
        ready_events = []
        for index in range(self.workers):
            ready = self._ctx.Event()
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    self._predictor, self.host, self.port, self.mode,
                    listener, ready,
                    os.path.join(self._snapshot_dir, f"worker-{index}.json"),
                    index, self.model_info, self.server_options,
                ),
                name=f"repro-serve-worker-{index}",
                daemon=True,  # a dead parent must not leave orphans
            )
            process.start()
            self._processes.append(process)
            ready_events.append(ready)
        deadline = time.monotonic() + timeout
        for index, ready in enumerate(ready_events):
            if not ready.wait(max(0.0, deadline - time.monotonic())):
                self._abort()
                raise RuntimeError(
                    f"fleet worker {index} never became ready "
                    f"(exit code {self._processes[index].exitcode})"
                )
        # Workers hold the port now; the parent's sockets can go.
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        _log.info(
            "fleet up: %d worker(s) on http://%s:%d (%s)",
            self.workers, self.host, self.port, self.mode,
        )

    def alive(self) -> int:
        """Workers still running."""
        return sum(1 for p in self._processes if p.is_alive())

    def begin_drain(self) -> None:
        """Relay SIGTERM to every live worker (they drain gracefully)."""
        for process in self._processes:
            if process.is_alive() and process.pid:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass

    def stop(self, timeout: float = 60.0) -> FleetReport:
        """Drain the fleet, merge worker telemetry, report exit codes.

        Idempotent: a second call returns the first report.
        """
        if self._report is not None:
            return self._report
        self.begin_drain()
        deadline = time.monotonic() + timeout
        for process in self._processes:
            process.join(max(0.0, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                _log.error(
                    "worker %s did not drain in %.0fs; killing",
                    process.name, timeout,
                )
                process.kill()
                process.join(10.0)
        snapshots = self._collect_snapshots()
        registry = get_registry()
        merged = 0
        for snapshot in snapshots:
            if snapshot is not None:
                registry.merge(snapshot)
                merged += 1
        exit_codes = [
            process.exitcode if process.exitcode is not None else -1
            for process in self._processes
        ]
        registry.gauge("serve.fleet.workers").set(self.workers)
        registry.counter("serve.fleet.snapshots.merged").inc(merged)
        for index, code in enumerate(exit_codes):
            registry.gauge(
                "serve.fleet.exit_code", worker=str(index)
            ).set(code)
        self._cleanup()
        self._report = FleetReport(
            workers=self.workers,
            exit_codes=exit_codes,
            snapshots=snapshots,
        )
        _log.info(
            "fleet stopped: exit codes %s, %d/%d snapshots merged",
            exit_codes, merged, self.workers,
        )
        return self._report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _collect_snapshots(self) -> List[Optional[Dict]]:
        snapshots: List[Optional[Dict]] = []
        for index in range(self.workers):
            path = os.path.join(
                self._snapshot_dir or "", f"worker-{index}.json"
            )
            try:
                with open(path, encoding="utf-8") as handle:
                    snapshots.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                _log.warning("no telemetry snapshot from worker %d", index)
                snapshots.append(None)
        return snapshots

    def _abort(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.kill()
        for process in self._processes:
            process.join(10.0)
        self._cleanup()

    def _cleanup(self) -> None:
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
            self._snapshot_dir = None


def _worker_main(
    predictor,
    host: str,
    port: int,
    mode: str,
    listener: Optional[socket.socket],
    ready,
    snapshot_path: str,
    index: int,
    model_info: Dict,
    server_options: Dict,
) -> None:
    """One forked worker: serve until SIGTERM, then drain and snapshot."""
    import asyncio

    from repro.obs import MetricsRegistry, set_registry

    from .admission import AdmissionController
    from .server import PredictionServer

    # A fresh registry: the parent may have trained, published or
    # benched in-process before forking, and merging those inherited
    # series back would double-count them fleet-wide.
    set_registry(MetricsRegistry())
    registry = get_registry()
    registry.gauge("serve.worker.index").set(index)

    options = dict(server_options)
    admission = None
    max_inflight = int(options.pop("max_inflight", 0) or 0)
    client_rate = float(options.pop("client_rate", 0.0) or 0.0)
    client_burst = int(options.pop("client_burst", 0) or 0)
    if max_inflight > 0 or client_rate > 0:
        admission = AdmissionController(
            max_inflight=max_inflight,
            client_rate=client_rate,
            client_burst=client_burst,
        )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        server = PredictionServer(
            predictor,
            host=host,
            port=port,
            model_info={**model_info, "worker": index},
            admission=admission,
            sock=listener if mode == "shared-socket" else None,
            reuse_port=(mode == "reuse-port"),
            **options,
        )
        await server.start()
        ready.set()
        try:
            await stop.wait()
        finally:
            await server.drain()

    try:
        asyncio.run(_serve())
    finally:
        # The snapshot is the worker's last will: written atomically on
        # every exit path so the parent merge sees either a complete
        # registry or nothing.
        scratch = f"{snapshot_path}.tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(get_registry().snapshot(), handle)
        os.replace(scratch, snapshot_path)


def serve_fleet_forever(
    predictor,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 8100,
    model_info: Optional[Dict] = None,
    server_options: Optional[Dict] = None,
    mode: str = "auto",
    ready_callback=None,
) -> FleetReport:
    """Run a serving fleet until SIGTERM/SIGINT, then drain it.

    The fleet-flavoured :func:`~repro.serve.server.serve_forever`: the
    parent supervises, relays signals, and merges worker telemetry
    into its registry before returning — so the CLI's
    ``--metrics-out`` flush sees fleet-wide totals on every exit path.
    """
    fleet = ServingFleet(
        predictor,
        workers,
        host=host,
        port=port,
        model_info=model_info,
        server_options=server_options,
        mode=mode,
    )
    fleet.start()
    if ready_callback is not None:
        ready_callback(fleet)
    stop = threading.Event()

    def _relay(_signum, _frame) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _relay)
        except (ValueError, OSError):
            pass  # not the main thread; rely on fleet.stop() below
    try:
        while not stop.is_set():
            stop.wait(0.5)
            if fleet.alive() == 0:
                _log.warning("every fleet worker exited; shutting down")
                break
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        report = fleet.stop()
    return report
