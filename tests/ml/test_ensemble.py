"""Tests for the stacked ensemble fast path.

The contract under test is exact: the stacked forward pass must
reproduce the per-model loop bit for bit (``np.array_equal``, not
``allclose``), because the predictor silently routes through it.
"""

import numpy as np
import pytest

from repro.core import ArchitectureCentricPredictor
from repro.core.program_model import ProgramSpecificPredictor
from repro.ml import StackedEnsemble
from repro.sim import Metric


@pytest.fixture(scope="module")
def models(cycles_pool):
    return cycles_pool.models()


@pytest.fixture(scope="module")
def ensemble(models):
    return StackedEnsemble.from_models(models)


class TestBitIdentity:
    def test_predict_matches_every_member_exactly(
        self, ensemble, models, configs
    ):
        batch = list(configs[:50])
        stacked = ensemble.predict(batch)
        assert stacked.shape == (len(models), len(batch))
        for row, model in zip(stacked, models):
            assert np.array_equal(row, model.predict(batch))

    def test_log_model_matrix_matches_stacked_columns(
        self, ensemble, models, configs
    ):
        batch = list(configs[:50])
        expected = np.log10(
            np.stack([model.predict(batch) for model in models], axis=1)
        )
        produced = ensemble.log_model_matrix(batch)
        assert produced.flags["C_CONTIGUOUS"]
        assert np.array_equal(produced, expected)

    def test_predictor_path_identical_to_per_model_fallback(
        self, models, small_dataset
    ):
        response_idx, holdout_idx = small_dataset.split_indices(32, seed=3)
        response_configs = small_dataset.subset_configs(response_idx)
        response_values = small_dataset.subset_values(
            "art", Metric.CYCLES, response_idx
        )
        holdout = small_dataset.subset_configs(holdout_idx)

        fast = ArchitectureCentricPredictor(models)
        slow = ArchitectureCentricPredictor(models)
        # Forcing the lazy build to conclude "no ensemble" pins the
        # fallback per-model loop for the comparison.
        slow._ensemble_built = True
        assert slow._stacked_ensemble() is None
        assert fast._stacked_ensemble() is not None

        fast.fit_responses(response_configs, response_values)
        slow.fit_responses(response_configs, response_values)
        assert fast.training_error == slow.training_error
        assert np.array_equal(fast.predict(holdout), slow.predict(holdout))


class TestShapes:
    def test_empty_batch(self, ensemble, models):
        assert ensemble.predict([]).shape == (len(models), 0)

    def test_len_and_programs(self, ensemble, models):
        assert len(ensemble) == len(models)
        assert list(ensemble.programs) == [m.program for m in models]

    def test_feature_width_checked(self, ensemble):
        with pytest.raises(ValueError, match="features"):
            ensemble.predict_features(np.zeros((4, ensemble.input_dim + 1)))


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            StackedEnsemble.from_models([])
        assert StackedEnsemble.maybe_from_models([]) is None

    def test_untrained_member_declines_softly(self, models):
        untrained = ProgramSpecificPredictor(
            space=models[0].space, metric=Metric.CYCLES, program="raw"
        )
        with pytest.raises(RuntimeError):
            StackedEnsemble.from_models(list(models) + [untrained])
        assert (
            StackedEnsemble.maybe_from_models(list(models) + [untrained])
            is None
        )

    def test_mixed_hidden_widths_decline(self, models, small_dataset):
        odd = ProgramSpecificPredictor(
            space=models[0].space,
            metric=Metric.CYCLES,
            program="odd",
            hidden_neurons=4,
            seed=11,
        )
        train_idx, _ = small_dataset.split_indices(64, seed=11)
        odd.fit(
            small_dataset.subset_configs(train_idx),
            small_dataset.subset_values("gzip", Metric.CYCLES, train_idx),
        )
        mixed = list(models) + [odd]
        with pytest.raises(ValueError, match="shape"):
            StackedEnsemble.from_models(mixed)
        assert StackedEnsemble.maybe_from_models(mixed) is None

    def test_distinct_spaces_decline(self, models):
        from repro.designspace import DesignSpace

        # A structurally equal but distinct space instance still
        # declines: "encode once" is only sound for one shared encoder.
        clone = ProgramSpecificPredictor(
            space=DesignSpace(), metric=Metric.CYCLES, program="clone"
        )
        clone.adopt_network_weights(
            models[0].network_weights(), training_size=1
        )
        assert (
            StackedEnsemble.maybe_from_models(list(models) + [clone]) is None
        )


class TestMixedLogTarget:
    def test_raw_target_member_not_exponentiated(self, small_dataset):
        space = small_dataset.simulator.space
        train_idx, _ = small_dataset.split_indices(64, seed=21)
        train_configs = small_dataset.subset_configs(train_idx)
        members = []
        for program, log_target in (("gzip", True), ("applu", False)):
            member = ProgramSpecificPredictor(
                space=space,
                metric=Metric.CYCLES,
                program=program,
                seed=21,
                log_target=log_target,
            )
            member.fit(
                train_configs,
                small_dataset.subset_values(
                    program, Metric.CYCLES, train_idx
                ),
            )
            members.append(member)
        ensemble = StackedEnsemble.from_models(members)
        batch = small_dataset.configs[:20]
        stacked = ensemble.predict(batch)
        for row, member in zip(stacked, members):
            assert np.array_equal(row, member.predict(batch))


class TestInvariantForward:
    """The batch-composition-invariant path the serving layer uses."""

    def test_invariant_rows_do_not_depend_on_batch_mates(
        self, ensemble, small_dataset
    ):
        batch = list(small_dataset.configs[:30])
        features = ensemble.space.encode_many(batch)
        full = ensemble.predict_features_invariant(features)
        for index in (0, 7, 29):
            alone = ensemble.predict_features_invariant(
                features[index : index + 1]
            )
            assert np.array_equal(alone[:, 0], full[:, index])

    def test_invariant_close_to_matmul_path(self, ensemble, small_dataset):
        batch = list(small_dataset.configs[:30])
        features = ensemble.space.encode_many(batch)
        invariant = ensemble.predict_features_invariant(features)
        matmul = ensemble.predict_features(features)
        assert np.allclose(invariant, matmul, rtol=1e-12)

    def test_log_model_matrix_invariant_composition(
        self, ensemble, small_dataset
    ):
        superset = list(small_dataset.configs[:40])
        subset = superset[5:15]
        full = ensemble.log_model_matrix_invariant(superset)
        part = ensemble.log_model_matrix_invariant(subset)
        assert np.array_equal(part, full[5:15])

    def test_log_model_matrix_invariant_close_to_blas(
        self, ensemble, small_dataset
    ):
        batch = list(small_dataset.configs[:25])
        invariant = ensemble.log_model_matrix_invariant(batch)
        blas = ensemble.log_model_matrix(batch)
        assert invariant.shape == blas.shape
        assert np.allclose(invariant, blas, rtol=1e-12)
