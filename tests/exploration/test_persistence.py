"""Tests for dataset save/load round-tripping."""

import numpy as np
import pytest

from repro.exploration import DesignSpaceDataset, load_dataset, save_dataset
from repro.sim import Metric


@pytest.fixture()
def archive(tmp_path, small_dataset):
    return save_dataset(small_dataset, tmp_path / "dataset.npz")


class TestRoundTrip:
    def test_values_identical(self, archive, small_dataset, small_suite):
        restored = load_dataset(archive, small_suite)
        for metric in Metric.all():
            for program in small_suite.programs:
                assert np.allclose(
                    restored.values(program, metric),
                    small_dataset.values(program, metric),
                )

    def test_configs_identical(self, archive, small_dataset, small_suite):
        restored = load_dataset(archive, small_suite)
        assert restored.configs == small_dataset.configs

    def test_loaded_values_served_without_simulation(
        self, archive, small_suite
    ):
        restored = load_dataset(archive, small_suite)
        # Every (program, metric) pair must already be cached.
        for metric in Metric.all():
            for program in small_suite.programs:
                assert (program, metric) in restored._cache

    def test_restored_dataset_supports_splits(self, archive, small_suite):
        restored = load_dataset(archive, small_suite)
        first, rest = restored.split_indices(16, seed=3)
        assert len(first) == 16
        values = restored.subset_values("gzip", Metric.CYCLES, first)
        assert values.shape == (16,)


class TestValidation:
    def test_wrong_suite_name_rejected(self, archive, small_suite):
        renamed = type(small_suite)("other", small_suite.profiles)
        with pytest.raises(ValueError, match="suite"):
            load_dataset(archive, renamed)

    def test_wrong_program_list_rejected(self, archive, small_suite):
        reduced = small_suite.without("art")
        with pytest.raises(ValueError, match="program list"):
            load_dataset(archive, reduced)

    def test_archive_is_a_single_file(self, archive):
        assert archive.exists()
        assert archive.suffix == ".npz"


def _repack(archive, out_path, **overrides):
    """Rewrite an archive with some entries replaced (checksum kept)."""
    with np.load(archive, allow_pickle=False) as handle:
        payload = {name: handle[name] for name in handle.files}
    payload.update(overrides)
    np.savez_compressed(out_path, **payload)
    return out_path


class TestCorruptArchives:
    """A damaged archive must always raise, never hydrate garbage."""

    def test_truncated_archive_rejected(self, archive, small_suite,
                                        tmp_path):
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(archive.read_bytes()[:-200])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            load_dataset(clipped, small_suite)

    def test_empty_file_rejected(self, small_suite, tmp_path):
        empty = tmp_path / "empty.npz"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            load_dataset(empty, small_suite)

    def test_tampered_values_fail_the_checksum(self, archive, small_suite,
                                               tmp_path):
        with np.load(archive, allow_pickle=False) as handle:
            matrix = np.array(handle["metric_cycles"])
        matrix[0, 0] *= 1.5  # a single silent bit of drift
        bad = _repack(archive, tmp_path / "drift.npz",
                      **{"metric_cycles": matrix})
        with pytest.raises(ValueError, match="checksum"):
            load_dataset(bad, small_suite)

    def test_missing_checksum_rejected(self, archive, small_suite,
                                       tmp_path):
        with np.load(archive, allow_pickle=False) as handle:
            payload = {
                name: handle[name]
                for name in handle.files
                if name != "checksum"
            }
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **payload)
        with pytest.raises(ValueError):
            load_dataset(legacy, small_suite)

    def test_wrong_metric_matrix_shape_rejected(self, archive, small_suite,
                                                tmp_path):
        with np.load(archive, allow_pickle=False) as handle:
            matrix = np.array(handle["metric_energy"])
        bad = _repack(archive, tmp_path / "shape.npz",
                      **{"metric_energy": matrix[:, :-5]})
        with pytest.raises(ValueError, match="shape"):
            load_dataset(bad, small_suite)

    def test_unsupported_version_rejected(self, archive, small_suite,
                                          tmp_path):
        bad = _repack(archive, tmp_path / "version.npz",
                      format_version=np.array(99))
        with pytest.raises(ValueError, match="version"):
            load_dataset(bad, small_suite)

    def test_nonfinite_values_rejected_even_with_valid_checksum(
        self, archive, small_suite, tmp_path
    ):
        """Re-checksummed NaN poison still fails (hydrate validates)."""
        from repro.runtime import payload_checksum

        with np.load(archive, allow_pickle=False) as handle:
            payload = {name: np.array(handle[name]) for name in handle.files}
        payload["metric_cycles"][0, 0] = np.nan
        payload["checksum"] = np.array(payload_checksum(payload))
        bad = tmp_path / "nan.npz"
        np.savez_compressed(bad, **payload)
        with pytest.raises(ValueError, match="non-finite"):
            load_dataset(bad, small_suite)
