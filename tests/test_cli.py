"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Reorder buffer" in out
        assert "18,952,704,000" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Integer ALUs" in out


class TestSimulate:
    def test_baseline(self, capsys):
        assert main(["simulate", "--program", "gzip"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "IPC" in out

    def test_override_parameters(self, capsys):
        assert main(
            ["simulate", "--program", "art", "--l2cache-kb", "4096"]
        ) == 0
        assert "l2cache_kb=4096" in capsys.readouterr().out

    def test_mibench_program(self, capsys):
        assert main(["simulate", "--program", "sha"]) == 0

    def test_unknown_program(self, capsys):
        assert main(["simulate", "--program", "doom"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_illegal_configuration(self, capsys):
        code = main(
            ["simulate", "--program", "gzip", "--rob-size", "32",
             "--iq-size", "80"]
        )
        assert code == 2
        assert "illegal" in capsys.readouterr().err


class TestPredict:
    def test_small_scale_run(self, capsys):
        code = main(
            ["predict", "--program", "applu", "--samples", "300",
             "--training-size", "200", "--responses", "24"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "held-out rmae" in out
        assert "correlation" in out

    def test_unknown_program(self, capsys):
        assert main(["predict", "--program", "doom", "--samples", "100"]) == 2


class TestAnalyze:
    def test_spec_analysis(self, capsys):
        assert main(
            ["analyze", "--metric", "cycles", "--samples", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "outliers" in out
        assert "most influential parameters" in out

    def test_bad_metric(self):
        with pytest.raises(ValueError):
            main(["analyze", "--metric", "ipc", "--samples", "100"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlan:
    def test_plan_prints_splits(self, capsys):
        assert main(["plan", "--budget", "2000", "--new-programs", "3"]) == 0
        out = capsys.readouterr().out
        assert "best splits" in out
        assert "expected rmae" in out

    def test_impossible_budget(self, capsys):
        assert main(["plan", "--budget", "5"]) == 1
        assert "no admissible split" in capsys.readouterr().err


class TestFullReport:
    def test_full_report(self, capsys):
        assert main(
            ["analyze", "--metric", "energy", "--samples", "250", "--full"]
        ) == 0
        out = capsys.readouterr().out
        assert "design-space report" in out
        assert "hierarchical clustering" in out
        assert "main effects" in out


class TestExplore:
    def test_explore_spec_program(self, capsys):
        code = main(
            ["explore", "--program", "applu", "--metric", "cycles",
             "--samples", "300", "--training-size", "200",
             "--candidates", "400"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "sweet spots" in out

    def test_explore_unknown_program(self, capsys):
        assert main(
            ["explore", "--program", "doom", "--samples", "100"]
        ) == 2
