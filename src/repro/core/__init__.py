"""The paper's contribution: the architecture-centric predictor.

Public surface:

* :class:`ProgramSpecificPredictor` — per-program ANN (and the baseline).
* :class:`ArchitectureCentricPredictor` — the cross-program model.
* :class:`TrainingPool` — offline training of per-program models.
* :func:`leave_one_out` / :func:`cross_suite` — evaluation protocols.
* :func:`save_predictor` / :func:`load_predictor` — fitted-predictor
  artifacts (what the model registry publishes and the server loads).
"""

from .active import model_disagreement, select_responses
from .baselines import LinearBaselinePredictor, SplineBaselinePredictor
from .crossval import (
    CrossValidationResult,
    PredictionScore,
    ProgramSummary,
    cross_suite,
    evaluate_on_program,
    leave_one_out,
    program_specific_score,
)
from .multimetric import MultiMetricPredictor
from .persistence import (
    load_models,
    load_predictor,
    save_models,
    save_predictor,
)
from .predictor import ArchitectureCentricPredictor
from .program_model import ProgramSpecificPredictor
from .training import TrainingPool
from .uncertainty import UncertainPrediction, bootstrap_predict, coverage
from .workflow import ExplorationReport, explore_new_program

__all__ = [
    "ArchitectureCentricPredictor",
    "LinearBaselinePredictor",
    "MultiMetricPredictor",
    "SplineBaselinePredictor",
    "CrossValidationResult",
    "ExplorationReport",
    "PredictionScore",
    "ProgramSpecificPredictor",
    "ProgramSummary",
    "TrainingPool",
    "UncertainPrediction",
    "bootstrap_predict",
    "coverage",
    "cross_suite",
    "evaluate_on_program",
    "explore_new_program",
    "leave_one_out",
    "load_models",
    "load_predictor",
    "model_disagreement",
    "program_specific_score",
    "save_models",
    "save_predictor",
    "select_responses",
]
