"""Tests for the best/worst-1% parameter analysis (Figs. 2-3)."""

import pytest

from repro.analysis import dominant_values, extreme_frequencies
from repro.sim import Metric


@pytest.fixture(scope="module")
def worst_cycles(small_dataset):
    return extreme_frequencies(small_dataset, Metric.CYCLES, "worst",
                               fraction=0.02)


@pytest.fixture(scope="module")
def best_energy(small_dataset):
    return extreme_frequencies(small_dataset, Metric.ENERGY, "best",
                               fraction=0.02)


class TestFrequencies:
    def test_frequencies_are_probabilities(self, worst_cycles):
        for values in worst_cycles.frequencies.values():
            for frequency in values.values():
                assert 0.0 <= frequency <= 1.0

    def test_per_parameter_frequencies_sum_to_one(self, worst_cycles):
        for parameter, values in worst_cycles.frequencies.items():
            assert sum(values.values()) == pytest.approx(1.0)

    def test_marginals_sum_to_one(self, worst_cycles):
        for values in worst_cycles.marginals.values():
            assert sum(values.values()) == pytest.approx(1.0)

    def test_small_rf_dominates_worst_cycles(self, worst_cycles):
        """The paper's headline Section 3.4 finding."""
        value, frequency = worst_cycles.top_value("rf_size")
        assert value == 40
        assert frequency > 0.5
        assert worst_cycles.lift("rf_size", 40) > 3.0

    def test_narrow_machines_dominate_best_energy(self, best_energy):
        # width=2 is only ~3.5% of the legal space (port-combination
        # skew), so the robust signal is its lift, not raw frequency.
        assert best_energy.lift("width", 2) > 3.0
        narrow = (
            best_energy.frequencies["width"][2]
            + best_energy.frequencies["width"][4]
        )
        assert narrow > 0.8

    def test_small_l2_favoured_for_energy(self, best_energy):
        small = sum(
            best_energy.frequencies["l2cache_kb"][v] for v in (256, 512)
        )
        large = best_energy.frequencies["l2cache_kb"][4096]
        assert small > large

    def test_invalid_tail_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="tail"):
            extreme_frequencies(small_dataset, Metric.CYCLES, "middle")

    def test_invalid_fraction_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            extreme_frequencies(small_dataset, Metric.CYCLES, "best",
                                fraction=0.9)


class TestDominantValues:
    def test_sorted_by_frequency(self, worst_cycles):
        dominant = dominant_values(worst_cycles, threshold=0.2)
        frequencies = [frequency for _, _, frequency in dominant]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_rf40_is_reported(self, worst_cycles):
        dominant = dominant_values(worst_cycles, threshold=0.3)
        assert any(
            parameter == "rf_size" and value == 40
            for parameter, value, _ in dominant
        )

    def test_lift_filter_drops_base_rate_artifacts(self, worst_cycles):
        """width=8 is >50% of all legal points; without lift it would be
        reported as 'dominant' in every tail."""
        dominant = dominant_values(worst_cycles, threshold=0.3,
                                   minimum_lift=1.25)
        for parameter, value, _ in dominant:
            assert worst_cycles.lift(parameter, value) >= 1.25
