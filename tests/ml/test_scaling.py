"""Tests for the feature/target scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import MinMaxScaler, StandardScaler

_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=1, max_value=8),
    ),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_handled(self):
        data = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.empty((0, 3)))

    @given(_matrices)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, data):
        scaler = StandardScaler().fit(data)
        recovered = scaler.inverse_transform(scaler.transform(data))
        assert np.allclose(recovered, data, atol=1e-6 * (1 + np.abs(data).max()))


class TestMinMaxScaler:
    def test_unit_interval(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(-3.0, 7.0, size=(100, 3))
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= -1e-12
        assert scaled.max() <= 1.0 + 1e-12

    def test_fit_bounds(self):
        scaler = MinMaxScaler().fit_bounds(np.array([0.0]), np.array([10.0]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.5)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit_bounds(np.array([1.0]), np.array([0.0]))

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit_bounds(np.array([1.0]), np.array([2.0, 3.0]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((1, 1)))

    @given(_matrices)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, data):
        scaler = MinMaxScaler().fit(data)
        recovered = scaler.inverse_transform(scaler.transform(data))
        assert np.allclose(recovered, data, atol=1e-6 * (1 + np.abs(data).max()))
