"""Framing, integrity and versioning of the wire protocol."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.distrib.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_message,
    write_message,
)


def _envelope_of(frame: bytes) -> dict:
    return json.loads(frame[4:].decode("utf-8"))


class TestFrames:
    def test_round_trip(self):
        payload = {"type": "task", "cell": "gzip:3", "x": [1.5, -2.25]}
        assert decode_frame(encode_frame(payload)[4:]) == payload

    def test_payload_needs_a_type(self):
        with pytest.raises(ProtocolError, match="type"):
            encode_frame({"cell": "gzip:0"})

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="wire-encodable"):
            encode_frame({"type": "task", "bad": float("nan")})

    def test_corrupted_byte_detected(self):
        frame = bytearray(encode_frame({"type": "hello", "worker": "w1"}))
        # Flip one character inside the payload section of the envelope.
        index = frame.index(b"w1") + 1
        frame[index] ^= 0x01
        with pytest.raises(ProtocolError, match="checksum|JSON"):
            decode_frame(bytes(frame[4:]))

    def test_tampered_payload_detected(self):
        frame = encode_frame({"type": "result", "ok": True})
        envelope = _envelope_of(frame)
        envelope["payload"]["ok"] = False  # checksum now stale
        with pytest.raises(ProtocolError, match="checksum"):
            decode_frame(json.dumps(envelope).encode("utf-8"))

    def test_version_mismatch_rejected(self):
        frame = encode_frame({"type": "hello"})
        envelope = _envelope_of(frame)
        envelope["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_frame(json.dumps(envelope).encode("utf-8"))

    def test_non_object_envelope_rejected(self):
        with pytest.raises(ProtocolError, match="not an object"):
            decode_frame(b"[1, 2, 3]")

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_frame(b"\xff\xfe\x00")


class TestStreams:
    def test_stream_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"type": "hb_ack", "n": 7}))
            reader.feed_eof()
            first = await read_message(reader)
            second = await read_message(reader)
            return first, second

        first, second = asyncio.run(scenario())
        assert first == {"type": "hb_ack", "n": 7}
        assert second is None  # clean EOF between frames

    def test_truncated_frame_is_a_protocol_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"type": "task_request"})[:-3])
            reader.feed_eof()
            await read_message(reader)

        with pytest.raises(ProtocolError, match="mid-frame"):
            asyncio.run(scenario())

    def test_truncated_prefix_is_a_protocol_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            await read_message(reader)

        with pytest.raises(ProtocolError, match="mid-length-prefix"):
            asyncio.run(scenario())

    def test_oversized_announcement_rejected_before_reading(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            await read_message(reader)

        with pytest.raises(ProtocolError, match="exceeds"):
            asyncio.run(scenario())

    def test_loopback_socket_round_trip(self):
        async def scenario():
            received = []
            done = asyncio.Event()

            async def handler(reader, writer):
                received.append(await read_message(reader))
                await write_message(writer, {"type": "ack", "accepted": True})
                writer.close()
                done.set()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await write_message(writer, {"type": "hello", "worker": "w"})
            reply = await read_message(reader)
            writer.close()
            await done.wait()
            server.close()
            await server.wait_closed()
            return received[0], reply

        sent, reply = asyncio.run(scenario())
        assert sent == {"type": "hello", "worker": "w"}
        assert reply == {"type": "ack", "accepted": True}
