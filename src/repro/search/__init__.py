"""Closed-loop design-space search over the fitted predictors.

The paper stops at "predict anywhere in the 13-parameter space"; this
subsystem supplies the modern sequel (ArchGym/OneDSE framing, see
PAPERS.md): the trained predictor becomes the cheap inner loop of an
*optimizer* that navigates the space toward Pareto-optimal designs.

Public surface:

* :class:`DesignSpaceEnv` — gym-style budgeted environment over a
  design space plus a metric oracle (:class:`PredictorOracle` /
  :class:`SimulationOracle`).
* :class:`Agent` implementations — random, hill-climb, annealing,
  genetic (NSGA-II-style), Bayesian expected improvement — built by
  :func:`make_agent`, all seeded and deterministic.
* :class:`ParetoArchive` / :func:`pareto_indices` /
  :func:`hypervolume` — multi-objective frontier machinery.
* :func:`run_search` / :class:`SearchOutcome` / :func:`write_frontier`
  — the shared search loop behind ``repro search``, ``/search`` and
  the benchmark.
* :func:`pick_response_indices` — active-learning response selection
  beating the paper's random R = 32 draw at equal budget.
* The classic one-shot strategies (:func:`hill_climb`,
  :func:`simulated_annealing`, :func:`pareto_front`, ...) migrated
  from ``repro.exploration.search``.
"""

from .agents import (
    AGENT_NAMES,
    Agent,
    AnnealingAgent,
    BayesianAgent,
    GeneticAgent,
    HillClimbAgent,
    RandomAgent,
    make_agent,
)
from .env import (
    DesignSpaceEnv,
    Observation,
    Oracle,
    PredictorOracle,
    SimulationOracle,
)
from .pareto import (
    FrontierPoint,
    ParetoArchive,
    dominated_fraction_nd,
    hypervolume,
    pareto_indices,
    suggest_reference,
)
from .responses import (
    RESPONSE_STRATEGIES,
    ensemble_disagreement,
    pick_response_indices,
)
from .runner import SearchOutcome, run_search, write_frontier
from .strategies import (
    Predictor,
    RankedCandidate,
    SearchResult,
    TradeOffPoint,
    dominated_fraction,
    hill_climb,
    pareto_front,
    predicted_best,
    simulated_annealing,
)

__all__ = [
    "AGENT_NAMES",
    "Agent",
    "AnnealingAgent",
    "BayesianAgent",
    "DesignSpaceEnv",
    "FrontierPoint",
    "GeneticAgent",
    "HillClimbAgent",
    "Observation",
    "Oracle",
    "ParetoArchive",
    "Predictor",
    "PredictorOracle",
    "RESPONSE_STRATEGIES",
    "RandomAgent",
    "RankedCandidate",
    "SearchOutcome",
    "SearchResult",
    "SimulationOracle",
    "TradeOffPoint",
    "dominated_fraction",
    "dominated_fraction_nd",
    "ensemble_disagreement",
    "hill_climb",
    "hypervolume",
    "make_agent",
    "pareto_front",
    "pareto_indices",
    "pick_response_indices",
    "predicted_best",
    "run_search",
    "simulated_annealing",
    "suggest_reference",
    "write_frontier",
]
