"""Tests for the offline training pool."""

import pytest

from repro.core import TrainingPool
from repro.sim import Metric


class TestTrainingPool:
    def test_models_lazy_and_cached(self, small_dataset):
        pool = TrainingPool(small_dataset, Metric.CYCLES,
                            training_size=64, seed=1)
        first = pool.model("gzip")
        second = pool.model("gzip")
        assert first is second

    def test_train_all_covers_suite(self, cycles_pool, small_dataset):
        models = cycles_pool.models()
        assert len(models) == len(small_dataset.programs)

    def test_exclude(self, cycles_pool, small_dataset):
        models = cycles_pool.models(exclude=["art"])
        assert len(models) == len(small_dataset.programs) - 1
        assert all(model.program != "art" for model in models)

    def test_include(self, cycles_pool):
        models = cycles_pool.models(include=["gzip", "art"])
        assert [model.program for model in models] == ["gzip", "art"]

    def test_unknown_program_rejected(self, cycles_pool):
        with pytest.raises(KeyError):
            cycles_pool.models(include=["doom"])
        with pytest.raises(KeyError):
            cycles_pool.models(exclude=["doom"])

    def test_models_trained_at_requested_size(self, cycles_pool):
        assert cycles_pool.model("gzip").training_size_ == 400

    def test_oversized_training_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="exceeds"):
            TrainingPool(small_dataset, Metric.CYCLES,
                         training_size=len(small_dataset) + 1)

    def test_undersized_training_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            TrainingPool(small_dataset, Metric.CYCLES, training_size=1)

    def test_seed_changes_models(self, small_dataset):
        a = TrainingPool(small_dataset, Metric.CYCLES,
                         training_size=64, seed=1).model("gzip")
        b = TrainingPool(small_dataset, Metric.CYCLES,
                         training_size=64, seed=2).model("gzip")
        config = small_dataset.configs[0]
        assert a.predict_one(config) != b.predict_one(config)

    def test_same_seed_reproduces(self, small_dataset):
        a = TrainingPool(small_dataset, Metric.CYCLES,
                         training_size=64, seed=1).model("gzip")
        b = TrainingPool(small_dataset, Metric.CYCLES,
                         training_size=64, seed=1).model("gzip")
        config = small_dataset.configs[0]
        assert a.predict_one(config) == b.predict_one(config)


class TestParallelTraining:
    """The process pool must be a pure performance knob: any worker
    count yields bit-identical models."""

    def test_parallel_weights_bit_identical_to_serial(self, small_dataset):
        import numpy as np

        serial = TrainingPool(small_dataset, Metric.CYCLES,
                              training_size=64, seed=3).train_all()
        parallel = TrainingPool(small_dataset, Metric.CYCLES,
                                training_size=64, seed=3,
                                n_jobs=4).train_all()
        for program in small_dataset.programs:
            a = serial.model(program).network_weights()
            b = parallel.model(program).network_weights()
            assert a.keys() == b.keys()
            for key in a:
                assert np.array_equal(np.asarray(a[key]),
                                      np.asarray(b[key])), (program, key)

    def test_parallel_predictions_bit_identical(self, small_dataset):
        import numpy as np

        serial = TrainingPool(small_dataset, Metric.CYCLES,
                              training_size=64, seed=3).train_all()
        parallel = TrainingPool(small_dataset, Metric.CYCLES,
                                training_size=64, seed=3,
                                n_jobs=2).train_all()
        batch = small_dataset.configs[:40]
        for program in small_dataset.programs:
            assert np.array_equal(serial.model(program).predict(batch),
                                  parallel.model(program).predict(batch))

    def test_train_all_jobs_override(self, small_dataset):
        pool = TrainingPool(small_dataset, Metric.CYCLES,
                            training_size=64, seed=3)
        pool.train_all(n_jobs=2)
        assert len(pool.models()) == len(small_dataset.programs)

    def test_parallel_training_records_preserved(self, small_dataset):
        serial = TrainingPool(small_dataset, Metric.CYCLES,
                              training_size=64, seed=3).train_all()
        parallel = TrainingPool(small_dataset, Metric.CYCLES,
                                training_size=64, seed=3,
                                n_jobs=2).train_all()
        for program in small_dataset.programs:
            a = serial.model(program)._network.training_record_
            b = parallel.model(program)._network.training_record_
            assert a == b

    def test_invalid_n_jobs_rejected(self, small_dataset):
        for bad in (0, -2):
            with pytest.raises(ValueError, match="n_jobs"):
                TrainingPool(small_dataset, Metric.CYCLES,
                             training_size=64, n_jobs=bad)

    def test_all_cpus_shorthand(self):
        from repro.parallel import resolve_jobs

        assert resolve_jobs(-1) >= 1
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
