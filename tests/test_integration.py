"""End-to-end integration tests: the paper's headline claims in miniature.

These run the full stack — workload profiles through the interval
simulator into the learning pipeline — at reduced scale and assert the
*shape* results the paper reports (Section 5 of DESIGN.md).
"""

import numpy as np
import pytest

from repro import (
    ArchitectureCentricPredictor,
    Metric,
    TrainingPool,
    evaluate_on_program,
    program_specific_score,
)


class TestHeadlineClaim:
    """Architecture-centric beats program-specific at 32 simulations."""

    @pytest.fixture(scope="class")
    def scores(self, small_dataset, cycles_pool):
        ours, theirs = [], []
        for program in small_dataset.programs:
            models = cycles_pool.models(exclude=[program])
            ours.append(
                evaluate_on_program(models, small_dataset, program,
                                    responses=32, seed=31)
            )
            theirs.append(
                program_specific_score(small_dataset, program,
                                       Metric.CYCLES, 32, seed=31)
            )
        return ours, theirs

    def test_error_is_substantially_lower(self, scores):
        ours, theirs = scores
        our_mean = np.mean([s.rmae for s in ours])
        their_mean = np.mean([s.rmae for s in theirs])
        assert our_mean < 0.65 * their_mean

    def test_correlation_is_substantially_higher(self, scores):
        ours, theirs = scores
        our_mean = np.mean([s.correlation for s in ours])
        their_mean = np.mean([s.correlation for s in theirs])
        assert our_mean > their_mean + 0.1
        assert our_mean > 0.8

    def test_training_error_predicts_testing_error(self, scores):
        """Section 7.2: ranking by training error correlates with the
        testing-error ranking."""
        ours, _ = scores
        train = np.array([s.training_error for s in ours])
        test = np.array([s.rmae for s in ours])
        train_ranks = np.argsort(np.argsort(train))
        test_ranks = np.argsort(np.argsort(test))
        spearman = np.corrcoef(train_ranks, test_ranks)[0, 1]
        assert spearman > 0.3


class TestPredictorComposition:
    def test_weights_reflect_similarity(self, small_dataset, cycles_pool):
        """Predicting swim (memory-streaming fp) must lean on the
        memory-bound programs; exact attribution is not unique because
        the model columns are collinear, so assert the aggregate."""
        models = cycles_pool.models(exclude=["swim"])
        predictor = ArchitectureCentricPredictor(models)
        idx, _ = small_dataset.split_indices(32, seed=41)
        predictor.fit_responses(
            small_dataset.subset_configs(idx),
            small_dataset.subset_values("swim", Metric.CYCLES, idx),
        )
        weights = predictor.program_weights
        memory_bound = max(abs(weights["applu"]), abs(weights["art"]))
        assert memory_bound > 0.1

    def test_predicting_program_in_pool_is_near_exact(
        self, small_dataset, cycles_pool
    ):
        """If the 'new' program was in the training pool the combination
        should essentially pick its own model."""
        models = cycles_pool.models()  # includes gzip itself
        predictor = ArchitectureCentricPredictor(models)
        idx, rest = small_dataset.split_indices(32, seed=43)
        predictor.fit_responses(
            small_dataset.subset_configs(idx),
            small_dataset.subset_values("gzip", Metric.CYCLES, idx),
        )
        scores = predictor.evaluate(
            small_dataset.subset_configs(rest),
            small_dataset.subset_values("gzip", Metric.CYCLES, rest),
        )
        solo = program_specific_score(
            small_dataset, "gzip", Metric.CYCLES, 256, seed=43
        )
        assert scores["rmae"] < solo.rmae * 1.5


class TestMetricOrdering:
    def test_heavier_metrics_are_harder(self, small_dataset):
        """Error ordering: cycles/energy < ED < EDD (Section 6.2)."""
        errors = {}
        for metric in (Metric.ENERGY, Metric.ED, Metric.EDD):
            pool = TrainingPool(small_dataset, metric,
                                training_size=256, seed=7)
            scores = [
                evaluate_on_program(
                    pool.models(exclude=[p]), small_dataset, p,
                    responses=32, seed=47,
                ).rmae
                for p in ("applu", "swim", "mesa")
            ]
            errors[metric] = np.mean(scores)
        assert errors[Metric.ENERGY] < errors[Metric.ED] < errors[Metric.EDD]
