"""A dependency-free metrics registry: counters, gauges, histograms.

The registry is the numeric side of the telemetry layer.  Subsystems
grab an instrument by name (plus optional labels) and bump it; the
registry serialises to JSON for machine consumption, to the Prometheus
text exposition format for a node-exporter textfile collector, and to a
plain picklable *snapshot* so worker processes can ship their metrics
back to the parent over a ``ProcessPoolExecutor`` and have them
**merged** — counters and histograms add, gauges last-write-wins — into
one campaign-wide view regardless of ``--jobs``.

Instruments are cheap (a dict lookup and a float add), so hot paths can
record unconditionally; determinism is preserved because recording
never touches any random state or result array.

Registry selection mirrors the tracer: a process-global default from
:func:`get_registry`, swappable for a scope with
:func:`scoped_registry` (how workers and tests isolate their counts).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import re
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "scoped_registry",
]

#: Default histogram bucket upper bounds (seconds-flavoured: from 1 ms
#: to 5 minutes).  A trailing +inf bucket is always implied.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: A metric key: the metric name plus its sorted label pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    if not name:
        raise ValueError("a metric needs a non-empty name")
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, attempts, cells)."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _merge(self, state: float) -> None:
        self.value += state

    def _state(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value (queue depth, breaker state, worker count)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0
        self._set_count = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)
        self._set_count += 1

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self.value += amount
        self._set_count += 1

    def _merge(self, state: float) -> None:
        # Last write wins; a worker that never set the gauge must not
        # clobber the parent's value, which `merge` guarantees by only
        # shipping gauges that were touched.
        self.value = state

    def _state(self) -> float:
        return self.value


class Histogram:
    """A distribution summary with fixed, cumulative-style buckets.

    Tracks count / sum / min / max plus per-bucket counts — enough for
    coarse latency percentiles and for Prometheus' ``histogram``
    exposition.  Buckets are upper bounds; an implicit +inf bucket
    catches the tail.
    """

    kind = "histogram"

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (NaN when empty)."""
        return self.sum / self.count if self.count else math.nan

    def _state(self) -> Dict:
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def _merge(self, state: Dict) -> None:
        if list(state["buckets"]) != list(self.buckets):
            raise ValueError("cannot merge histograms with different buckets")
        self.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, state["bucket_counts"])
        ]
        self.count += state["count"]
        self.sum += state["sum"]
        self.min = min(self.min, state["min"])
        self.max = max(self.max, state["max"])


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments plus the exporters and the merge protocol.

    Thread-safe for registration; individual bumps are plain float
    adds (atomic enough under the GIL for this package's use).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[MetricKey, Instrument] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = _key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(**kwargs)
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter registered under ``name`` (+ labels)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge registered under ``name`` (+ labels)."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram registered under ``name`` (+ labels)."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def value(self, name: str, **labels: str) -> float:
        """A counter's or gauge's current value (0.0 when never touched)."""
        instrument = self._instruments.get(_key(name, labels))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a histogram; read it directly")
        return instrument.value

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Tuple[MetricKey, Instrument]]:
        return iter(sorted(self._instruments.items()))

    # ------------------------------------------------------------------
    # Snapshot / merge (the worker -> parent transport)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """A plain, picklable dump of every instrument's state."""
        return {
            "metrics": [
                {
                    "name": name,
                    "labels": list(labels),
                    "kind": instrument.kind,
                    "state": instrument._state(),
                }
                for (name, labels), instrument in self
            ]
        }

    def merge(self, snapshot: Dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histograms add; gauges take the snapshot's value
        (last write wins).  This is how per-worker registries from a
        parallel campaign collapse into the parent's campaign-wide
        totals.
        """
        for entry in snapshot.get("metrics", ()):
            labels = {key: value for key, value in entry["labels"]}
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], **labels)._merge(entry["state"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels)._merge(entry["state"])
            elif kind == "histogram":
                self.histogram(
                    entry["name"],
                    buckets=entry["state"]["buckets"],
                    **labels,
                )._merge(entry["state"])
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        """A JSON-ready dict: one entry per instrument, sorted by name."""
        out: Dict[str, Dict] = {}
        for (name, labels), instrument in self:
            label_suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
                if labels
                else ""
            )
            if isinstance(instrument, Histogram):
                out[name + label_suffix] = {
                    "kind": instrument.kind,
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "min": instrument.min if instrument.count else None,
                    "max": instrument.max if instrument.count else None,
                    "mean": instrument.mean if instrument.count else None,
                }
            else:
                out[name + label_suffix] = {
                    "kind": instrument.kind,
                    "value": instrument.value,
                }
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (textfile collector)."""
        lines: List[str] = []
        typed: set = set()
        for (name, labels), instrument in self:
            prom = _PROM_BAD.sub("_", name)
            if prom not in typed:
                typed.add(prom)
                lines.append(f"# TYPE {prom} {instrument.kind}")
            suffix = _label_suffix(labels)
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(
                    instrument.buckets, instrument.bucket_counts
                ):
                    cumulative += count
                    le = _merge_labels(labels, "le", _format_float(bound))
                    lines.append(f"{prom}_bucket{le} {cumulative}")
                cumulative += instrument.bucket_counts[-1]
                le = _merge_labels(labels, "le", "+Inf")
                lines.append(f"{prom}_bucket{le} {cumulative}")
                lines.append(f"{prom}_sum{suffix} {_format_float(instrument.sum)}")
                lines.append(f"{prom}_count{suffix} {instrument.count}")
            else:
                lines.append(
                    f"{prom}{suffix} {_format_float(instrument.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Export to ``path`` — Prometheus text for ``.prom``/``.txt``,
        JSON otherwise — written atomically (temp file + rename)."""
        path = pathlib.Path(path)
        if path.suffix in (".prom", ".txt"):
            text = self.to_prometheus()
        else:
            text = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text(text, encoding="utf-8")
        os.replace(scratch, path)
        return path


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Backslash, double quote and newline are the three characters the
    exposition format requires escaping inside quoted label values; an
    unescaped one silently corrupts every line after it.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
        + "}"
    )


def _merge_labels(labels: Tuple[Tuple[str, str], ...], key: str,
                  value: str) -> str:
    pairs = list(labels) + [(key, value)]
    return (
        "{"
        + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
        + "}"
    )


def _format_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def scoped_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Swap in a registry for the ``with`` block (tests, workers).

    Args:
        registry: The registry to install; a fresh one by default.

    Yields:
        The installed registry.
    """
    active = registry if registry is not None else MetricsRegistry()
    previous = set_registry(active)
    try:
        yield active
    finally:
        set_registry(previous)
