"""Tests for the simulation-budget planner."""

import pytest

from repro.exploration import (
    amortisation_curve,
    expected_rmae,
    plan_budget,
)


class TestExpectedRmae:
    def test_more_training_helps(self):
        assert expected_rmae(512, 10, 32) < expected_rmae(32, 10, 32)

    def test_more_programs_help(self):
        assert expected_rmae(512, 20, 32) < expected_rmae(512, 3, 32)

    def test_more_responses_help(self):
        assert expected_rmae(512, 10, 64) < expected_rmae(512, 10, 8)

    def test_floor_is_positive(self):
        assert expected_rmae(10**6, 10**3, 10**4) > 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            expected_rmae(1, 10, 32)
        with pytest.raises(ValueError):
            expected_rmae(512, 0, 32)
        with pytest.raises(ValueError):
            expected_rmae(512, 10, 1)


class TestPlanBudget:
    def test_plans_fit_the_budget(self):
        for plan in plan_budget(3000, new_programs=2):
            assert plan.total_simulations <= 3000

    def test_plans_sorted_best_first(self):
        plans = plan_budget(3000, new_programs=2, top=5)
        errors = [plan.expected_rmae for plan in plans]
        assert errors == sorted(errors)

    def test_bigger_budget_never_hurts(self):
        small = plan_budget(1000, top=1)[0]
        large = plan_budget(10000, top=1)[0]
        assert large.expected_rmae <= small.expected_rmae

    def test_impossible_budget_returns_empty(self):
        assert plan_budget(10, new_programs=5,
                           response_counts=(8,),
                           training_sizes=(32,)) == []

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            plan_budget(0)
        with pytest.raises(ValueError):
            plan_budget(100, new_programs=0)

    def test_offline_cost_accounting(self):
        plan = plan_budget(3000, top=1)[0]
        assert plan.offline_simulations == plan.pool_size * plan.training_size


class TestAmortisation:
    def test_per_program_online_share_squeezed(self):
        curve = amortisation_curve(2000, program_counts=(1, 50))
        few = curve[0][1]
        many = curve[1][1]
        assert few is not None and many is not None
        assert many.responses <= few.responses

    def test_counts_echoed(self):
        curve = amortisation_curve(2000, program_counts=(1, 5))
        assert [count for count, _ in curve] == [1, 5]


class TestBudgetProperties:
    def test_plans_fit_arbitrary_budgets(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(budget=st.integers(min_value=100, max_value=50_000),
               programs=st.integers(min_value=1, max_value=20))
        @settings(max_examples=30, deadline=None)
        def check(budget, programs):
            for plan in plan_budget(budget, new_programs=programs, top=3):
                assert plan.total_simulations <= budget
                assert plan.offline_simulations == (
                    plan.pool_size * plan.training_size
                )
                assert plan.online_simulations == plan.responses * programs

        check()
