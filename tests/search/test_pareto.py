"""Pareto machinery: fronts, archives, hypervolume vs brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.designspace import DesignSpace
from repro.search import (
    FrontierPoint,
    ParetoArchive,
    dominated_fraction_nd,
    hypervolume,
    pareto_indices,
    suggest_reference,
)


def brute_force_hypervolume(points, reference, cells=400):
    """Monte-Carlo-free brute force: count dominated grid cells."""
    points = np.asarray(points, dtype=float)
    reference = np.asarray(reference, dtype=float)
    lo = points.min(axis=0)
    steps = (reference - lo) / cells
    grids = [
        l + (np.arange(cells) + 0.5) * s for l, s in zip(lo, steps)
    ]
    mesh = np.stack(
        np.meshgrid(*grids, indexing="ij"), axis=-1
    ).reshape(-1, points.shape[1])
    dominated = (
        (points[None, :, :] <= mesh[:, None, :]).all(axis=2).any(axis=1)
    )
    return float(dominated.sum()) * float(np.prod(steps))


class TestParetoIndices:
    def test_simple_front(self):
        values = np.array([[1, 4], [2, 2], [4, 1], [3, 3], [4, 4]])
        assert pareto_indices(values).tolist() == [0, 1, 2]

    def test_duplicates_keep_first(self):
        values = np.array([[1.0, 2.0], [1.0, 2.0], [2.0, 1.0]])
        assert pareto_indices(values).tolist() == [0, 2]

    def test_equal_points_do_not_dominate_each_other(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert pareto_indices(values).tolist() == [0]

    def test_single_objective_rejected(self):
        with pytest.raises(ValueError, match="argmin"):
            pareto_indices(np.array([1.0, 2.0, 3.0]))

    def test_nan_rejected_with_location(self):
        values = np.array([[1.0, 2.0], [np.nan, 1.0]])
        with pytest.raises(ValueError, match=r"\(1, 0\)"):
            pareto_indices(values)

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN/Inf"):
            pareto_indices(np.array([[1.0, np.inf]]))

    def test_empty_input(self):
        assert pareto_indices(np.empty((0, 2))).size == 0

    def test_three_objectives(self):
        values = np.array([
            [1, 1, 3], [1, 3, 1], [3, 1, 1], [2, 2, 2], [3, 3, 3],
        ])
        assert pareto_indices(values).tolist() == [0, 1, 2, 3]


class TestHypervolume:
    def test_2d_exact(self):
        points = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0]])
        reference = np.array([5.0, 5.0])
        expected = (5 - 1) * (5 - 4) + (5 - 2) * (4 - 2) + (5 - 4) * (2 - 1)
        assert hypervolume(points, reference) == pytest.approx(expected)

    def test_2d_matches_brute_force(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0.0, 1.0, size=(12, 2))
        reference = np.array([1.2, 1.2])
        exact = hypervolume(points, reference)
        approx = brute_force_hypervolume(points, reference, cells=400)
        assert exact == pytest.approx(approx, rel=0.02)

    def test_3d_matches_brute_force(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(0.0, 1.0, size=(8, 3))
        reference = np.array([1.1, 1.1, 1.1])
        exact = hypervolume(points, reference)
        approx = brute_force_hypervolume(points, reference, cells=60)
        assert exact == pytest.approx(approx, rel=0.05)

    def test_point_on_reference_contributes_nothing(self):
        points = np.array([[1.0, 5.0], [2.0, 2.0]])
        assert hypervolume(points, [5.0, 5.0]) == pytest.approx(
            (5 - 2) * (5 - 2)
        )

    def test_dominated_points_add_nothing(self):
        front = np.array([[1.0, 1.0]])
        padded = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 1.5]])
        ref = [4.0, 4.0]
        assert hypervolume(front, ref) == hypervolume(padded, ref)

    def test_empty_is_zero(self):
        assert hypervolume(np.empty((0, 2)), [1.0, 1.0]) == 0.0

    def test_reference_shape_mismatch(self):
        with pytest.raises(ValueError, match="coordinates"):
            hypervolume(np.array([[1.0, 2.0]]), [1.0, 2.0, 3.0])

    def test_suggest_reference_dominates_everything(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(1.0, 9.0, size=(30, 3))
        ref = suggest_reference(values)
        assert (values < ref).all()

    def test_suggest_reference_constant_objective(self):
        values = np.array([[1.0, 5.0], [2.0, 5.0]])
        ref = suggest_reference(values)
        assert ref[1] > 5.0


class TestDominatedFractionNd:
    def test_counts_strict_domination_only(self):
        front = np.array([[1.0, 1.0]])
        points = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        assert dominated_fraction_nd(front, points) == pytest.approx(1 / 3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN/Inf"):
            dominated_fraction_nd(
                np.array([[np.nan, 1.0]]), np.array([[1.0, 1.0]])
            )

    def test_mismatched_objectives(self):
        with pytest.raises(ValueError, match="objectives"):
            dominated_fraction_nd(
                np.array([[1.0, 1.0]]), np.array([[1.0, 1.0, 1.0]])
            )


class TestParetoArchive:
    def _configs(self, space: DesignSpace, count: int):
        from repro.designspace import sample_configurations

        return sample_configurations(space, count, seed=31)

    def test_insert_and_evict(self, space):
        a, b, c = self._configs(space, 3)
        archive = ParetoArchive(2)
        assert archive.insert(a, [2.0, 2.0])
        assert archive.insert(b, [1.0, 3.0])
        assert len(archive) == 2
        # c dominates a: a must be evicted.
        assert archive.insert(c, [1.5, 1.5])
        assert len(archive) == 2
        assert a not in archive and b in archive and c in archive

    def test_dominated_offer_rejected(self, space):
        a, b = self._configs(space, 2)
        archive = ParetoArchive(2)
        archive.insert(a, [1.0, 1.0])
        assert not archive.insert(b, [2.0, 2.0])
        assert len(archive) == 1

    def test_duplicate_configuration_rejected(self, space):
        (a,) = self._configs(space, 1)
        archive = ParetoArchive(2)
        assert archive.insert(a, [1.0, 2.0])
        assert not archive.insert(a, [0.5, 0.5])
        assert len(archive) == 1

    def test_non_finite_rejected(self, space):
        (a,) = self._configs(space, 1)
        archive = ParetoArchive(2)
        with pytest.raises(ValueError, match="non-finite"):
            archive.insert(a, [np.nan, 1.0])

    def test_wrong_arity_rejected(self, space):
        (a,) = self._configs(space, 1)
        with pytest.raises(ValueError, match="expected 2"):
            ParetoArchive(2).insert(a, [1.0, 2.0, 3.0])

    def test_front_sorted_and_payloads(self, space):
        a, b = self._configs(space, 2)
        archive = ParetoArchive(2)
        archive.update([a, b], [[2.0, 1.0], [1.0, 2.0]])
        front = archive.front()
        assert [p.objectives for p in front] == [(1.0, 2.0), (2.0, 1.0)]
        payload = front[0].to_payload()
        assert payload["objectives"] == [1.0, 2.0]
        assert payload["configuration"]["width"] in (2, 4, 6, 8)

    def test_single_objective_degenerates_to_best(self, space):
        configs = self._configs(space, 4)
        archive = ParetoArchive(1)
        archive.update(configs, [[4.0], [2.0], [3.0], [5.0]])
        assert len(archive) == 1
        assert archive.front()[0].objectives == (2.0,)

    def test_archive_hypervolume_matches_function(self, space):
        a, b = self._configs(space, 2)
        archive = ParetoArchive(2)
        archive.update([a, b], [[2.0, 1.0], [1.0, 2.0]])
        ref = [3.0, 3.0]
        assert archive.hypervolume(ref) == pytest.approx(
            hypervolume(archive.values_matrix(), ref)
        )

    def test_frontier_point_is_frozen(self, space):
        (a,) = self._configs(space, 1)
        point = FrontierPoint(a, (1.0, 2.0))
        with pytest.raises(AttributeError):
            point.objectives = (0.0, 0.0)
