"""Tests for the detailed out-of-order pipeline simulator."""

import pytest

from repro.sim.pipeline import PipelineSimulator
from repro.workloads import generate_trace, spec2000_profile


@pytest.fixture(scope="module")
def gzip_trace():
    return generate_trace(spec2000_profile("gzip"), 8000, seed=3)


@pytest.fixture(scope="module")
def baseline_result(space, gzip_trace):
    return PipelineSimulator(space.baseline).run(gzip_trace, warmup=2000)


class TestConservation:
    def test_all_instructions_commit(self, space, gzip_trace, baseline_result):
        assert baseline_result.stats.committed == len(gzip_trace) - 2000

    def test_dispatched_covers_committed(self, baseline_result):
        # Instructions in flight when the warmup snapshot is taken leave
        # the post-warmup dispatch/issue counts within one window of the
        # commit count.
        stats = baseline_result.stats
        window = 160  # largest possible ROB
        assert abs(stats.issued - stats.committed) <= window
        assert abs(stats.dispatched - stats.committed) <= window

    def test_ipc_bounded_by_width(self, space, baseline_result):
        assert 0.0 < baseline_result.ipc <= space.baseline.width

    def test_energy_positive(self, baseline_result):
        assert baseline_result.energy > 0

    def test_ed_edd_relations(self, baseline_result):
        assert baseline_result.ed == pytest.approx(
            baseline_result.energy * baseline_result.cycles
        )
        assert baseline_result.edd == pytest.approx(
            baseline_result.ed * baseline_result.cycles
        )

    def test_empty_trace_rejected(self, space):
        with pytest.raises(ValueError):
            PipelineSimulator(space.baseline).run([])

    def test_warmup_bounds(self, space, gzip_trace):
        with pytest.raises(ValueError):
            PipelineSimulator(space.baseline).run(gzip_trace,
                                                  warmup=len(gzip_trace))


class TestDeterminism:
    def test_same_trace_same_result(self, space, gzip_trace):
        a = PipelineSimulator(space.baseline).run(gzip_trace)
        b = PipelineSimulator(space.baseline).run(gzip_trace)
        assert a.cycles == b.cycles
        assert a.energy == pytest.approx(b.energy)


class TestConfigurationSensitivity:
    def test_bigger_machine_is_not_slower(self, space, gzip_trace, baseline_result):
        big = space.baseline.replace(
            width=8, rob_size=160, iq_size=80, lsq_size=80, rf_size=160,
            rf_read_ports=16, rf_write_ports=8,
        )
        result = PipelineSimulator(big).run(gzip_trace, warmup=2000)
        assert result.cycles <= baseline_result.cycles * 1.05

    def test_tiny_rf_hurts(self, space, gzip_trace, baseline_result):
        starved = space.baseline.replace(rf_size=40)
        result = PipelineSimulator(starved).run(gzip_trace, warmup=2000)
        assert result.cycles > baseline_result.cycles

    def test_tiny_caches_hurt(self, space, baseline_result):
        art_trace = generate_trace(spec2000_profile("art"), 8000, seed=3)
        small = space.baseline.replace(dcache_kb=8, l2cache_kb=256,
                                       icache_kb=8)
        large = space.baseline.replace(dcache_kb=128, l2cache_kb=4096)
        small_result = PipelineSimulator(small).run(art_trace, warmup=2000)
        large_result = PipelineSimulator(large).run(art_trace, warmup=2000)
        assert small_result.cycles > large_result.cycles

    def test_wide_machine_burns_more_energy(self, space, gzip_trace, baseline_result):
        wide = space.baseline.replace(width=8, rf_read_ports=16,
                                      rf_write_ports=8)
        result = PipelineSimulator(wide).run(gzip_trace, warmup=2000)
        assert result.energy > baseline_result.energy

    def test_no_rename_registers_rejected(self, space, gzip_trace):
        config = space.baseline.replace(rf_size=40)
        simulator = PipelineSimulator(config)
        simulator.spec.fixed.__class__  # spec exists
        # rf 40 leaves 8 rename regs: legal.  Force the degenerate case
        # through a doctored fixed parameter set instead.
        from repro.sim.machine import FixedParameters
        degenerate = PipelineSimulator(
            config, FixedParameters(architected_registers=40)
        )
        with pytest.raises(ValueError, match="rename"):
            degenerate.run(gzip_trace[:100])


class TestStatistics:
    def test_stall_accounting_covers_idle_cycles(self, baseline_result):
        stats = baseline_result.stats
        stalls = sum(stats.stall_cycles.values())
        assert 0 < stalls < stats.cycles

    def test_branch_stats_track_trace(self, gzip_trace, baseline_result):
        from repro.workloads import OpClass
        measured = baseline_result.stats.branches
        total = sum(1 for t in gzip_trace if t.op is OpClass.BRANCH)
        assert 0 < measured <= total

    def test_mispredict_ratio_reasonable(self, baseline_result):
        assert 0.0 < baseline_result.stats.mispredict_ratio < 0.5

    def test_cache_stats_harvested(self, baseline_result):
        stats = baseline_result.stats
        assert stats.dcache_accesses > 0
        assert stats.l2_accesses > 0
        assert stats.dcache_misses <= stats.dcache_accesses

    def test_warmup_reduces_measured_counts(self, space, gzip_trace):
        full = PipelineSimulator(space.baseline).run(gzip_trace)
        measured = PipelineSimulator(space.baseline).run(gzip_trace,
                                                         warmup=4000)
        assert measured.stats.committed < full.stats.committed
        assert measured.cycles < full.cycles


class TestRunProfile:
    def test_convenience_runner(self, space):
        simulator = PipelineSimulator(space.baseline)
        result = simulator.run_profile(
            spec2000_profile("gzip"), length=6000, warmup=2000, seed=1
        )
        assert result.stats.committed == 4000
        assert result.energy > 0

    def test_default_warmup_is_half(self, space):
        simulator = PipelineSimulator(space.baseline)
        result = simulator.run_profile(
            spec2000_profile("gzip"), length=4000, seed=1
        )
        assert result.stats.committed == 2000


class TestMemoryLevelParallelism:
    def test_more_mshrs_help_memory_bound_code(self, space):
        """art's performance must scale with the number of outstanding
        misses the machine supports."""
        from repro.sim.machine import FixedParameters
        trace = generate_trace(spec2000_profile("art"), 12000, seed=7)
        results = {}
        for mshrs in (1, 8):
            fixed = FixedParameters(mshr_entries=mshrs)
            results[mshrs] = PipelineSimulator(
                space.baseline, fixed
            ).run(trace, warmup=4000)
        assert results[8].cycles < 0.7 * results[1].cycles

    def test_mshr_limit_does_not_deadlock(self, space):
        from repro.sim.machine import FixedParameters
        trace = generate_trace(spec2000_profile("swim"), 6000, seed=7)
        fixed = FixedParameters(mshr_entries=1)
        result = PipelineSimulator(space.baseline, fixed).run(trace)
        assert result.stats.committed == len(trace)


class TestWrongPathExecution:
    @pytest.fixture(scope="class")
    def pair(self, space, gzip_trace):
        default = PipelineSimulator(space.baseline).run(
            gzip_trace, warmup=2000
        )
        speculative = PipelineSimulator(
            space.baseline, wrong_path=True
        ).run(gzip_trace, warmup=2000)
        return default, speculative

    def test_everything_still_commits(self, pair, gzip_trace):
        _, speculative = pair
        assert speculative.stats.committed == len(gzip_trace) - 2000

    def test_phantoms_were_fetched(self, pair):
        _, speculative = pair
        assert speculative.stats.wrong_path_fetched > 0

    def test_default_mode_fetches_no_phantoms(self, pair):
        default, _ = pair
        assert default.stats.wrong_path_fetched == 0

    def test_speculative_energy_counts_real_work(self, pair):
        """Wrong-path energy is measured, not estimated, and must be in
        the same ballpark as the statistical estimate."""
        default, speculative = pair
        assert 0.5 * default.energy < speculative.energy < 2.0 * default.energy

    def test_cycles_in_same_ballpark(self, pair):
        default, speculative = pair
        assert 0.7 * default.cycles < speculative.cycles < 1.3 * default.cycles

    def test_predictor_stats_exclude_phantoms(self, pair, gzip_trace):
        from repro.workloads import OpClass
        _, speculative = pair
        total = sum(1 for t in gzip_trace if t.op is OpClass.BRANCH)
        assert speculative.stats.branches <= total

    def test_deterministic(self, space, gzip_trace):
        a = PipelineSimulator(space.baseline, wrong_path=True).run(gzip_trace)
        b = PipelineSimulator(space.baseline, wrong_path=True).run(gzip_trace)
        assert a.cycles == b.cycles
        assert a.stats.wrong_path_fetched == b.stats.wrong_path_fetched
