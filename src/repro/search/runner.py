"""The search loop: drive an agent against an environment to budget.

:func:`run_search` is the one loop every caller shares — the CLI verb,
the ``/search`` serving endpoint, the benchmark and the tests all drive
agents through it, so budget accounting, telemetry and frontier
bookkeeping behave identically everywhere.  The loop is propose →
batch-evaluate → observe until the environment's budget is spent, with
each round instrumented as a ``search.round`` span.

:class:`SearchOutcome` is the JSON-able result record;
:func:`write_frontier` persists it for downstream tooling (the CI
smoke leg parses the file it writes).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_registry, span

from .agents import Agent
from .env import DesignSpaceEnv
from .pareto import FrontierPoint, hypervolume, suggest_reference

__all__ = ["SearchOutcome", "run_search", "write_frontier"]


@dataclass(frozen=True)
class SearchOutcome:
    """Everything a finished search run produced.

    Args:
        agent: The agent's registered name.
        objectives: Objective metric names, in vector order.
        budget: The evaluation budget the run was given.
        spent: Evaluations actually consumed (== budget on full runs).
        seed: The agent seed, for replay.
        frontier: The final Pareto frontier, sorted ascending.
        reference: The hypervolume reference point used for scoring.
        hypervolume: Frontier hypervolume against ``reference``.
        best: Per-objective best (config, value) pairs — the scalar
            winners, one per objective.
        elapsed_seconds: Wall-clock time of the loop.
        observed_lo: Per-objective minimum over *all* evaluations.
        observed_hi: Per-objective maximum over *all* evaluations.
    """

    agent: str
    objectives: Tuple[str, ...]
    budget: int
    spent: int
    seed: Optional[int]
    frontier: Tuple[FrontierPoint, ...]
    reference: Tuple[float, ...]
    hypervolume: float
    best: Dict[str, Dict]
    elapsed_seconds: float
    observed_lo: Tuple[float, ...] = field(default=())
    observed_hi: Tuple[float, ...] = field(default=())

    def hypervolume_at(self, reference: Sequence[float]) -> float:
        """Re-score the frontier against a different reference point.

        The cross-run comparison hook: score several outcomes against
        one shared reference (e.g. from the union of their observed
        bounds) to compare agents fairly.
        """
        matrix = np.asarray(
            [p.objectives for p in self.frontier], dtype=float
        )
        if matrix.size == 0:
            return 0.0
        return hypervolume(matrix, np.asarray(reference, dtype=float))

    def to_payload(self) -> Dict:
        """JSON-ready dict mirroring every field."""
        return {
            "agent": self.agent,
            "objectives": list(self.objectives),
            "budget": self.budget,
            "spent": self.spent,
            "seed": self.seed,
            "frontier": [p.to_payload() for p in self.frontier],
            "frontier_size": len(self.frontier),
            "reference": list(self.reference),
            "hypervolume": self.hypervolume,
            "best": self.best,
            "elapsed_seconds": self.elapsed_seconds,
            "observed_lo": list(self.observed_lo),
            "observed_hi": list(self.observed_hi),
        }


def run_search(
    env: DesignSpaceEnv,
    agent: Agent,
    batch_size: int = 16,
    seed: Optional[int] = None,
    reference: Optional[Sequence[float]] = None,
) -> SearchOutcome:
    """Drive ``agent`` against ``env`` until the budget is spent.

    The loop resets the environment (baseline evaluation, 1 budget
    unit), then repeats propose → ``step_batch`` → observe with batches
    clipped to the remaining budget, so runs of any budget/batch
    combination terminate exactly on budget.

    Args:
        env: The budgeted environment to search.
        agent: The proposal policy (see :mod:`repro.search.agents`).
        batch_size: Proposals per round; larger batches amortise the
            vectorised oracle better but give the agent staler feedback.
        seed: Recorded in the outcome for replay bookkeeping (the agent
            carries its own RNG; pass the same seed to both).
        reference: Hypervolume reference point; defaults to one derived
            from this run's observed bounds.  Cross-run comparisons
            must pass a shared reference (or re-score via
            :meth:`SearchOutcome.hypervolume_at`).

    Returns:
        The finished :class:`SearchOutcome`.

    Raises:
        ValueError: for a non-positive batch size.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    registry = get_registry()
    start = time.perf_counter()
    with span("search.run", agent=agent.name, budget=env.budget):
        baseline = env.reset()
        agent.observe([baseline])
        rounds = 0
        while not env.done:
            count = min(batch_size, env.remaining)
            with span("search.round", agent=agent.name, batch=count):
                proposals = agent.propose(count)
                if not proposals:
                    break
                observations, _, _ = env.step_batch(proposals[:count])
                agent.observe(observations)
            rounds += 1
        registry.counter("search.runs").inc()
        registry.histogram("search.rounds").observe(rounds)
    elapsed = time.perf_counter() - start

    lo, hi = env.observed_bounds()
    if reference is None:
        ref = suggest_reference(np.stack([lo, hi]))
    else:
        ref = np.asarray(reference, dtype=float).reshape(-1)
    frontier = env.archive.front()
    hv = env.archive.hypervolume(ref)
    best: Dict[str, Dict] = {}
    for j, metric in enumerate(env.objectives):
        values = [p.objectives[j] for p in frontier]
        winner = frontier[int(np.argmin(values))]
        best[metric.value] = {
            "configuration": winner.configuration.as_dict(),
            "value": float(winner.objectives[j]),
        }
    return SearchOutcome(
        agent=agent.name,
        objectives=tuple(m.value for m in env.objectives),
        budget=env.budget,
        spent=env.spent,
        seed=seed,
        frontier=frontier,
        reference=tuple(float(r) for r in ref),
        hypervolume=hv,
        best=best,
        elapsed_seconds=elapsed,
        observed_lo=tuple(float(v) for v in lo),
        observed_hi=tuple(float(v) for v in hi),
    )


def write_frontier(path, outcome: SearchOutcome) -> Path:
    """Write a search outcome's JSON payload to ``path``.

    Parent directories are created as needed; returns the written path.
    The CI search-smoke leg parses this file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(outcome.to_payload(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target
