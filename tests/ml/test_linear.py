"""Tests for the least-squares linear regressor."""

import numpy as np
import pytest

from repro.ml import LinearRegressor, normal_equation_weights


class TestExactRecovery:
    def test_recovers_a_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3))
        true_weights = np.array([2.0, -1.0, 0.5])
        y = x @ true_weights + 3.0
        model = LinearRegressor().fit(x, y)
        assert np.allclose(model.coefficients, true_weights, atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0)

    def test_papers_fig8_example_shape(self):
        """Fig. 8: a 1-D regression line y = b0 + b1 x through points."""
        x = np.array([[1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([0.9, 1.0, 1.2, 1.45, 1.6])
        model = LinearRegressor().fit(x, y)
        assert model.coefficients[0] > 0  # positive slope
        prediction = model.predict(np.array([[3.0]]))[0]
        assert 1.0 < prediction < 1.4

    def test_matches_normal_equations(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(40, 4))
        y = rng.normal(size=40)
        model = LinearRegressor(fit_intercept=False).fit(x, y)
        reference = normal_equation_weights(x, y)
        assert np.allclose(model.coefficients, reference, atol=1e-8)

    def test_matches_numpy_polyfit(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 10, size=30)
        y = 2.5 * x + 1.0 + rng.normal(0, 0.1, size=30)
        model = LinearRegressor().fit(x.reshape(-1, 1), y)
        slope, intercept = np.polyfit(x, y, 1)
        assert model.coefficients[0] == pytest.approx(slope, rel=1e-6)
        assert model.intercept_ == pytest.approx(intercept, rel=1e-6)


class TestRobustness:
    def test_rank_deficient_system_still_fits(self):
        """More features than samples: lstsq gives the min-norm fit."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(10, 25))
        y = rng.normal(size=10)
        model = LinearRegressor().fit(x, y)
        residual = model.predict(x) - y
        assert np.max(np.abs(residual)) < 1e-6

    def test_ridge_shrinks_weights(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(30, 5))
        y = x @ np.array([5.0, -5.0, 3.0, 0.0, 1.0]) + rng.normal(size=30)
        plain = LinearRegressor(ridge=0.0).fit(x, y)
        shrunk = LinearRegressor(ridge=100.0).fit(x, y)
        assert np.linalg.norm(shrunk.coefficients) < np.linalg.norm(
            plain.coefficients
        )

    def test_ridge_does_not_penalise_intercept(self):
        y = np.full(20, 100.0)
        x = np.random.default_rng(5).normal(size=(20, 2))
        model = LinearRegressor(ridge=1000.0).fit(x, y)
        assert model.intercept_ == pytest.approx(100.0, rel=0.05)

    def test_negative_ridge_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressor(ridge=-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressor().fit(np.ones((3, 2)), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LinearRegressor().predict(np.ones((1, 2)))

    def test_no_intercept_mode(self):
        x = np.array([[1.0], [2.0]])
        y = np.array([2.0, 4.0])
        model = LinearRegressor(fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        assert model.coefficients[0] == pytest.approx(2.0)


class TestInvariantPredict:
    """predict_invariant: per-row reductions, batch-order independent."""

    def test_matches_predict_closely(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(40, 6))
        y = x @ rng.normal(size=6) + 2.0
        model = LinearRegressor().fit(x, y)
        assert np.allclose(
            model.predict_invariant(x), model.predict(x), rtol=1e-12
        )

    def test_single_row_equals_batch_row(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(40, 6))
        y = rng.normal(size=40)
        model = LinearRegressor().fit(x, y)
        batch = model.predict_invariant(x)
        for index in (0, 13, 39):
            alone = model.predict_invariant(x[index : index + 1])
            assert alone[0] == batch[index]

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            LinearRegressor().predict_invariant(np.zeros((1, 3)))
