"""Stacked ensemble inference over many identically shaped networks.

The architecture-centric predictor evaluates N ~ 25 per-program
networks at every configuration it is asked about; the hot loops
(response fitting, held-out scoring, the 5,000-candidate sweet-spot
scan) all funnel through that ensemble forward pass.  Evaluating the
networks one by one re-encodes the *same* configuration batch N times
and issues N small GEMMs — almost all of the wall time is redundant
Python-level encoding.

:class:`StackedEnsemble` removes the redundancy.  All member networks
share the one-hidden-layer (D, H) shape, so their parameters stack into
(N, D, H) / (N, H) tensors and the whole ensemble evaluates in one
batched contraction per layer::

    hidden = tanh(einsum('nmd,ndh->nmh', x, W_hidden) + b_hidden)
    output = einsum('nmh,nh->nm', hidden, w_output) + b_output

The contractions are executed with :func:`numpy.matmul` on the stacked
tensors rather than a literal ``numpy.einsum`` call: ``matmul``
dispatches each (m, D) x (D, H) slice to the same BLAS GEMM kernel the
per-model path uses, which makes the stacked result **bit-identical**
to evaluating the members one at a time (``einsum``'s own reduction
loops sum in a different order and drift in the last ulp).  The tests
assert exact equality, not closeness.

Members are duck-typed: anything with ``space``, ``program``,
``log_target`` and ``network_weights()`` (the
:class:`~repro.core.program_model.ProgramSpecificPredictor` surface)
can be stacked.  Stacking fails softly — :meth:`maybe_from_models`
returns ``None`` for heterogeneous pools (different hidden widths,
different encoding spaces, untrained members) so callers can fall back
to the per-model loop.

The matmul path is the throughput king but has one blind spot the
serving layer cannot live with: BLAS GEMM kernels pick blocking by
batch shape, so the *same* configuration evaluated inside two
different batches can differ in the last ulp.  A prediction cache —
or any service promising "the answer for config c is the answer for
config c" — needs values that are a pure function of the row.
:meth:`predict_features_invariant` provides exactly that: a slower
forward pass built only from elementwise ufuncs and fixed-length
last-axis reductions, whose per-row result is independent of what
else shares the batch (asserted exactly by the serving tests).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_registry

__all__ = ["StackedEnsemble"]

#: Exponent clip shared with the per-model path: a wild extrapolation
#: in log space must not overflow ``10 ** x``.
_LOG_CLIP = 30.0


class StackedEnsemble:
    """Batched forward pass over N stacked one-hidden-layer networks.

    Instances are immutable snapshots of their member networks' weights;
    retraining a member requires restacking.  Build through
    :meth:`from_models` / :meth:`maybe_from_models` rather than the
    constructor.

    Args:
        space: The shared design space used to encode configurations.
        programs: Member names, in stacking order.
        hidden_weights: (N, D, H) stacked hidden-layer weights.
        hidden_bias: (N, H) stacked hidden-layer biases.
        output_weights: (N, H) stacked output-layer weights.
        output_bias: (N,) stacked output-layer biases.
        x_mean: (N, D) per-member input standardisation means.
        x_scale: (N, D) per-member input standardisation scales.
        y_mean: (N,) per-member target standardisation means.
        y_scale: (N,) per-member target standardisation scales.
        log_target: (N,) bool — which members predict log10(metric).
    """

    def __init__(
        self,
        space,
        programs: Sequence[str],
        hidden_weights: np.ndarray,
        hidden_bias: np.ndarray,
        output_weights: np.ndarray,
        output_bias: np.ndarray,
        x_mean: np.ndarray,
        x_scale: np.ndarray,
        y_mean: np.ndarray,
        y_scale: np.ndarray,
        log_target: np.ndarray,
    ) -> None:
        self.space = space
        self.programs: Tuple[str, ...] = tuple(programs)
        self._hidden_weights = hidden_weights
        self._hidden_bias = hidden_bias
        self._output_weights = output_weights
        self._output_bias = output_bias
        self._x_mean = x_mean
        self._x_scale = x_scale
        self._y_mean = y_mean
        self._y_scale = y_scale
        self._log_target = log_target
        members, input_dim, hidden = hidden_weights.shape
        if len(self.programs) != members:
            raise ValueError(
                f"{len(self.programs)} program names for {members} stacked "
                "networks"
            )
        self.input_dim = input_dim
        self.hidden_neurons = hidden

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_models(cls, models: Sequence) -> "StackedEnsemble":
        """Stack trained program models into one ensemble.

        Args:
            models: Trained predictors exposing ``space``, ``program``,
                ``log_target`` and ``network_weights()``.

        Raises:
            ValueError: if the pool is empty or not stackable (mixed
                hidden widths, input dimensions or encoding spaces).
            RuntimeError: if any member network is untrained.
        """
        if not models:
            raise ValueError("at least one model is required")
        space = models[0].space
        for model in models:
            if model.space is not space:
                raise ValueError(
                    "models must share one design space instance to be "
                    "encoded once; got distinct spaces"
                )
        weights = [model.network_weights() for model in models]
        shapes = {w["hidden_weights"].shape for w in weights}
        if len(shapes) != 1:
            raise ValueError(
                f"models must share one (input, hidden) network shape to "
                f"stack; got {sorted(shapes)}"
            )
        return cls(
            space=space,
            programs=[model.program for model in models],
            hidden_weights=np.stack([w["hidden_weights"] for w in weights]),
            hidden_bias=np.stack([w["hidden_bias"] for w in weights]),
            output_weights=np.stack([w["output_weights"] for w in weights]),
            output_bias=np.array(
                [float(np.asarray(w["output_bias"])) for w in weights]
            ),
            x_mean=np.stack(
                [np.asarray(w["x_mean"], dtype=float) for w in weights]
            ),
            x_scale=np.stack(
                [np.asarray(w["x_scale"], dtype=float) for w in weights]
            ),
            y_mean=np.array(
                [float(np.asarray(w["y_mean"]).reshape(())) for w in weights]
            ),
            y_scale=np.array(
                [float(np.asarray(w["y_scale"]).reshape(())) for w in weights]
            ),
            log_target=np.array(
                [bool(model.log_target) for model in models]
            ),
        )

    @classmethod
    def maybe_from_models(cls, models: Sequence) -> Optional["StackedEnsemble"]:
        """:meth:`from_models`, returning ``None`` when stacking fails.

        The soft variant callers use to keep a per-model fallback path:
        heterogeneous or untrained pools simply decline to stack.
        """
        try:
            return cls.from_models(models)
        except (ValueError, RuntimeError, AttributeError, KeyError):
            return None

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.programs)

    def predict_features(self, features: np.ndarray) -> np.ndarray:
        """(N, m) metric predictions for pre-encoded feature vectors.

        Args:
            features: (m, D) raw (unscaled) feature matrix.

        Returns:
            Row ``i`` holds member ``i``'s predictions — exactly what
            that member's own ``predict`` would return.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features, got {features.shape[1]}"
            )
        # (N, m, D): each member standardises the shared batch itself.
        x = (features[None, :, :] - self._x_mean[:, None, :]) / (
            self._x_scale[:, None, :]
        )
        # Stacked matmul == one BLAS GEMM per member slice, so the
        # result matches the per-model path bit for bit.
        hidden = np.tanh(
            np.matmul(x, self._hidden_weights) + self._hidden_bias[:, None, :]
        )
        scaled = (
            np.matmul(hidden, self._output_weights[:, :, None])[..., 0]
            + self._output_bias[:, None]
        )
        raw = scaled * self._y_scale[:, None] + self._y_mean[:, None]
        if not self._log_target.any():
            return raw
        if self._log_target.all():
            return np.power(10.0, np.clip(raw, -_LOG_CLIP, _LOG_CLIP))
        rows = [
            np.power(10.0, np.clip(row, -_LOG_CLIP, _LOG_CLIP))
            if is_log
            else row
            for row, is_log in zip(raw, self._log_target)
        ]
        return np.stack(rows)

    def predict_features_invariant(self, features: np.ndarray) -> np.ndarray:
        """(N, m) predictions whose rows do not depend on the batch.

        The batch-composition-invariant forward pass: each member is
        evaluated with elementwise operations and last-axis
        ``np.add.reduce`` contractions, whose summation order depends
        only on the contracted length (D, then H) — never on how many
        other rows share the call.  Evaluating a configuration alone,
        inside any batch, or twice in the same batch therefore yields
        the same bits, which is the property the serving layer's
        prediction cache and request coalescing are built on.

        Roughly 3-4x slower than :meth:`predict_features` (the
        contractions do not reach BLAS); use it where determinism
        across batch shapes matters more than peak throughput.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features, got {features.shape[1]}"
            )
        members = len(self.programs)
        out = np.empty((members, features.shape[0]), dtype=float)
        for n in range(members):
            x = (features - self._x_mean[n]) / self._x_scale[n]
            # (m, H, D) product contracted over the trailing D axis:
            # numpy's pairwise reduction order is fixed by D alone.
            hidden = np.tanh(
                np.add.reduce(
                    x[:, None, :] * self._hidden_weights[n].T[None, :, :],
                    axis=2,
                )
                + self._hidden_bias[n]
            )
            scaled = (
                np.add.reduce(hidden * self._output_weights[n], axis=1)
                + self._output_bias[n]
            )
            out[n] = scaled * self._y_scale[n] + self._y_mean[n]
        if self._log_target.any():
            rows = np.where(self._log_target)[0]
            out[rows] = np.power(
                10.0, np.clip(out[rows], -_LOG_CLIP, _LOG_CLIP)
            )
        return out

    def predict(self, configs: Sequence) -> np.ndarray:
        """(N, m) metric predictions, encoding the batch exactly once.

        Each call records one ``ensemble.batch.seconds`` observation
        and bumps ``ensemble.predictions`` by N x m — the raw
        throughput signal behind ``BENCH_throughput.json``.
        """
        start = time.perf_counter()
        result = self.predict_features(self.space.encode_many(configs))
        registry = get_registry()
        registry.histogram("ensemble.batch.seconds").observe(
            time.perf_counter() - start
        )
        registry.counter("ensemble.predictions").inc(result.size)
        return result

    def log_model_matrix(self, configs: Sequence) -> np.ndarray:
        """(m, N) log10 design matrix for the combining regressor.

        Equivalent to ``log10(stack([m.predict(configs) for m in
        models], axis=1))`` — the architecture-centric model matrix —
        but with one encode and one stacked forward pass.  The result
        is C-contiguous like the stacked original: downstream GEMV
        kernels pick their summation order from the memory layout, so
        returning a transposed view would cost the last ulp.
        """
        return np.ascontiguousarray(np.log10(self.predict(configs)).T)

    def log_model_matrix_invariant(self, configs: Sequence) -> np.ndarray:
        """(m, N) log10 design matrix via the batch-invariant forward.

        The serving-grade sibling of :meth:`log_model_matrix`: every
        row is a pure function of its configuration, so the matrix for
        any sub-batch equals the corresponding rows of the matrix for
        any super-batch, bit for bit.
        """
        start = time.perf_counter()
        predictions = self.predict_features_invariant(
            self.space.encode_many(configs)
        )
        registry = get_registry()
        registry.histogram("ensemble.batch.seconds").observe(
            time.perf_counter() - start
        )
        registry.counter("ensemble.predictions").inc(predictions.size)
        return np.ascontiguousarray(np.log10(predictions).T)
