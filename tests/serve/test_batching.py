"""Tests for the LRU cache, the batcher, and batch-invariant parity.

The load-bearing assertions are exact (``==`` on floats,
``np.array_equal`` on arrays): the batch-composition-invariant forward
path promises that a configuration's prediction does not depend on
what else shares the batch, and the batcher's coalescing and caching
are only correct because of it.
"""

import asyncio

import numpy as np
import pytest

from repro.obs import scoped_registry
from repro.serve import LRUCache, PredictionBatcher, ServerSaturated


def run(coro):
    return asyncio.run(coro)


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        missing = LRUCache.miss_sentinel()
        assert cache.get("a") is missing
        cache.put("a", 1.0)
        assert cache.get("a") == 1.0

    def test_eviction_order(self):
        cache = LRUCache(2)
        missing = LRUCache.miss_sentinel()
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.get("a")  # refresh: b is now oldest
        cache.put("c", 3.0)
        assert cache.get("b") is missing
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0

    def test_capacity_zero_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1.0)
        assert cache.get("a") is LRUCache.miss_sentinel()
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestInvariantParity:
    """predict_invariant is a pure function of each configuration."""

    def test_single_vs_batch_bit_identical(
        self, fitted_predictor, holdout_configs
    ):
        batch = holdout_configs[:40]
        together = fitted_predictor.predict_invariant(batch)
        for index, config in enumerate(batch):
            alone = fitted_predictor.predict_invariant([config])[0]
            assert alone == together[index]

    def test_subset_vs_superset_bit_identical(
        self, fitted_predictor, holdout_configs
    ):
        superset = holdout_configs[:60]
        subset = superset[10:25]
        full = fitted_predictor.predict_invariant(superset)
        part = fitted_predictor.predict_invariant(subset)
        assert np.array_equal(part, full[10:25])

    def test_close_to_blas_path(self, fitted_predictor, holdout_configs):
        batch = holdout_configs[:40]
        invariant = fitted_predictor.predict_invariant(batch)
        blas = fitted_predictor.predict(batch)
        assert np.allclose(invariant, blas, rtol=1e-12)

    def test_unfitted_rejected(self, cycles_pool):
        from repro.core import ArchitectureCentricPredictor

        unfitted = ArchitectureCentricPredictor(cycles_pool.models())
        with pytest.raises(RuntimeError, match="fitted"):
            unfitted.predict_invariant([])

    def test_heterogeneous_pool_rejected(
        self, fitted_predictor, holdout_configs
    ):
        from repro.core import ArchitectureCentricPredictor

        broken = ArchitectureCentricPredictor(
            fitted_predictor.program_models
        )
        broken._fitted = True
        broken._ensemble_built = True  # lazy build concluded: no stack
        with pytest.raises(RuntimeError, match="stack"):
            broken.predict_invariant(holdout_configs[:2])


class TestBatcher:
    def test_concurrent_results_match_direct_calls(
        self, fitted_predictor, holdout_configs
    ):
        """Coalesced answers == direct single-config predictions, bitwise."""
        batch = holdout_configs[:50]
        direct = fitted_predictor.predict_invariant(batch)

        async def scenario():
            batcher = PredictionBatcher(fitted_predictor, max_batch=16)
            await batcher.start()
            try:
                return await asyncio.gather(
                    *(batcher.predict_one(config) for config in batch)
                )
            finally:
                await batcher.stop()

        served = run(scenario())
        assert np.array_equal(np.array(served), direct)

    def test_requests_actually_coalesce(
        self, fitted_predictor, holdout_configs
    ):
        batch = holdout_configs[:32]

        async def scenario(registry):
            batcher = PredictionBatcher(
                fitted_predictor, max_batch=64, batch_window=0.05
            )
            await batcher.start()
            try:
                await asyncio.gather(
                    *(batcher.predict_one(config) for config in batch)
                )
            finally:
                await batcher.stop()
            histogram = registry.histogram("serve.batch.size")
            assert histogram.count < len(batch)
            assert histogram.max > 1

        with scoped_registry() as registry:
            run(scenario(registry))

    def test_duplicate_configs_coalesce_to_one_forward_row(
        self, fitted_predictor, holdout_configs
    ):
        config = holdout_configs[0]
        expected = float(fitted_predictor.predict_invariant([config])[0])

        async def scenario(registry):
            batcher = PredictionBatcher(
                fitted_predictor, max_batch=64, batch_window=0.05,
            )
            await batcher.start()
            try:
                values = await asyncio.gather(
                    *(batcher.predict_one(config) for _ in range(10))
                )
            finally:
                await batcher.stop()
            assert all(value == expected for value in values)
            # One miss filled the cache; everything else coalesced or hit.
            assert registry.value("serve.cache.misses") == 1

        with scoped_registry() as registry:
            run(scenario(registry))

    def test_cache_hits_skip_the_queue(
        self, fitted_predictor, holdout_configs
    ):
        config = holdout_configs[0]

        async def scenario(registry):
            batcher = PredictionBatcher(fitted_predictor)
            await batcher.start()
            try:
                first = await batcher.predict_one(config)
                second = await batcher.predict_one(config)
            finally:
                await batcher.stop()
            assert first == second
            assert registry.value("serve.cache.hits") == 1
            assert registry.value("serve.cache.misses") == 1

        with scoped_registry() as registry:
            run(scenario(registry))

    def test_saturation_raises(self, holdout_configs):
        """A full queue rejects instead of buffering unboundedly."""
        import threading

        from repro.sim import Metric

        release = threading.Event()

        class SlowPredictor:
            metric = Metric.CYCLES

            @staticmethod
            def predict_invariant(configs):
                release.wait(timeout=30)
                return np.zeros(len(configs))

        async def scenario(registry):
            batcher = PredictionBatcher(
                SlowPredictor(), max_batch=1, batch_window=0.0,
                queue_limit=2, cache_size=0,
            )
            await batcher.start()
            try:
                # First request: the collector takes it off the queue
                # and blocks inside the (stalled) forward pass.
                first = asyncio.ensure_future(
                    batcher.predict_one(holdout_configs[0])
                )
                await asyncio.sleep(0.05)
                # Two more park on the queue (its limit)...
                parked = [
                    asyncio.ensure_future(batcher.predict_one(config))
                    for config in holdout_configs[1:3]
                ]
                await asyncio.sleep(0.05)
                # ... and the next two are refused outright.
                for config in holdout_configs[3:5]:
                    with pytest.raises(ServerSaturated):
                        await batcher.predict_one(config)
                assert (
                    registry.value("serve.rejected", reason="queue-full")
                    == 2
                )
                release.set()
                await asyncio.gather(first, *parked)
            finally:
                release.set()
                await batcher.stop()

        with scoped_registry() as registry:
            run(scenario(registry))

    def test_stop_answers_queued_requests(
        self, fitted_predictor, holdout_configs
    ):
        batch = holdout_configs[:8]

        async def scenario():
            batcher = PredictionBatcher(
                fitted_predictor, batch_window=0.2, max_batch=4
            )
            await batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.predict_one(config))
                for config in batch
            ]
            await asyncio.sleep(0)  # let the puts land
            await batcher.stop()
            values = await asyncio.gather(*tasks)
            assert len(values) == len(batch)
            # After stop, new (uncached) requests are refused.
            with pytest.raises(ServerSaturated):
                await batcher.predict_one(holdout_configs[10])

        run(scenario())

    def test_constructor_validation(self, fitted_predictor):
        with pytest.raises(ValueError):
            PredictionBatcher(fitted_predictor, max_batch=0)
        with pytest.raises(ValueError):
            PredictionBatcher(fitted_predictor, batch_window=-1)
        with pytest.raises(ValueError):
            PredictionBatcher(fitted_predictor, queue_limit=0)
