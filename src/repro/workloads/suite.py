"""Benchmark suite container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from .profile import WorkloadProfile


class BenchmarkSuite:
    """An ordered, name-indexed collection of workload profiles."""

    def __init__(self, name: str, profiles: Sequence[WorkloadProfile]) -> None:
        if not profiles:
            raise ValueError("a benchmark suite needs at least one program")
        names = [profile.name for profile in profiles]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {n for n in names if names.count(n) > 1}
            )
            raise ValueError(f"duplicate program names: {duplicates}")
        self.name = name
        self._profiles: Tuple[WorkloadProfile, ...] = tuple(profiles)
        self._by_name: Dict[str, WorkloadProfile] = {
            profile.name: profile for profile in self._profiles
        }

    @property
    def programs(self) -> Tuple[str, ...]:
        """Program names in suite order."""
        return tuple(profile.name for profile in self._profiles)

    @property
    def profiles(self) -> Tuple[WorkloadProfile, ...]:
        """All profiles in suite order."""
        return self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[WorkloadProfile]:
        return iter(self._profiles)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> WorkloadProfile:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no program {name!r} in suite {self.name!r}; "
                f"programs: {list(self.programs)}"
            ) from None

    def subset(self, names: Sequence[str]) -> "BenchmarkSuite":
        """A new suite restricted to ``names`` (suite order preserved)."""
        wanted = set(names)
        missing = wanted - set(self.programs)
        if missing:
            raise KeyError(f"programs not in suite {self.name!r}: {sorted(missing)}")
        kept = [p for p in self._profiles if p.name in wanted]
        return BenchmarkSuite(self.name, kept)

    def without(self, name: str) -> "BenchmarkSuite":
        """A new suite with one program removed (leave-one-out folds)."""
        if name not in self._by_name:
            raise KeyError(f"no program {name!r} in suite {self.name!r}")
        return BenchmarkSuite(
            self.name, [p for p in self._profiles if p.name != name]
        )

    def by_category(self, category: str) -> List[WorkloadProfile]:
        """All profiles in a category (``int``/``fp``/MiBench group)."""
        return [p for p in self._profiles if p.category == category]
