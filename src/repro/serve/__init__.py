"""repro.serve — the prediction serving subsystem.

The paper's predictor answers "what would this machine score?" in
microseconds once trained; this package turns that into operational
infrastructure, dependency-free:

* :class:`ModelRegistry` / :class:`ModelRecord` — versioned, immutable,
  doubly-checksummed on-disk artifacts for fitted predictors, with
  provenance records linking each version back to the run (seed, git
  sha, input checksum) that produced it.
* :class:`PredictionServer` / :func:`serve_forever` — a stdlib-only
  asyncio HTTP service (``repro serve``) that coalesces concurrent
  requests into vectorised batches and caches repeated configurations,
  with ``/healthz`` and ``/metrics`` endpoints, bounded-queue
  backpressure (503 + ``Retry-After``) and graceful SIGTERM drain.
* :class:`PredictionBatcher` / :class:`LRUCache` — the coalescing
  machinery, usable without the HTTP layer.
* :class:`PredictionClient` — a small blocking client for benchmarks,
  smoke tests and scripts, with seeded full-jitter 503 retries and
  transparent stale keep-alive recovery.
* :class:`AdmissionController` / :class:`TokenBucket` — per-client
  token-bucket quotas plus a global in-flight cap, shedding load with
  503 + ``Retry-After`` *before* queueing delay collapses latency.
* :class:`ServingFleet` / :func:`serve_fleet_forever` — a prefork
  multi-process fleet (``repro serve --workers N``) sharing one port
  via ``SO_REUSEPORT`` (or an inherited listening socket), with
  coordinated SIGTERM drain and parent-side metrics merging.

Exactness is the design anchor: the server predicts through the
batch-composition-invariant forward path
(:meth:`~repro.core.predictor.ArchitectureCentricPredictor.predict_invariant`),
so a served prediction is bit-identical to calling the predictor
directly, regardless of how requests were batched or cached.
"""

from .admission import AdmissionController, AdmissionDecision, TokenBucket
from .batching import LRUCache, PredictionBatcher, ServerSaturated
from .client import PredictionClient, ServerError
from .fleet import FleetReport, ServingFleet, serve_fleet_forever
from .registry import ModelRecord, ModelRegistry, RECORD_SCHEMA
from .server import PredictionServer, serve_forever

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "FleetReport",
    "LRUCache",
    "ModelRecord",
    "ModelRegistry",
    "PredictionBatcher",
    "PredictionClient",
    "PredictionServer",
    "RECORD_SCHEMA",
    "ServerError",
    "ServerSaturated",
    "ServingFleet",
    "TokenBucket",
    "serve_fleet_forever",
    "serve_forever",
]
