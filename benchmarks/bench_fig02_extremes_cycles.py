"""Fig. 2: parameter-value frequencies in the best/worst 1% for cycles."""

from scale import SAMPLE_SIZE

from repro.analysis import dominant_values, extreme_frequencies
from repro.exploration import format_table, scale_banner
from repro.sim import Metric

#: The six parameters the paper plots in Figs. 2 and 3.
PLOTTED = ("width", "rob_size", "rf_size", "rf_read_ports",
           "l2cache_kb", "gshare_size")


def _render(frequencies) -> str:
    rows = []
    for name in PLOTTED:
        values = frequencies.frequencies[name]
        for value, share in values.items():
            if share > 0:
                rows.append(
                    (name, value, round(share, 3),
                     round(frequencies.lift(name, value), 2))
                )
    return format_table(("parameter", "value", "frequency", "lift"), rows)


def test_fig02_extremes_cycles(benchmark, spec_dataset, record_artifact):
    def regenerate():
        best = extreme_frequencies(spec_dataset, Metric.CYCLES, "best")
        worst = extreme_frequencies(spec_dataset, Metric.CYCLES, "worst")
        return best, worst

    best, worst = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    banner = scale_banner(
        "Fig 2 — parameter frequencies in best/worst 1% (cycles)",
        samples=SAMPLE_SIZE, tail="1%",
    )
    text = (
        f"{banner}\n\n(a-f) best 1%\n{_render(best)}\n\n"
        f"(g-l) worst 1%\n{_render(worst)}\n\n"
        f"dominant in worst 1%: {dominant_values(worst, 0.3)}"
    )
    record_artifact("fig02_extremes_cycles", text)

    # The paper's headline: a small register file dominates the worst 1%
    # (81% have just 40 registers in the paper).
    value, frequency = worst.top_value("rf_size")
    assert value == 40
    assert frequency > 0.5
