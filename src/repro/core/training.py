"""Offline training of the per-program model pool.

The architecture-centric scheme trains one program-specific ANN per
training program, offline, on T simulations each (Section 5.2, Fig. 6).
:class:`TrainingPool` owns that step: it trains the models once over a
shared dataset and serves arbitrary subsets (leave-one-out folds, random
few-program pools for the Section 8 cost study) without retraining,
because a program's model does not depend on which fold it appears in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.sim.metrics import Metric
from repro.workloads.profile import stable_seed

from .program_model import ProgramSpecificPredictor

if TYPE_CHECKING:  # avoid a package-level import cycle with exploration
    from repro.exploration.dataset import DesignSpaceDataset


class TrainingPool:
    """Per-program predictors trained offline over a shared dataset.

    Args:
        dataset: Simulated (program x configuration) metric data.
        metric: Target metric of every model in the pool.
        training_size: T — simulations per training program (the paper
            settles on 512).
        seed: Base seed; each program derives its own training split and
            network initialisation from it deterministically.
        hidden_neurons: ANN hidden width (the paper uses 10).
    """

    def __init__(
        self,
        dataset: DesignSpaceDataset,
        metric: Metric,
        training_size: int = 512,
        seed: int = 0,
        hidden_neurons: int = 10,
    ) -> None:
        if training_size < 2:
            raise ValueError("training_size must be at least 2")
        if training_size > len(dataset):
            raise ValueError(
                f"training_size {training_size} exceeds the dataset's "
                f"{len(dataset)} configurations"
            )
        self.dataset = dataset
        self.metric = metric
        self.training_size = training_size
        self.seed = seed
        self.hidden_neurons = hidden_neurons
        self._models: Dict[str, ProgramSpecificPredictor] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def model(self, program: str) -> ProgramSpecificPredictor:
        """The trained model for one program (trained on first use)."""
        if program not in self._models:
            self._models[program] = self._train(program)
        return self._models[program]

    def _train(self, program: str) -> ProgramSpecificPredictor:
        split_seed = stable_seed(
            "pool-split", program, str(self.seed), str(self.training_size)
        )
        train_idx, _ = self.dataset.split_indices(
            self.training_size, seed=split_seed
        )
        configs = self.dataset.subset_configs(train_idx)
        values = self.dataset.subset_values(program, self.metric, train_idx)
        predictor = ProgramSpecificPredictor(
            space=self.dataset.simulator.space,
            metric=self.metric,
            program=program,
            hidden_neurons=self.hidden_neurons,
            seed=stable_seed("pool-net", program, str(self.seed)),
        )
        return predictor.fit(configs, values)

    def train_all(self) -> "TrainingPool":
        """Eagerly train every program's model (otherwise lazy)."""
        for program in self.dataset.programs:
            self.model(program)
        return self

    # ------------------------------------------------------------------
    # Serving folds
    # ------------------------------------------------------------------
    def models(
        self,
        include: Optional[Sequence[str]] = None,
        exclude: Optional[Sequence[str]] = None,
    ) -> List[ProgramSpecificPredictor]:
        """Trained models for a fold.

        Args:
            include: Programs to include (defaults to the whole suite).
            exclude: Programs to drop (e.g. the left-out test program).
        """
        names = list(include) if include is not None else list(self.dataset.programs)
        dropped = set(exclude or ())
        unknown = (set(names) | dropped) - set(self.dataset.programs)
        if unknown:
            raise KeyError(f"programs not in the dataset: {sorted(unknown)}")
        return [self.model(name) for name in names if name not in dropped]
