"""Fig. 11: per-SPEC-program training and testing error (4 metrics).

Leave-one-out over the whole suite.  The paper reports averages of about
8% (cycles), 8% (energy), 14% (ED) and 21% (EDD), with art and mcf the
hardest programs — and shows the training error tracks the testing
error, giving the architect a confidence signal.
"""

import numpy as np

from scale import REPEATS, RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.exploration import ascii_bar_chart, scale_banner
from repro.exploration.experiments import spec_error_experiment
from repro.sim import Metric


def test_fig11_spec_error(benchmark, spec_dataset, record_artifact):
    def regenerate():
        return {
            metric: spec_error_experiment(
                spec_dataset, metric, repeats=REPEATS,
                training_size=TRAINING_SIZE, responses=RESPONSES,
            )
            for metric in Metric.all()
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 11 — leave-one-out error per SPEC CPU 2000 program",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            repeats=REPEATS,
        )
    ]
    for metric, result in results.items():
        programs = list(result.summaries)
        chart = ascii_bar_chart(
            programs,
            [result.summaries[p].mean_rmae for p in programs],
            unit="%",
        )
        train = np.mean(
            [result.summaries[p].mean_training_error for p in programs]
        )
        sections.append(
            f"\n({metric.value}) mean testing rmae "
            f"{result.mean_rmae:.1f}% (training {train:.1f}%), "
            f"mean corr {result.mean_correlation:.3f}\n{chart}"
        )
    record_artifact("fig11_spec_error", "\n".join(sections))

    cycles = results[Metric.CYCLES]
    # art and mcf are the hardest programs (Section 7.2).
    errors = {p: s.mean_rmae for p, s in cycles.summaries.items()}
    hardest = sorted(errors, key=errors.get, reverse=True)[:5]
    assert "art" in hardest
    assert errors["art"] > cycles.mean_rmae
    # Error ordering across metrics: cycles/energy < ED < EDD.
    assert results[Metric.ENERGY].mean_rmae < results[Metric.ED].mean_rmae
    assert results[Metric.ED].mean_rmae < results[Metric.EDD].mean_rmae
    # Training error tracks testing error across programs.
    train = np.array(
        [s.mean_training_error for s in cycles.summaries.values()]
    )
    test = np.array([s.mean_rmae for s in cycles.summaries.values()])
    ranks = lambda a: np.argsort(np.argsort(a))
    assert np.corrcoef(ranks(train), ranks(test))[0, 1] > 0.3
