"""Tests for predictor residual analysis."""

import numpy as np
import pytest

from repro.analysis import (
    error_hotspots,
    residual_profile,
    residuals_by_parameter,
    worst_regions,
)


class TestResidualProfile:
    def test_perfect_predictions(self):
        actual = np.array([10.0, 20.0, 30.0])
        profile = residual_profile(actual, actual)
        assert profile.mean_absolute == 0.0
        assert profile.bias == 0.0
        assert profile.worst == 0.0

    def test_percent_equals_rmae(self):
        from repro.ml import rmae
        rng = np.random.default_rng(0)
        actual = rng.uniform(10, 20, size=50)
        predictions = actual * rng.uniform(0.8, 1.2, size=50)
        profile = residual_profile(predictions, actual)
        assert profile.percent == pytest.approx(rmae(predictions, actual))

    def test_bias_sign(self):
        actual = np.array([10.0, 10.0])
        over = residual_profile(np.array([12.0, 12.0]), actual)
        under = residual_profile(np.array([8.0, 8.0]), actual)
        assert over.bias > 0 > under.bias

    def test_validation(self):
        with pytest.raises(ValueError):
            residual_profile(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            residual_profile(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            residual_profile(np.ones(2), np.array([1.0, 0.0]))


class TestByParameter:
    def test_covers_every_parameter_value_present(self, space, configs):
        subset = list(configs[:100])
        residuals = np.random.default_rng(1).normal(0, 0.1, size=100)
        table = residuals_by_parameter(space, subset, residuals)
        assert set(table) == {p.name for p in space.parameters}
        widths_present = {c.width for c in subset}
        assert set(table["width"]) == widths_present

    def test_localised_error_shows_up(self, space, configs):
        """Injected error on rf_size=40 must surface in that bucket."""
        subset = list(configs[:200])
        residuals = np.full(200, 0.02)
        for i, config in enumerate(subset):
            if config.rf_size == 40:
                residuals[i] = 0.5
        table = residuals_by_parameter(space, subset, residuals)
        if 40 in table["rf_size"]:
            others = [v for k, v in table["rf_size"].items() if k != 40]
            assert table["rf_size"][40] > 2 * max(others)

    def test_alignment_validated(self, space, configs):
        with pytest.raises(ValueError):
            residuals_by_parameter(space, list(configs[:5]), np.ones(4))


class TestWorstRegions:
    def test_sorted_by_severity(self, configs):
        subset = list(configs[:50])
        residuals = np.linspace(-0.5, 0.5, 50)
        worst = worst_regions(subset, residuals, count=5)
        magnitudes = [abs(r) for _, r in worst]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_count_respected(self, configs):
        worst = worst_regions(list(configs[:20]), np.ones(20), count=3)
        assert len(worst) == 3

    def test_invalid_count(self, configs):
        with pytest.raises(ValueError):
            worst_regions(list(configs[:5]), np.ones(5), count=0)


class TestHotspots:
    def test_injected_hotspot_found(self, space, configs):
        subset = list(configs[:200])
        residuals = np.full(200, 0.02)
        for i, config in enumerate(subset):
            if config.width == 2:
                residuals[i] = 0.6
        hotspots = error_hotspots(space, subset, residuals, threshold=2.0)
        assert any(
            name == "width" and value == 2 for name, value, _ in hotspots
        )

    def test_uniform_error_has_no_hotspots(self, space, configs):
        subset = list(configs[:100])
        hotspots = error_hotspots(
            space, subset, np.full(100, 0.05), threshold=1.5
        )
        assert hotspots == []

    def test_real_predictor_hotspots(self, space, small_dataset, cycles_pool):
        """The ANN's residuals concentrate somewhere non-uniformly."""
        from repro.sim import Metric
        model = cycles_pool.model("gzip")
        configs = list(small_dataset.configs)
        predictions = model.predict(configs)
        actual = small_dataset.values("gzip", Metric.CYCLES)
        profile = residual_profile(predictions, actual)
        table = residuals_by_parameter(space, configs, profile.residuals)
        rf_errors = table["rf_size"]
        assert max(rf_errors.values()) > profile.mean_absolute
