"""Tests for average-linkage clustering, cross-checked against scipy."""

import numpy as np
import pytest
from scipy.cluster import hierarchy as scipy_hierarchy
from scipy.spatial.distance import squareform

from repro.analysis import (
    average_linkage,
    cut_tree,
    distance_matrix,
    merge_height_of,
    render_dendrogram,
)
from repro.sim import Metric


def _toy_distances():
    """Four points: two tight pairs far apart."""
    labels = ["a", "b", "c", "d"]
    matrix = np.array(
        [
            [0.0, 1.0, 10.0, 10.5],
            [1.0, 0.0, 9.5, 10.0],
            [10.0, 9.5, 0.0, 1.2],
            [10.5, 10.0, 1.2, 0.0],
        ]
    )
    return matrix, labels


class TestToyClustering:
    def test_pairs_merge_first(self):
        matrix, labels = _toy_distances()
        root = average_linkage(matrix, labels)
        clusters = {frozenset(c) for c in cut_tree(root, 2.0)}
        assert clusters == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_root_contains_everything(self):
        matrix, labels = _toy_distances()
        root = average_linkage(matrix, labels)
        assert set(root.members) == set(labels)

    def test_root_height_is_average_of_cross_distances(self):
        matrix, labels = _toy_distances()
        root = average_linkage(matrix, labels)
        expected = np.mean([10.0, 10.5, 9.5, 10.0])
        assert root.height == pytest.approx(expected)

    def test_heights_monotone_up_the_tree(self):
        matrix, labels = _toy_distances()
        root = average_linkage(matrix, labels)
        assert root.height >= root.left.height
        assert root.height >= root.right.height

    def test_leaves_preserved(self):
        matrix, labels = _toy_distances()
        root = average_linkage(matrix, labels)
        assert sorted(root.leaves()) == sorted(labels)

    def test_single_item(self):
        root = average_linkage(np.zeros((1, 1)), ["only"])
        assert root.is_leaf
        assert root.program == "only"

    def test_asymmetric_matrix_rejected(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            average_linkage(bad, ["a", "b"])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_linkage(np.zeros((2, 2)), ["a"])


class TestAgainstScipy:
    def test_merge_heights_match_scipy_upgma(self, small_dataset):
        matrix, programs = distance_matrix(small_dataset, Metric.CYCLES)
        root = average_linkage(matrix, programs)
        linkage = scipy_hierarchy.linkage(
            squareform(matrix, checks=False), method="average"
        )
        ours = []

        def collect(node):
            if node.is_leaf:
                return
            ours.append(node.height)
            collect(node.left)
            collect(node.right)

        collect(root)
        assert np.allclose(sorted(ours), sorted(linkage[:, 2]), rtol=1e-9)

    def test_flat_clusters_match_scipy(self, small_dataset):
        matrix, programs = distance_matrix(small_dataset, Metric.CYCLES)
        root = average_linkage(matrix, programs)
        linkage = scipy_hierarchy.linkage(
            squareform(matrix, checks=False), method="average"
        )
        cut_height = float(np.median(linkage[:, 2]))
        ours = {frozenset(c) for c in cut_tree(root, cut_height)}
        flat = scipy_hierarchy.fcluster(
            linkage, t=cut_height, criterion="distance"
        )
        theirs = {}
        for program, cluster in zip(programs, flat):
            theirs.setdefault(cluster, set()).add(program)
        assert ours == {frozenset(v) for v in theirs.values()}


class TestDendrogramOnData:
    def test_art_merges_last_or_high(self, small_dataset):
        matrix, programs = distance_matrix(small_dataset, Metric.CYCLES)
        root = average_linkage(matrix, programs)
        art_height = merge_height_of(root, "art")
        others = [
            merge_height_of(root, p) for p in programs if p != "art"
        ]
        assert art_height > np.median(others)

    def test_merge_height_unknown_program(self, small_dataset):
        matrix, programs = distance_matrix(small_dataset, Metric.CYCLES)
        root = average_linkage(matrix, programs)
        with pytest.raises(KeyError):
            merge_height_of(root, "doom")

    def test_render_contains_all_programs(self, small_dataset):
        matrix, programs = distance_matrix(small_dataset, Metric.CYCLES)
        root = average_linkage(matrix, programs)
        text = render_dendrogram(root)
        for program in programs:
            assert program in text
