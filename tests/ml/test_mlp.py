"""Tests for the from-scratch multilayer perceptron."""

import numpy as np
import pytest

from repro.ml import MultilayerPerceptron


def _nonlinear_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2.0, 2.0, size=(n, 2))
    y = np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2
    return x, y


class TestLearning:
    def test_learns_a_linear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(300, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 4.0
        net = MultilayerPerceptron(seed=0, epochs=1500).fit(x, y)
        prediction = net.predict(x)
        rmse = np.sqrt(np.mean((prediction - y) ** 2))
        assert rmse < 0.05 * y.std()

    def test_learns_a_nonlinear_function(self):
        x, y = _nonlinear_data()
        net = MultilayerPerceptron(seed=0, epochs=3000).fit(x, y)
        prediction = net.predict(x)
        rmse = np.sqrt(np.mean((prediction - y) ** 2))
        assert rmse < 0.15 * y.std()

    def test_generalises(self):
        x, y = _nonlinear_data(seed=2)
        x_test, y_test = _nonlinear_data(n=100, seed=3)
        net = MultilayerPerceptron(seed=0, epochs=3000).fit(x, y)
        prediction = net.predict(x_test)
        rmse = np.sqrt(np.mean((prediction - y_test) ** 2))
        assert rmse < 0.3 * y_test.std()

    def test_linear_output_extrapolates(self):
        """The linear output layer must allow values beyond the training
        target range (the paper's stated reason for the architecture)."""
        rng = np.random.default_rng(4)
        x = rng.uniform(0.0, 1.0, size=(300, 1))
        y = 3.0 * x[:, 0]
        net = MultilayerPerceptron(seed=0, epochs=2000).fit(x, y)
        beyond = net.predict(np.array([[1.3]]))[0]
        assert beyond > y.max() * 0.95


class TestDeterminismAndRecords:
    def test_seeded_training_is_deterministic(self):
        x, y = _nonlinear_data(n=120, seed=5)
        a = MultilayerPerceptron(seed=11, epochs=300).fit(x, y).predict(x)
        b = MultilayerPerceptron(seed=11, epochs=300).fit(x, y).predict(x)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        x, y = _nonlinear_data(n=120, seed=5)
        a = MultilayerPerceptron(seed=11, epochs=200).fit(x, y).predict(x)
        b = MultilayerPerceptron(seed=12, epochs=200).fit(x, y).predict(x)
        assert not np.allclose(a, b)

    def test_training_record_present(self):
        x, y = _nonlinear_data(n=150, seed=6)
        net = MultilayerPerceptron(seed=0, epochs=200).fit(x, y)
        record = net.training_record_
        assert record is not None
        assert 0 < record.epochs_run <= 200
        assert record.final_training_loss >= 0

    def test_early_stopping_can_halt_before_max_epochs(self):
        x, y = _nonlinear_data(n=300, seed=7)
        net = MultilayerPerceptron(seed=0, epochs=50_000, patience=3).fit(x, y)
        assert net.training_record_.epochs_run < 50_000


class TestValidation:
    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            MultilayerPerceptron().predict(np.ones((1, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultilayerPerceptron().fit(np.ones((3, 2)), np.ones(4))

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError):
            MultilayerPerceptron().fit(np.ones((1, 2)), np.ones(1))

    def test_bad_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            MultilayerPerceptron(hidden_neurons=0)
        with pytest.raises(ValueError):
            MultilayerPerceptron(learning_rate=0.0)
        with pytest.raises(ValueError):
            MultilayerPerceptron(epochs=0)
        with pytest.raises(ValueError):
            MultilayerPerceptron(validation_fraction=0.8)
        with pytest.raises(ValueError):
            MultilayerPerceptron(patience=0)

    def test_tiny_training_set_skips_validation(self):
        """With a handful of samples the net must still train (this is
        exactly the 32-simulation program-specific baseline)."""
        rng = np.random.default_rng(8)
        x = rng.uniform(-1, 1, size=(16, 3))
        y = x.sum(axis=1)
        net = MultilayerPerceptron(seed=0, epochs=500).fit(x, y)
        assert np.all(np.isfinite(net.predict(x)))
