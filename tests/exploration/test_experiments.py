"""Smoke tests for the per-figure experiment runners (tiny scale)."""

import pytest

from repro.exploration import (
    DesignSpaceDataset,
    comparison_sweep,
    motivation_experiment,
    response_sweep,
    training_programs_sweep,
    training_size_sweep,
)
from repro.exploration.experiments import (
    mibench_experiment,
    spec_error_experiment,
)
from repro.sim import Metric


class TestMotivation:
    def test_architecture_centric_wins(self, small_dataset):
        result = motivation_experiment(
            small_dataset, "applu", Metric.ENERGY,
            responses=32, training_size=256,
        )
        assert result.architecture_centric_rmae < result.program_specific_rmae

    def test_series_sorted_by_actual(self, small_dataset):
        result = motivation_experiment(
            small_dataset, "applu", Metric.ENERGY,
            responses=32, training_size=256,
        )
        assert list(result.actual) == sorted(result.actual)
        assert len(result.actual) == len(small_dataset) - 32


class TestSweeps:
    def test_training_size_sweep_improves(self, small_dataset):
        result = training_size_sweep(
            small_dataset, Metric.CYCLES, sizes=(16, 256),
            repeats=1, programs=["applu", "swim"],
        )
        assert result.points[0].rmae_mean > result.points[1].rmae_mean
        assert result.points[1].correlation_mean > result.points[0].correlation_mean

    def test_response_sweep_runs(self, small_dataset):
        result = response_sweep(
            small_dataset, Metric.CYCLES, counts=(8, 32),
            training_size=256, repeats=1, programs=["applu"],
        )
        assert result.budgets() == [8, 32]
        assert all(p.rmae_mean > 0 for p in result.points)

    def test_comparison_sweep_headline(self, small_dataset):
        result = comparison_sweep(
            small_dataset, Metric.CYCLES, budgets=(32,),
            training_size=256, repeats=1, programs=["applu", "swim"],
        )
        ours = result.architecture_centric.points[0]
        theirs = result.program_specific.points[0]
        assert ours.rmae_mean < theirs.rmae_mean
        assert ours.correlation_mean > theirs.correlation_mean

    def test_crossover_detection(self, small_dataset):
        result = comparison_sweep(
            small_dataset, Metric.CYCLES, budgets=(32, 256),
            training_size=256, repeats=1, programs=["applu"],
        )
        crossover = result.crossover_budget()
        assert crossover is None or crossover in (32, 256)

    def test_training_programs_sweep(self, small_dataset):
        result = training_programs_sweep(
            small_dataset, Metric.CYCLES, pool_sizes=(2, 4),
            training_size=256, responses=32, repeats=1,
        )
        assert [p.budget for p in result.points] == [2, 4]

    def test_training_programs_sweep_bounds(self, small_dataset):
        with pytest.raises(ValueError):
            training_programs_sweep(
                small_dataset, Metric.CYCLES,
                pool_sizes=(len(small_dataset.programs),),
            )


class TestCrossValidationWrappers:
    def test_spec_error_experiment(self, small_dataset):
        result = spec_error_experiment(small_dataset, Metric.CYCLES,
                                       repeats=1, training_size=256)
        assert set(result.summaries) == set(small_dataset.programs)

    def test_mibench_experiment(self, small_dataset, mibench, configs,
                                simulator):
        target = DesignSpaceDataset(
            mibench.subset(["sha", "fft"]), configs, simulator
        )
        result = mibench_experiment(small_dataset, target, Metric.CYCLES,
                                    repeats=1, training_size=256)
        assert set(result.summaries) == {"sha", "fft"}


class TestRobustnessSweeps:
    def test_noise_sweep_degrades_gracefully(self, small_dataset):
        from repro.exploration import noise_sweep
        result = noise_sweep(
            small_dataset, Metric.CYCLES, noise_levels=(0.0, 0.3),
            training_size=256, responses=24, programs=["applu"],
        )
        assert [p.budget for p in result.points] == [0, 30]
        assert result.points[1].rmae_mean > result.points[0].rmae_mean

    def test_noise_sweep_rejects_negative_noise(self, small_dataset):
        from repro.exploration import noise_sweep
        with pytest.raises(ValueError):
            noise_sweep(small_dataset, Metric.CYCLES,
                        noise_levels=(-0.1,), training_size=256)

    def test_drift_sweep_runs(self, small_dataset):
        from repro.exploration import drift_sweep
        result = drift_sweep(
            small_dataset, Metric.CYCLES, drifts=(0.0, 1.0),
            programs_per_level=2, training_size=256, responses=24,
        )
        assert [p.budget for p in result.points] == [0, 100]
        assert all(p.rmae_mean > 0 for p in result.points)
