"""Simulator throughput: the speed/fidelity trade the repository offers.

Not a paper artefact — an engineering table a downstream user needs:
how many (program, configuration) evaluations per second does each
simulator tier deliver?  The whole methodology only works because the
bulk tier is orders of magnitude faster than detailed simulation, so
this bench also guards against performance regressions in the
vectorised interval model.
"""

import time

from repro.designspace import DesignSpace, sample_configurations
from repro.exploration import format_table, scale_banner
from repro.sim import IntervalSimulator, MonteCarloSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import generate_trace, spec2000_suite

BATCH = 2000
TRACE_LENGTH = 20_000


def test_simulator_throughput(benchmark, record_artifact):
    space = DesignSpace()
    profile = spec2000_suite()["gzip"]
    configs = sample_configurations(space, BATCH, seed=77)
    interval = IntervalSimulator(space)

    def interval_batch():
        return interval.simulate_batch(profile, configs)

    benchmark(interval_batch)

    # One-shot measurements for the slower tiers.
    start = time.perf_counter()
    interval.simulate_batch(profile, configs)
    interval_rate = BATCH / (time.perf_counter() - start)

    montecarlo = MonteCarloSimulator(space, replications=8)
    start = time.perf_counter()
    for config in configs[:20]:
        montecarlo.simulate(profile, config, seed=1)
    montecarlo_rate = 20 / (time.perf_counter() - start)

    trace = generate_trace(profile, TRACE_LENGTH)
    start = time.perf_counter()
    PipelineSimulator(space.baseline).run(trace)
    pipeline_seconds = time.perf_counter() - start
    pipeline_rate = 1.0 / pipeline_seconds

    rows = [
        ("interval (vectorised)", f"{interval_rate:,.0f}", "bulk experiments"),
        ("monte-carlo (8 windows)", f"{montecarlo_rate:,.1f}",
         "noisy-response studies"),
        (f"pipeline ({TRACE_LENGTH} instr)", f"{pipeline_rate:,.2f}",
         "deep-dive / fidelity checks"),
    ]
    text = (
        scale_banner(
            "Simulator throughput (configurations evaluated per second)",
            batch=BATCH,
        )
        + "\n"
        + format_table(("simulator", "configs/second", "role"), rows)
    )
    record_artifact("simulator_throughput", text)

    # The methodology's premise: the bulk tier is vastly faster.
    assert interval_rate > 100 * montecarlo_rate
    assert montecarlo_rate > 10 * pipeline_rate
    assert interval_rate > 1000
