"""Fig. 5: hierarchical clustering of SPEC CPU 2000 (4 dendrograms)."""

import numpy as np

from scale import SAMPLE_SIZE

from repro.analysis import (
    average_linkage,
    distance_matrix,
    merge_height_of,
    outlier_scores,
    render_dendrogram,
)
from repro.exploration import scale_banner
from repro.sim import Metric


def test_fig05_clustering(benchmark, spec_dataset, record_artifact):
    def regenerate():
        result = {}
        for metric in Metric.all():
            distances, programs = distance_matrix(spec_dataset, metric)
            result[metric] = (
                average_linkage(distances, programs),
                outlier_scores(distances, programs),
            )
        return result

    per_metric = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 5 — hierarchical clustering (average linkage, "
            "baseline-normalised euclidean distance)",
            samples=SAMPLE_SIZE,
        )
    ]
    for metric, (root, scores) in per_metric.items():
        ranked = sorted(scores.items(), key=lambda kv: -kv[1])[:5]
        outliers = ", ".join(f"{name} ({score:.1f})" for name, score in ranked)
        sections.append(
            f"\n({metric.value}) top outliers by mean distance: {outliers}\n"
            + render_dendrogram(root)
        )
    record_artifact("fig05_clustering", "\n".join(sections))

    # Section 4.2: art and mcf are the suite's outliers on every
    # metric (art tops most; mcf leads for cycles in our substrate).
    art_top_count = 0
    for metric, (root, scores) in per_metric.items():
        ranked = sorted(scores, key=scores.get, reverse=True)
        assert "art" in ranked[:2]
        assert "mcf" in ranked[:4]
        if ranked[0] == "art":
            art_top_count += 1
        others = [
            merge_height_of(root, p)
            for p in spec_dataset.programs
            if p != "art"
        ]
        assert merge_height_of(root, "art") > np.percentile(others, 75)
    assert art_top_count >= 2
