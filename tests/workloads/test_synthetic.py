"""Tests for the parametric random workload generator."""

import pytest

from repro.sim import IntervalSimulator
from repro.workloads import (
    drift_study_suites,
    random_profile,
    synthetic_suite,
)


class TestRandomProfile:
    def test_profile_is_valid(self):
        profile = random_profile("x", seed=1)
        assert profile.suite == "synthetic"
        assert profile.ilp_max > 0

    def test_deterministic_by_name(self):
        assert random_profile("x") == random_profile("x")

    def test_deterministic_by_seed(self):
        assert random_profile("x", seed=9) == random_profile("x", seed=9)

    def test_names_differ(self):
        a = random_profile("a", seed=1)
        b = random_profile("b", seed=2)
        assert a.ilp_max != b.ilp_max

    def test_invalid_drift_rejected(self):
        with pytest.raises(ValueError):
            random_profile("x", drift=1.5)

    def test_drift_raises_idiosyncrasy(self):
        typical = random_profile("x", seed=1, drift=0.0)
        drifted = random_profile("x", seed=1, drift=1.0)
        assert (drifted.idiosyncrasy_performance.amplitude
                > typical.idiosyncrasy_performance.amplitude)

    def test_profiles_simulate(self, space):
        simulator = IntervalSimulator(space)
        for drift in (0.0, 1.0):
            profile = random_profile("x", seed=3, drift=drift)
            result = simulator.simulate(profile, space.baseline)
            assert result.cycles > 0
            assert result.energy > 0


class TestSyntheticSuite:
    def test_requested_count(self):
        assert len(synthetic_suite(7, seed=0)) == 7

    def test_unique_names(self):
        suite = synthetic_suite(10, seed=0)
        assert len(set(suite.programs)) == 10

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            synthetic_suite(0)

    def test_seed_reproducible(self):
        a = synthetic_suite(3, seed=5)
        b = synthetic_suite(3, seed=5)
        assert a.profiles == b.profiles

    def test_drift_spreads_the_population(self, space):
        """Drifted populations have wider knob spreads than typical."""
        typical = synthetic_suite(20, seed=2, drift=0.0)
        drifted = synthetic_suite(20, seed=2, drift=1.0)

        def spread(suite):
            values = [p.ilp_max for p in suite]
            return max(values) / min(values)

        assert spread(drifted) > spread(typical)


class TestDriftStudy:
    def test_one_suite_per_level(self):
        suites = drift_study_suites(3, drifts=(0.0, 0.5))
        assert set(suites) == {0.0, 0.5}
        for suite in suites.values():
            assert len(suite) == 3

    def test_suite_names_distinct(self):
        suites = drift_study_suites(2, drifts=(0.0, 1.0))
        names = {suite.name for suite in suites.values()}
        assert len(names) == 2
