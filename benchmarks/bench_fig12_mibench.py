"""Fig. 12: MiBench predicted from a SPEC CPU 2000-trained model.

The cross-suite experiment of Section 7.3: offline training never saw an
embedded program, yet 32 responses per MiBench program suffice — with
the few genuinely SPEC-unlike programs (tiff2rgba, patricia) flagged by
their elevated training error.
"""

import numpy as np

from scale import REPEATS, RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.exploration import ascii_bar_chart, scale_banner
from repro.exploration.experiments import mibench_experiment
from repro.sim import Metric

METRICS = (Metric.CYCLES, Metric.ENERGY)


def test_fig12_mibench(benchmark, spec_dataset, mibench_dataset,
                       record_artifact):
    def regenerate():
        return {
            metric: mibench_experiment(
                spec_dataset, mibench_dataset, metric, repeats=REPEATS,
                training_size=TRAINING_SIZE, responses=RESPONSES,
            )
            for metric in METRICS
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 12 — MiBench predicted from SPEC-trained pool",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            repeats=REPEATS, metrics=len(METRICS),
        )
    ]
    for metric, result in results.items():
        programs = list(result.summaries)
        chart = ascii_bar_chart(
            programs,
            [result.summaries[p].mean_rmae for p in programs],
            unit="%",
        )
        sections.append(
            f"\n({metric.value}) mean rmae {result.mean_rmae:.1f}%, "
            f"mean corr {result.mean_correlation:.3f}\n{chart}"
        )
    record_artifact("fig12_mibench", "\n".join(sections))

    cycles = results[Metric.CYCLES]
    # Cross-suite prediction works: single-digit-to-low-teens error and
    # high correlation on average.
    assert cycles.mean_rmae < 20.0
    assert cycles.mean_correlation > 0.8
    # Section 7.3's mechanism: the model's own training error singles
    # out the SPEC-unlike programs (here the named outliers plus the
    # tiny hyper-regular crypto/telecom kernels).
    errors = {p: s.mean_rmae for p, s in cycles.summaries.items()}
    trains = {p: s.mean_training_error for p, s in cycles.summaries.items()}
    programs = list(errors)
    ranks = lambda d: np.argsort(np.argsort([d[p] for p in programs]))
    signal = np.corrcoef(ranks(trains), ranks(errors))[0, 1]
    assert signal > 0.5
    # The named outliers are clearly elevated on at least one metric
    # (patricia's quirk shows most strongly through energy).
    for program in ("tiff2rgba", "patricia"):
        ratios = []
        for metric, result in results.items():
            values = [s.mean_rmae for s in result.summaries.values()]
            median = float(np.median(values))
            ratios.append(result.summaries[program].mean_rmae / median)
        assert max(ratios) > 1.3, (program, ratios)
