"""Which training programs does a new workload resemble?

Section 7.3 reads program similarity off full-space dendrograms, which
need thousands of simulations per program.  In practice the architect
has exactly R = 32 responses of the new program — but those responses,
compared against each pool model's predictions *at the same
configurations*, already locate the newcomer in behaviour space:

* :func:`response_space_distances` — normalised distance from the new
  program's responses to every pool program's predicted behaviour;
* :func:`nearest_pool_programs` — the ranked neighbour list ("this
  kernel behaves like swim and applu");
* :func:`transferability_score` — a single 0-1 score (distance to the
  closest pool member, squashed), which correlates with prediction
  accuracy and complements the combiner's training-error signal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.core.program_model import ProgramSpecificPredictor


def response_space_distances(
    models: Sequence[ProgramSpecificPredictor],
    response_configs: Sequence[Configuration],
    response_values: np.ndarray,
) -> Dict[str, float]:
    """Distance from the new program to each pool program.

    Both sides are log10-transformed and centred (each program's mean
    level removed), so the distance measures *shape* over the response
    configurations — the same normalisation idea as the paper's
    baseline-normalised dendrograms, computable from R points.
    """
    if not models:
        raise ValueError("at least one pool model is required")
    response_values = np.asarray(response_values, dtype=float).reshape(-1)
    if len(response_configs) != response_values.shape[0]:
        raise ValueError("configs and values disagree on sample count")
    if np.any(response_values <= 0.0):
        raise ValueError("metric values must be positive")

    target = np.log10(response_values)
    target = target - target.mean()
    scale = max(float(np.linalg.norm(target)), 1e-12)

    distances = {}
    for model in models:
        predicted = np.log10(model.predict(response_configs))
        predicted = predicted - predicted.mean()
        distances[model.program] = float(
            np.linalg.norm(predicted - target) / scale
        )
    return distances


def nearest_pool_programs(
    models: Sequence[ProgramSpecificPredictor],
    response_configs: Sequence[Configuration],
    response_values: np.ndarray,
    count: int = 5,
) -> List[Tuple[str, float]]:
    """The ``count`` most-similar pool programs, closest first."""
    if count < 1:
        raise ValueError("count must be at least 1")
    distances = response_space_distances(
        models, response_configs, response_values
    )
    ranked = sorted(distances.items(), key=lambda item: item[1])
    return ranked[:count]


def transferability_score(
    models: Sequence[ProgramSpecificPredictor],
    response_configs: Sequence[Configuration],
    response_values: np.ndarray,
) -> float:
    """0-1 score: how well the pool covers the new program's behaviour.

    1 means some pool program's shape matches the responses almost
    exactly; values near 0 mean nothing in the pool behaves like the
    newcomer (expect elevated prediction error).  Computed as
    ``exp(-nearest distance)``.
    """
    distances = response_space_distances(
        models, response_configs, response_values
    )
    nearest = min(distances.values())
    return float(np.exp(-nearest))
