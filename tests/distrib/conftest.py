"""Fixtures for the distributed campaign tests.

Coordinator/worker pairs run in-process on one asyncio event loop —
real TCP over loopback, real frames, no subprocesses — so the tests
exercise the actual protocol while staying fast and deterministic.
"""

from __future__ import annotations

import pytest

from repro.runtime import IntervalBackend


@pytest.fixture(scope="session")
def tiny_suite(spec_suite):
    return spec_suite.subset(("gzip", "applu", "art"))


@pytest.fixture(scope="session")
def tiny_configs(configs):
    return list(configs[:60])


@pytest.fixture(scope="session")
def backend(simulator) -> IntervalBackend:
    return IntervalBackend(simulator)
