"""Multilayer perceptron, implemented from scratch on numpy.

The paper's program-specific predictors (Section 5.2) are multilayer
perceptrons with one hidden layer of 10 neurons: a non-linear (tanh)
hidden layer and a linear output layer so the network can extrapolate
beyond the target range seen in training, trained by back-propagation.
This module reimplements exactly that architecture; the weight updates
use Adam (adaptive-moment back-propagation), which reaches the same
optimum as classical momentum descent in far fewer epochs on these
small, ill-conditioned regression problems.  Early stopping against a
held-out validation split guards against overfitting when the training
set is large enough to afford one.

Inputs and targets are standardised internally, so callers pass raw
feature vectors and raw targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .scaling import StandardScaler

#: Adam moment-decay constants (standard values).
_BETA1 = 0.9
_BETA2 = 0.999
_EPS = 1e-8
#: Validate every this many epochs (validation is cheap but not free).
_VALIDATION_STRIDE = 10


@dataclass(frozen=True)
class MLPTrainingRecord:
    """Summary of one training run (exposed for tests and diagnostics)."""

    epochs_run: int
    best_epoch: int
    best_validation_loss: float
    final_training_loss: float


class _Adam:
    """Adam state for one parameter tensor."""

    def __init__(self, shape) -> None:
        self.m = np.zeros(shape)
        self.v = np.zeros(shape)

    def step(self, gradient: np.ndarray, learning_rate: float, t: int) -> np.ndarray:
        """Return the parameter update for this gradient."""
        self.m = _BETA1 * self.m + (1.0 - _BETA1) * gradient
        self.v = _BETA2 * self.v + (1.0 - _BETA2) * gradient * gradient
        m_hat = self.m / (1.0 - _BETA1**t)
        v_hat = self.v / (1.0 - _BETA2**t)
        return -learning_rate * m_hat / (np.sqrt(v_hat) + _EPS)


class MultilayerPerceptron:
    """One-hidden-layer perceptron regressor (tanh hidden, linear output).

    Args:
        hidden_neurons: Hidden layer size; the paper uses 10.
        learning_rate: Adam step size on standardised data.
        epochs: Maximum training epochs (full-batch).
        validation_fraction: Share of the training data held out for
            early stopping (skipped for very small training sets, where
            the paper's baseline behaviour — fit whatever the samples
            support — is exactly what we want to reproduce).
        patience: Early-stopping patience, in validation checks.
        seed: Seed for weight initialisation and the validation split.
    """

    def __init__(
        self,
        hidden_neurons: int = 10,
        learning_rate: float = 0.01,
        epochs: int = 3000,
        validation_fraction: float = 0.15,
        patience: int = 30,
        seed: Optional[int] = None,
    ) -> None:
        if hidden_neurons < 1:
            raise ValueError("hidden_neurons must be at least 1")
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        if not 0.0 <= validation_fraction < 0.5:
            raise ValueError("validation_fraction must be in [0, 0.5)")
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.hidden_neurons = hidden_neurons
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.seed = seed

        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self._hidden_weights: np.ndarray | None = None
        self._hidden_bias: np.ndarray | None = None
        self._output_weights: np.ndarray | None = None
        self._output_bias: float = 0.0
        self.training_record_: MLPTrainingRecord | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self, features: np.ndarray, targets: np.ndarray
    ) -> "MultilayerPerceptron":
        """Train the network on raw (features, targets)."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float).reshape(-1)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        if features.shape[0] < 2:
            raise ValueError("training needs at least two samples")

        rng = np.random.default_rng(self.seed)
        x = self._x_scaler.fit_transform(features)
        y = self._y_scaler.fit_transform(targets.reshape(-1, 1)).reshape(-1)

        # Validation split for early stopping (only when data allows it).
        sample_count = x.shape[0]
        validation_count = int(sample_count * self.validation_fraction)
        use_validation = validation_count >= 8
        order = rng.permutation(sample_count)
        if use_validation:
            x_val, y_val = x[order[:validation_count]], y[order[:validation_count]]
            x_train, y_train = x[order[validation_count:]], y[order[validation_count:]]
        else:
            x_val = y_val = None
            x_train, y_train = x[order], y[order]

        input_dim = x.shape[1]
        hidden = self.hidden_neurons
        limit_hidden = np.sqrt(6.0 / (input_dim + hidden))
        limit_output = np.sqrt(6.0 / (hidden + 1))
        w_hidden = rng.uniform(-limit_hidden, limit_hidden, (input_dim, hidden))
        b_hidden = np.zeros(hidden)
        w_output = rng.uniform(-limit_output, limit_output, hidden)
        b_output = 0.0

        adam_w_hidden = _Adam(w_hidden.shape)
        adam_b_hidden = _Adam(b_hidden.shape)
        adam_w_output = _Adam(w_output.shape)
        adam_b_output = _Adam(())

        best = {
            "loss": np.inf,
            "epoch": 0,
            "w_hidden": w_hidden.copy(),
            "b_hidden": b_hidden.copy(),
            "w_output": w_output.copy(),
            "b_output": b_output,
        }
        stall = 0
        n = x_train.shape[0]
        training_loss = np.inf
        epoch = 0
        for epoch in range(1, self.epochs + 1):
            # Forward pass.
            hidden_act = np.tanh(x_train @ w_hidden + b_hidden)
            prediction = hidden_act @ w_output + b_output
            error = prediction - y_train
            training_loss = float(np.mean(error**2))

            # Backward pass (mean-squared-error gradients).
            grad_output = 2.0 * error / n
            g_w_output = hidden_act.T @ grad_output
            g_b_output = float(np.sum(grad_output))
            grad_hidden = np.outer(grad_output, w_output) * (1.0 - hidden_act**2)
            g_w_hidden = x_train.T @ grad_hidden
            g_b_hidden = grad_hidden.sum(axis=0)

            w_hidden = w_hidden + adam_w_hidden.step(
                g_w_hidden, self.learning_rate, epoch
            )
            b_hidden = b_hidden + adam_b_hidden.step(
                g_b_hidden, self.learning_rate, epoch
            )
            w_output = w_output + adam_w_output.step(
                g_w_output, self.learning_rate, epoch
            )
            b_output = b_output + float(
                adam_b_output.step(np.asarray(g_b_output), self.learning_rate, epoch)
            )

            # Periodic early-stopping check on the validation split.
            if use_validation and epoch % _VALIDATION_STRIDE == 0:
                val_prediction = (
                    np.tanh(x_val @ w_hidden + b_hidden) @ w_output + b_output
                )
                val_loss = float(np.mean((val_prediction - y_val) ** 2))
                if val_loss < best["loss"] - 1e-10:
                    best.update(
                        loss=val_loss,
                        epoch=epoch,
                        w_hidden=w_hidden.copy(),
                        b_hidden=b_hidden.copy(),
                        w_output=w_output.copy(),
                        b_output=b_output,
                    )
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.patience:
                        break

        if use_validation:
            self._hidden_weights = best["w_hidden"]
            self._hidden_bias = best["b_hidden"]
            self._output_weights = best["w_output"]
            self._output_bias = float(best["b_output"])
            best_loss = float(best["loss"])
            best_epoch = int(best["epoch"])
        else:
            self._hidden_weights = w_hidden
            self._hidden_bias = b_hidden
            self._output_weights = w_output
            self._output_bias = float(b_output)
            best_loss = training_loss
            best_epoch = epoch
        self.training_record_ = MLPTrainingRecord(
            epochs_run=epoch,
            best_epoch=best_epoch,
            best_validation_loss=best_loss,
            final_training_loss=training_loss,
        )
        return self

    # ------------------------------------------------------------------
    # Weight export / import
    # ------------------------------------------------------------------
    def get_weights(self) -> dict:
        """Export trained weights and scaler state (for persistence)."""
        if self._hidden_weights is None:
            raise RuntimeError("the network has not been trained")
        return {
            "hidden_weights": self._hidden_weights.copy(),
            "hidden_bias": self._hidden_bias.copy(),
            "output_weights": self._output_weights.copy(),
            "output_bias": np.array(self._output_bias),
            "x_mean": self._x_scaler.mean_.copy(),
            "x_scale": self._x_scaler.scale_.copy(),
            "y_mean": self._y_scaler.mean_.copy(),
            "y_scale": self._y_scaler.scale_.copy(),
        }

    def set_weights(self, weights: dict) -> "MultilayerPerceptron":
        """Restore a network exported by :meth:`get_weights`."""
        required = {
            "hidden_weights", "hidden_bias", "output_weights",
            "output_bias", "x_mean", "x_scale", "y_mean", "y_scale",
        }
        missing = required - set(weights)
        if missing:
            raise ValueError(f"missing weight arrays: {sorted(missing)}")
        self._hidden_weights = np.asarray(weights["hidden_weights"], dtype=float)
        self._hidden_bias = np.asarray(weights["hidden_bias"], dtype=float)
        self._output_weights = np.asarray(weights["output_weights"], dtype=float)
        self._output_bias = float(np.asarray(weights["output_bias"]))
        self._x_scaler.mean_ = np.asarray(weights["x_mean"], dtype=float)
        self._x_scaler.scale_ = np.asarray(weights["x_scale"], dtype=float)
        self._y_scaler.mean_ = np.asarray(weights["y_mean"], dtype=float)
        self._y_scaler.scale_ = np.asarray(weights["y_scale"], dtype=float)
        self.hidden_neurons = self._hidden_weights.shape[1]
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict raw targets for raw feature vectors."""
        if self._hidden_weights is None:
            raise RuntimeError("the network has not been trained")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        x = self._x_scaler.transform(features)
        hidden = np.tanh(x @ self._hidden_weights + self._hidden_bias)
        scaled = hidden @ self._output_weights + self._output_bias
        return self._y_scaler.inverse_transform(
            scaled.reshape(-1, 1)
        ).reshape(-1)
