"""End-to-end determinism: the whole workflow replays bit-identically.

Every random choice in the repository flows from explicit seeds, so two
fresh runs of any experiment must agree exactly — the property that
makes EXPERIMENTS.md's numbers reproducible.  These tests rebuild the
full stack twice from scratch and compare.
"""

import numpy as np

from repro import (
    ArchitectureCentricPredictor,
    DesignSpaceDataset,
    Metric,
    TrainingPool,
    sample_configurations,
    spec2000_suite,
)
from repro.designspace import DesignSpace


def _fresh_prediction(seed_bundle):
    """Build everything from scratch and return one prediction vector."""
    sample_seed, pool_seed, split_seed = seed_bundle
    suite = spec2000_suite().subset(("gzip", "applu", "swim", "mesa"))
    dataset = DesignSpaceDataset.sampled(
        suite, sample_size=300, seed=sample_seed
    )
    pool = TrainingPool(dataset, Metric.CYCLES, training_size=200,
                        seed=pool_seed)
    predictor = ArchitectureCentricPredictor(
        pool.models(exclude=["applu"])
    )
    response_idx, holdout_idx = dataset.split_indices(24, seed=split_seed)
    predictor.fit_responses(
        dataset.subset_configs(response_idx),
        dataset.subset_values("applu", Metric.CYCLES, response_idx),
    )
    return predictor.predict(dataset.subset_configs(holdout_idx[:40]))


class TestEndToEndDeterminism:
    def test_full_workflow_replays_identically(self):
        seeds = (11, 12, 13)
        first = _fresh_prediction(seeds)
        second = _fresh_prediction(seeds)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        a = _fresh_prediction((11, 12, 13))
        b = _fresh_prediction((11, 99, 13))
        assert not np.array_equal(a, b)

    def test_simulation_layer_is_deterministic(self):
        space = DesignSpace()
        suite = spec2000_suite()
        configs = sample_configurations(space, 50, seed=5)
        from repro.sim import IntervalSimulator

        a = IntervalSimulator(space).simulate_batch(suite["art"], configs)
        b = IntervalSimulator(space).simulate_batch(suite["art"], configs)
        assert np.array_equal(a.cycles, b.cycles)
        assert np.array_equal(a.energy, b.energy)

    def test_profiles_are_process_stable(self):
        """Profile construction hashes names, not id()s or dict order."""
        a = spec2000_suite()["mcf"]
        b = spec2000_suite()["mcf"]
        assert a == b
        assert a.idiosyncrasy_performance.seed == b.idiosyncrasy_performance.seed
