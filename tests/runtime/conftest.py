"""Fixtures for the fault-tolerant runtime tests.

Campaign tests run a real (small) cross product of programs and
configurations, so the suite and sample are kept deliberately tiny.
"""

from __future__ import annotations

import pytest

from repro.runtime import IntervalBackend


@pytest.fixture(scope="session")
def tiny_suite(spec_suite):
    return spec_suite.subset(("gzip", "applu", "art"))


@pytest.fixture(scope="session")
def tiny_configs(configs):
    return list(configs[:60])


@pytest.fixture(scope="session")
def backend(simulator) -> IntervalBackend:
    return IntervalBackend(simulator)
