"""Saving and loading trained offline pools and fitted predictors.

Offline training is the architecture-centric workflow's one-off expense
(N programs x T simulations plus N network trainings); a production
user trains once and ships the pool.  A pool serialises to a single
``.npz`` archive of network weights and scaler state; loading restores
ready-to-use :class:`ProgramSpecificPredictor` objects without touching
a simulator.  A *fitted* :class:`ArchitectureCentricPredictor` — pool
plus the combining regressor learned from a new program's responses —
round-trips the same way through :func:`save_predictor` /
:func:`load_predictor`, which is the artifact the model registry
(:mod:`repro.serve.registry`) publishes and the inference server loads.

Format v2 archives are written through the shared checksummed artifact
writer (:mod:`repro.runtime.artifact`): a content digest over every
array is embedded at save time and verified at load time, so a
truncated or bit-flipped pool fails loudly instead of hydrating into
plausible-looking weights.  Version 1 archives (pre-checksum) are still
readable.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.designspace.space import DesignSpace
from repro.ml.mlp import MultilayerPerceptron
from repro.runtime.artifact import read_archive, write_archive
from repro.sim.metrics import Metric

from .predictor import ArchitectureCentricPredictor
from .program_model import ProgramSpecificPredictor

#: Version 2 moved pools onto the shared checksummed artifact writer.
_FORMAT_VERSION = 2

_WEIGHT_NAMES = (
    "hidden_weights", "hidden_bias", "output_weights",
    "output_bias", "x_mean", "x_scale", "y_mean", "y_scale",
)


def _pool_payload(
    models: Sequence[ProgramSpecificPredictor],
) -> Dict[str, np.ndarray]:
    """The archive entries shared by pool and predictor artifacts."""
    if not models:
        raise ValueError("at least one trained model is required")
    metrics = {model.metric for model in models}
    if len(metrics) != 1:
        raise ValueError("all models must target the same metric")
    payload: Dict[str, np.ndarray] = {
        "metric": np.array(models[0].metric.value),
        "programs": np.array([model.program for model in models]),
        "log_target": np.array([model.log_target for model in models]),
        "training_sizes": np.array(
            [model.training_size_ for model in models]
        ),
    }
    for index, model in enumerate(models):
        weights = model._network.get_weights()
        for name, array in weights.items():
            payload[f"model{index}_{name}"] = array
    return payload


def _models_from_payload(
    payload: Dict[str, np.ndarray], space: DesignSpace
) -> List[ProgramSpecificPredictor]:
    """Rebuild the program models held in an archive payload."""
    metric = Metric.from_name(str(payload["metric"]))
    programs = [str(name) for name in payload["programs"]]
    log_targets = payload["log_target"]
    training_sizes = payload["training_sizes"]
    models: List[ProgramSpecificPredictor] = []
    for index, program in enumerate(programs):
        predictor = ProgramSpecificPredictor(
            space=space,
            metric=metric,
            program=program,
            log_target=bool(log_targets[index]),
        )
        weights = {
            name: payload[f"model{index}_{name}"] for name in _WEIGHT_NAMES
        }
        network = MultilayerPerceptron()
        network.set_weights(weights)
        predictor._network = network
        predictor._trained = True
        predictor.training_size_ = int(training_sizes[index])
        models.append(predictor)
    return models


def save_models(
    models: Sequence[ProgramSpecificPredictor],
    path: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Serialise trained program models to one checksummed ``.npz``."""
    return write_archive(path, _pool_payload(models), _FORMAT_VERSION)


def load_models(
    path: Union[str, pathlib.Path],
    space: DesignSpace | None = None,
) -> List[ProgramSpecificPredictor]:
    """Restore program models saved by :func:`save_models`.

    Args:
        path: The ``.npz`` archive.
        space: Design space for configuration encoding (defaults to the
            full Table 1 space; pass the same restricted space the pool
            was trained on, if any).

    Raises:
        ValueError: if the archive is truncated, fails its content
            checksum (version 2+) or has an unsupported version.
    """
    space = space if space is not None else DesignSpace()
    _, payload = read_archive(
        path, _FORMAT_VERSION, legacy_versions=(1,), label="model pool"
    )
    return _models_from_payload(payload, space)


def save_predictor(
    predictor: ArchitectureCentricPredictor,
    path: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Serialise a fitted architecture-centric predictor.

    The archive holds the full offline pool *and* the fitted combining
    regressor, so loading restores a predictor whose predictions are
    bit-identical to the saved one — no responses, no refit.

    Raises:
        RuntimeError: if the predictor has not been fitted on responses.
    """
    if not predictor._fitted:
        raise RuntimeError(
            "only a predictor fitted on responses can be saved; "
            "call fit_responses first"
        )
    payload = _pool_payload(predictor.program_models)
    regressor = predictor._regressor
    payload.update(
        {
            "combiner_weights": np.asarray(regressor.weights_, dtype=float),
            "combiner_intercept": np.array(float(regressor.intercept_)),
            "combiner_ridge": np.array(float(regressor.ridge)),
            "combiner_fit_intercept": np.array(bool(regressor.fit_intercept)),
            "training_error": np.array(float(predictor.training_error_)),
            "response_count": np.array(int(predictor.response_count_)),
        }
    )
    return write_archive(path, payload, _FORMAT_VERSION)


def load_predictor(
    path: Union[str, pathlib.Path],
    space: DesignSpace | None = None,
) -> ArchitectureCentricPredictor:
    """Restore a fitted predictor saved by :func:`save_predictor`.

    Raises:
        ValueError: if the archive is truncated, fails its checksum, or
            holds a bare pool without the fitted combiner.
    """
    space = space if space is not None else DesignSpace()
    _, payload = read_archive(
        path, _FORMAT_VERSION, label="predictor artifact"
    )
    if "combiner_weights" not in payload:
        raise ValueError(
            f"{path} holds an unfitted model pool, not a fitted "
            "predictor; load it with load_models instead"
        )
    models = _models_from_payload(payload, space)
    predictor = ArchitectureCentricPredictor(
        models, ridge=float(payload["combiner_ridge"])
    )
    regressor = predictor._regressor
    regressor.fit_intercept = bool(payload["combiner_fit_intercept"])
    regressor.weights_ = np.asarray(
        payload["combiner_weights"], dtype=float
    )
    regressor.intercept_ = float(payload["combiner_intercept"])
    predictor._fitted = True
    predictor.training_error_ = float(payload["training_error"])
    predictor.response_count_ = int(payload["response_count"])
    return predictor
