"""Ablation A4: accuracy degradation as new programs drift off-suite.

Beyond the paper: the cross-suite experiment (Fig. 12) shows the model
transfers to MiBench, but how far can a new program drift from the
training population before the 32-response characterisation stops
working?  We generate random programs at increasing drift from the
SPEC-like envelope and track accuracy and — crucially — whether the
training-error confidence signal keeps flagging the failures.
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import evaluate_on_program
from repro.exploration import DesignSpaceDataset, format_table, scale_banner
from repro.sim import Metric
from repro.workloads import drift_study_suites

DRIFTS = (0.0, 0.5, 1.0)
PROGRAMS_PER_LEVEL = 5


def test_ablation_drift(benchmark, spec_dataset, pools, record_artifact):
    pool = pools(Metric.CYCLES)
    models = pool.models()
    suites = drift_study_suites(PROGRAMS_PER_LEVEL, drifts=DRIFTS, seed=99)

    def run():
        per_level = {}
        for drift, suite in suites.items():
            dataset = DesignSpaceDataset(
                suite, spec_dataset.configs, spec_dataset.simulator
            )
            scores = [
                evaluate_on_program(
                    models, dataset, program, responses=RESPONSES,
                    seed=777 + int(drift * 100),
                )
                for program in suite.programs
            ]
            per_level[drift] = scores
        return per_level

    per_level = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    summary = {}
    for drift, scores in per_level.items():
        mean_rmae = float(np.mean([s.rmae for s in scores]))
        mean_corr = float(np.mean([s.correlation for s in scores]))
        mean_train = float(np.mean([s.training_error for s in scores]))
        summary[drift] = (mean_rmae, mean_corr, mean_train)
        rows.append(
            (drift, round(mean_rmae, 1), round(mean_corr, 3),
             round(mean_train, 1))
        )
    text = (
        scale_banner(
            "Ablation A4 — accuracy vs workload drift from the training "
            "population",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            programs_per_level=PROGRAMS_PER_LEVEL,
        )
        + "\n"
        + format_table(
            ("drift", "rmae%", "corr", "training err%"), rows
        )
    )
    record_artifact("ablation_drift", text)

    # In-distribution synthetic programs predict about as well as SPEC.
    assert summary[0.0][0] < 15.0
    # Accuracy degrades with drift...
    assert summary[1.0][0] > summary[0.0][0]
    # ...and the confidence signal rises along with the failure.
    assert summary[1.0][2] > summary[0.0][2]
