"""Property-based tests for design-space restriction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import DesignSpace, restrict

_SPACE = DesignSpace()


@st.composite
def random_windows(draw):
    """Draw a random non-empty window for 1-3 random parameters."""
    parameters = draw(
        st.lists(
            st.sampled_from([p.name for p in _SPACE.parameters]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    windows = {}
    for name in parameters:
        grid = _SPACE.parameter(name).values
        low_index = draw(st.integers(0, len(grid) - 1))
        high_index = draw(st.integers(low_index, len(grid) - 1))
        windows[name] = (grid[low_index], grid[high_index])
    return windows


class TestRestrictProperties:
    @given(windows=random_windows())
    @settings(max_examples=40, deadline=None)
    def test_restriction_never_grows_the_space(self, windows):
        restricted = restrict(_SPACE, **windows)
        assert restricted.raw_size <= _SPACE.raw_size
        assert restricted.legal_size <= _SPACE.legal_size

    @given(windows=random_windows())
    @settings(max_examples=40, deadline=None)
    def test_baseline_always_legal_on_grid(self, windows):
        restricted = restrict(_SPACE, **windows)
        baseline = restricted.baseline
        assert restricted.is_on_grid(baseline)
        for name, (low, high) in windows.items():
            assert low <= getattr(baseline, name) <= high

    @given(windows=random_windows())
    @settings(max_examples=25, deadline=None)
    def test_encoding_roundtrip_survives_restriction(self, windows):
        restricted = restrict(_SPACE, **windows)
        baseline = restricted.baseline
        assert restricted.decode(restricted.encode(baseline)) == baseline

    @given(windows=random_windows())
    @settings(max_examples=25, deadline=None)
    def test_grids_subset_of_original(self, windows):
        restricted = restrict(_SPACE, **windows)
        for parameter in restricted.parameters:
            original = set(_SPACE.parameter(parameter.name).values)
            assert set(parameter.values) <= original

    def test_double_restriction_composes(self):
        once = restrict(_SPACE, width=(2, 6))
        twice = restrict(once, width=(4, 6))
        assert twice.parameter("width").values == (4, 6)

    def test_restriction_of_everything_to_baseline(self):
        windows = {
            p.name: (p.baseline, p.baseline) for p in _SPACE.parameters
        }
        point = restrict(_SPACE, **windows)
        assert point.legal_size == 1
        assert list(point.enumerate()) == [_SPACE.baseline]
