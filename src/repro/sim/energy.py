"""Cacti-style array energy/area model and Wattch-style accounting.

The paper derives per-structure energies from Cacti 4.0 and integrates
them with Wattch-style activity counting.  This module reimplements that
pipeline analytically:

* :func:`array_read_energy` / :func:`array_area` — a simplified Cacti:
  an SRAM array's access energy decomposes into decoder, wordline,
  bitline and sense-amp terms driven by the array geometry, and port
  replication lengthens wires (energy grows with port count) and blows
  up area quadratically.
* :func:`cam_search_energy` — fully associative tag match (issue-queue
  wakeup, LSQ disambiguation) charges every entry's comparator.
* :func:`cache_access_energy` — a set-associative cache probes ``assoc``
  tag + data ways per access.
* :class:`EnergyModel` — per-machine table of access energies plus total
  leakage power (leakage is proportional to area, so big idle structures
  hurt exactly the way Section 3.4 describes).

Units are nanojoules and nanojoules/cycle (leakage).  Absolute values are
calibrated only loosely to published Wattch breakdowns; the experiments
rely on relative behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from .machine import MachineSpec, functional_units

# Technology calibration constants (loosely 70 nm-class, arbitrary units
# scaled so a baseline core spends a few nJ per instruction).
_E_BITLINE = 0.00009  # nJ per (column x sqrt(row)) unit swung
_E_WORDLINE = 0.00006
_E_DECODER = 0.0006  # nJ per address bit decoded
_E_SENSE = 0.00035  # nJ per column sensed
_E_CAM_BIT = 0.00025  # nJ per tag bit compared across one entry
_PORT_WIRE_FACTOR = 0.18  # wire-length energy growth per extra port
_AREA_CELL = 1.0  # relative area of a 1-bit 1-port cell
_PORT_AREA_FACTOR = 0.35  # cell pitch growth per extra port (squared)
LEAKAGE_PER_AREA = 4.0e-8  # nJ/cycle per unit area

#: Dynamic energy of one ALU operation, by class (nJ).
ALU_ENERGY = {
    "int_alu": 0.008,
    "int_mul": 0.030,
    "fp_alu": 0.025,
    "fp_mul": 0.060,
}

#: Per-cycle clock-tree energy coefficient (scaled by sqrt of core area).
CLOCK_ENERGY_COEFF = 2.0e-5


def _port_energy_factor(ports):
    """Wire-length energy growth from replicating ports."""
    if np.any(np.asarray(ports) < 1):
        raise ValueError("a structure needs at least one port")
    return 1.0 + _PORT_WIRE_FACTOR * (np.asarray(ports, dtype=float) - 1)


def _port_area_factor(ports):
    """Cell area growth from port replication (pitch grows per port,
    area with its square)."""
    if np.any(np.asarray(ports) < 1):
        raise ValueError("a structure needs at least one port")
    return (1.0 + _PORT_AREA_FACTOR * (np.asarray(ports, dtype=float) - 1)) ** 2


def array_read_energy(entries, bits, ports=1):
    """Energy (nJ) of one read access to an SRAM array.

    The array is organised as close to square as the word width allows;
    bitline energy scales with the column count times the wordline/
    bitline length (~ sqrt of entries), the decoder with the address
    width, and everything with the port-replication wire factor.
    All arguments are numpy-polymorphic (scalars or arrays).
    """
    entries = np.asarray(entries, dtype=float)
    if np.any(entries < 1) or np.any(np.asarray(bits) < 1):
        raise ValueError("entries and bits must be positive")
    rows = np.maximum(1.0, np.sqrt(entries))
    decoder = _E_DECODER * np.maximum(1.0, np.log2(entries))
    wordline = _E_WORDLINE * bits
    bitline = _E_BITLINE * bits * rows
    sense = _E_SENSE * bits
    return (decoder + wordline + bitline + sense) * _port_energy_factor(ports)


def array_write_energy(entries, bits, ports=1):
    """Energy (nJ) of one write access (full bitline swing, no sense)."""
    entries = np.asarray(entries, dtype=float)
    if np.any(entries < 1) or np.any(np.asarray(bits) < 1):
        raise ValueError("entries and bits must be positive")
    rows = np.maximum(1.0, np.sqrt(entries))
    decoder = _E_DECODER * np.maximum(1.0, np.log2(entries))
    wordline = _E_WORDLINE * bits
    bitline = 1.4 * _E_BITLINE * bits * rows
    return (decoder + wordline + bitline) * _port_energy_factor(ports)


def cam_search_energy(entries, tag_bits):
    """Energy (nJ) of one fully associative search (every entry compares)."""
    if np.any(np.asarray(entries) < 1) or np.any(np.asarray(tag_bits) < 1):
        raise ValueError("entries and tag_bits must be positive")
    return _E_CAM_BIT * np.asarray(entries, dtype=float) * tag_bits


def array_area(entries, bits, ports=1):
    """Relative area of an SRAM array (drives leakage)."""
    if np.any(np.asarray(entries) < 1) or np.any(np.asarray(bits) < 1):
        raise ValueError("entries and bits must be positive")
    return _AREA_CELL * np.asarray(entries, dtype=float) * bits * _port_area_factor(ports)


def cache_access_energy(capacity_bytes, line_bytes, associativity):
    """Energy (nJ) of one cache access.

    All ``associativity`` ways probe their tag arrays and read a line
    from the data array; bigger caches pay longer bitlines.
    """
    capacity = np.asarray(capacity_bytes, dtype=float)
    if np.any(capacity < line_bytes):
        raise ValueError("cache smaller than one line")
    lines = capacity // line_bytes
    sets = np.maximum(1, lines // associativity)
    tag_bits = 28
    tag = associativity * array_read_energy(sets, tag_bits)
    data = array_read_energy(sets, line_bytes * 8) * math.sqrt(associativity)
    return tag + data


def cache_area(capacity_bytes):
    """Relative area of a cache (tag overhead folded into the constant)."""
    return _AREA_CELL * np.asarray(capacity_bytes, dtype=float) * 8 * 1.08


@dataclass(frozen=True)
class StructureEnergies:
    """Per-access energies (nJ) of every major structure of a machine."""

    rob_read: float
    rob_write: float
    iq_write: float
    iq_wakeup: float
    lsq_search: float
    lsq_write: float
    rf_read: float
    rf_write: float
    gshare_access: float
    btb_access: float
    icache_access: float
    dcache_access: float
    l2_access: float
    rename_access: float


class EnergyModel:
    """Energy model of one machine configuration.

    Exposes the per-access energy table, total leakage power, and the
    Wattch-style aggregation from an activity-count dictionary.
    """

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        config = spec.configuration
        fixed = spec.fixed
        width = config.width
        units = functional_units(width)

        self.energies = StructureEnergies(
            rob_read=array_read_energy(config.rob_size, 76, ports=2 * width),
            rob_write=array_write_energy(config.rob_size, 76, ports=2 * width),
            iq_write=array_write_energy(config.iq_size, 48, ports=width),
            iq_wakeup=cam_search_energy(config.iq_size, 10),
            lsq_search=cam_search_energy(config.lsq_size, 40),
            lsq_write=array_write_energy(config.lsq_size, 72, ports=width),
            rf_read=array_read_energy(
                config.rf_size,
                64,
                ports=config.rf_read_ports + config.rf_write_ports,
            ),
            rf_write=array_write_energy(
                config.rf_size,
                64,
                ports=config.rf_read_ports + config.rf_write_ports,
            ),
            gshare_access=array_read_energy(config.gshare_size, 2),
            btb_access=array_read_energy(config.btb_size, 60),
            icache_access=cache_access_energy(
                config.icache_kb * 1024,
                fixed.l1_line_bytes,
                fixed.l1_associativity,
            ),
            dcache_access=cache_access_energy(
                config.dcache_kb * 1024,
                fixed.l1_line_bytes,
                fixed.l1_associativity,
            ),
            l2_access=cache_access_energy(
                config.l2cache_kb * 1024,
                fixed.l2_line_bytes,
                fixed.l2_associativity,
            ),
            rename_access=array_read_energy(64, 8, ports=2 * width),
        )

        rf_ports = config.rf_read_ports + config.rf_write_ports
        alu_area = 1.6e5 * (
            units["int_alu"]
            + 2.0 * units["int_mul"]
            + 2.5 * units["fp_alu"]
            + 4.0 * units["fp_mul"]
        )
        self.area = (
            array_area(config.rob_size, 76, ports=2 * width)
            + array_area(config.iq_size, 48, ports=width)
            + array_area(config.lsq_size, 72, ports=width)
            + array_area(config.rf_size, 64, ports=rf_ports) * 2  # int + fp
            + array_area(config.gshare_size, 2)
            + array_area(config.btb_size, 60)
            + cache_area(config.icache_kb * 1024)
            + cache_area(config.dcache_kb * 1024)
            + cache_area(config.l2cache_kb * 1024)
            + alu_area
        )
        #: Leakage power in nJ per cycle.
        self.leakage_power = self.area * LEAKAGE_PER_AREA
        #: Clock-tree energy in nJ per cycle.
        self.clock_energy_per_cycle = CLOCK_ENERGY_COEFF * math.sqrt(self.area) * width

    def alu_energy(self, op_class: str) -> float:
        """Dynamic energy of one ALU operation of the given class."""
        try:
            return ALU_ENERGY[op_class]
        except KeyError:
            raise KeyError(
                f"unknown ALU class {op_class!r}; known: {sorted(ALU_ENERGY)}"
            ) from None

    def total_energy(self, activity: Dict[str, float], cycles: float) -> float:
        """Total energy (nJ) from activity counts and elapsed cycles.

        Args:
            activity: Counts per activity name.  Structure activities use
                the :class:`StructureEnergies` field names; ALU activities
                use the :data:`ALU_ENERGY` class names.
            cycles: Total cycles, charged leakage + clock every cycle.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        dynamic = 0.0
        for name, count in activity.items():
            if count < 0:
                raise ValueError(f"negative activity count for {name!r}")
            if name in ALU_ENERGY:
                dynamic += count * ALU_ENERGY[name]
            else:
                dynamic += count * getattr(self.energies, name)
        overhead = cycles * (self.leakage_power + self.clock_energy_per_cycle)
        return dynamic + overhead
