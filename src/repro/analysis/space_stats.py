"""Per-program design-space statistics (Fig. 4).

Section 4.1: for every program and metric, the minimum, 25 percent
quartile, median, 75 percent quartile and maximum across the sampled
design space, plus the baseline machine's value — showing how wildly
programs differ in both level and spread (art varies by an order of
magnitude, parser barely moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.sim.metrics import Metric

from repro.exploration.dataset import DesignSpaceDataset


@dataclass(frozen=True)
class SpaceStatistics:
    """Five-number summary (plus baseline) of one program's space."""

    program: str
    metric: Metric
    minimum: float
    quartile25: float
    median: float
    quartile75: float
    maximum: float
    baseline: float

    @property
    def spread(self) -> float:
        """max / min — how much the design space matters for this program."""
        return self.maximum / self.minimum


def program_statistics(
    dataset: DesignSpaceDataset, program: str, metric: Metric
) -> SpaceStatistics:
    """Five-number summary of one program over the sampled space."""
    values = dataset.values(program, metric)
    baseline_config = dataset.simulator.space.baseline
    baseline = dataset.simulator.simulate(
        dataset.suite[program], baseline_config
    ).metric(metric)
    q25, median, q75 = np.percentile(values, (25.0, 50.0, 75.0))
    return SpaceStatistics(
        program=program,
        metric=metric,
        minimum=float(values.min()),
        quartile25=float(q25),
        median=float(median),
        quartile75=float(q75),
        maximum=float(values.max()),
        baseline=float(baseline),
    )


def suite_statistics(
    dataset: DesignSpaceDataset, metric: Metric
) -> Dict[str, SpaceStatistics]:
    """Fig. 4 data: the per-program summaries for a whole suite."""
    return {
        program: program_statistics(dataset, program, metric)
        for program in dataset.programs
    }
