"""SimPoint-like phase decomposition of a workload profile.

The paper represents each SPEC program by up to 30 SimPoint clusters of
10 M instructions and simulates the weighted phases rather than the whole
program.  Our synthetic equivalent decomposes a profile into ``count``
phases whose knobs are deterministic perturbations of the parent profile
(programs really do shift instruction mix, locality and predictability
between phases) together with normalised weights.  A program metric is
then the weighted combination of its phase metrics — for additive metrics
(cycles, energy) the weighted sum of per-phase values, as SimPoint does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .profile import Idiosyncrasy, WorkloadProfile, stable_seed


@dataclass(frozen=True)
class Phase:
    """One execution phase: a perturbed profile plus its weight."""

    profile: WorkloadProfile
    weight: float

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ValueError("phase weight must be in (0, 1]")


def decompose(profile: WorkloadProfile, count: int = 3) -> Tuple[Phase, ...]:
    """Split a profile into ``count`` weighted phases.

    The perturbations are deterministic per (program, phase index), so a
    program always decomposes into the same phases.  Weights follow a
    decreasing Dirichlet-like split, mimicking SimPoint cluster sizes.

    Args:
        profile: The parent program profile.
        count: Number of phases (the paper caps SimPoint at 30 clusters;
            3-5 is representative for our synthetic programs).

    Returns:
        Phases whose weights sum to 1.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if count == 1:
        return (Phase(profile, 1.0),)

    seed = stable_seed(profile.suite, profile.name, "phases")
    rng = np.random.default_rng(seed)
    raw = rng.dirichlet(np.full(count, 2.0))
    weights = np.sort(raw)[::-1]

    phases = []
    for index, weight in enumerate(weights):
        phase_rng = np.random.default_rng(
            stable_seed(profile.suite, profile.name, f"phase-{index}")
        )

        def wobble(value: float, spread: float = 0.12) -> float:
            return float(value * (1.0 + phase_rng.uniform(-spread, spread)))

        perturbed = profile.with_overrides(
            ilp_max=wobble(profile.ilp_max),
            ilp_window_scale=wobble(profile.ilp_window_scale),
            mlp_max=max(1.0, wobble(profile.mlp_max)),
            latency_hiding_scale=wobble(profile.latency_hiding_scale),
            idiosyncrasy_performance=Idiosyncrasy(
                amplitude=profile.idiosyncrasy_performance.amplitude,
                seed=stable_seed(
                    profile.suite, profile.name, f"phase-{index}-idio-perf"
                ),
            ),
            idiosyncrasy_energy=Idiosyncrasy(
                amplitude=profile.idiosyncrasy_energy.amplitude,
                seed=stable_seed(
                    profile.suite, profile.name, f"phase-{index}-idio-energy"
                ),
            ),
        )
        phases.append(Phase(perturbed, float(weight)))
    return tuple(phases)


def combine_phase_metrics(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Weighted combination of additive per-phase metrics.

    Args:
        values: (phases, ...) per-phase metric values (cycles or energy,
            each for the nominal 10 M-instruction interval).
        weights: Length-``phases`` weights summing to 1.

    Returns:
        The program-level metric with the phase axis reduced.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape[0] != weights.shape[0]:
        raise ValueError("one weight per phase is required")
    if abs(float(weights.sum()) - 1.0) > 1e-9:
        raise ValueError("phase weights must sum to 1")
    return np.tensordot(weights, values, axes=(0, 0))
