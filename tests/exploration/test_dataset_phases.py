"""Tests for phase-aware dataset simulation."""

import numpy as np
import pytest

from repro.exploration import DesignSpaceDataset
from repro.sim import Metric


@pytest.fixture(scope="module")
def phased(small_suite, configs, simulator):
    return DesignSpaceDataset(
        small_suite, configs[:100], simulator, phases=3
    )


@pytest.fixture(scope="module")
def single(small_suite, configs, simulator):
    return DesignSpaceDataset(small_suite, configs[:100], simulator)


class TestPhasedDataset:
    def test_invalid_phase_count_rejected(self, small_suite, configs,
                                          simulator):
        with pytest.raises(ValueError):
            DesignSpaceDataset(small_suite, configs[:10], simulator,
                               phases=0)

    def test_values_positive(self, phased):
        for metric in Metric.all():
            assert np.all(phased.values("gzip", metric) > 0)

    def test_derived_metric_identities(self, phased):
        cycles = phased.values("gzip", Metric.CYCLES)
        energy = phased.values("gzip", Metric.ENERGY)
        assert np.allclose(
            phased.values("gzip", Metric.ED), cycles * energy
        )
        assert np.allclose(
            phased.values("gzip", Metric.EDD), cycles * cycles * energy
        )

    def test_phased_close_to_aggregate(self, phased, single):
        """Phase-weighted metrics track the aggregate profile closely
        (phases are small perturbations of the parent)."""
        a = phased.values("gzip", Metric.CYCLES)
        b = single.values("gzip", Metric.CYCLES)
        assert np.corrcoef(a, b)[0, 1] > 0.98
        assert 0.7 < float(np.median(a / b)) < 1.4

    def test_phased_differs_from_aggregate(self, phased, single):
        a = phased.values("gzip", Metric.CYCLES)
        b = single.values("gzip", Metric.CYCLES)
        assert not np.allclose(a, b)

    def test_deterministic(self, small_suite, configs, simulator):
        a = DesignSpaceDataset(small_suite, configs[:20], simulator,
                               phases=3)
        b = DesignSpaceDataset(small_suite, configs[:20], simulator,
                               phases=3)
        assert np.allclose(
            a.values("art", Metric.ENERGY), b.values("art", Metric.ENERGY)
        )
