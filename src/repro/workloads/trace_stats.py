"""Measuring the characteristics of a generated trace.

The synthetic trace generator promises that its streams follow the
source profile's distributions; this module measures a trace and
reports what it actually contains, closing the loop.  Used by the test
suite to validate the generator and handy when debugging workload
models ("is this trace really 30 percent memory operations?").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .profile import WorkloadProfile
from .tracegen import LINE_BYTES, OpClass, TraceInstruction


@dataclass(frozen=True)
class TraceCharacteristics:
    """Measured properties of a dynamic instruction stream."""

    length: int
    mix: Dict[str, float]
    taken_fraction: float
    branch_sites: int
    data_lines_touched: int
    data_footprint_bytes: int
    code_lines_touched: int
    code_footprint_bytes: int
    pc_reuse: float  # 1 - unique PCs / instructions

    @property
    def memory_fraction(self) -> float:
        return self.mix.get("LOAD", 0.0) + self.mix.get("STORE", 0.0)

    @property
    def branch_fraction(self) -> float:
        return self.mix.get("BRANCH", 0.0)


def characterise_trace(
    trace: Sequence[TraceInstruction],
) -> TraceCharacteristics:
    """Measure the characteristics of a trace."""
    if not trace:
        raise ValueError("cannot characterise an empty trace")
    counts = Counter(instr.op.name for instr in trace)
    n = len(trace)
    mix = {name: count / n for name, count in counts.items()}

    branches = [t for t in trace if t.op is OpClass.BRANCH]
    taken = sum(1 for t in branches if t.taken)
    taken_fraction = taken / len(branches) if branches else 0.0
    branch_sites = len({t.branch_id for t in branches})

    data_lines = {
        t.address // LINE_BYTES for t in trace if t.address is not None
    }
    code_lines = {t.pc // LINE_BYTES for t in trace}
    unique_pcs = len({t.pc for t in trace})

    return TraceCharacteristics(
        length=n,
        mix=mix,
        taken_fraction=taken_fraction,
        branch_sites=branch_sites,
        data_lines_touched=len(data_lines),
        data_footprint_bytes=len(data_lines) * LINE_BYTES,
        code_lines_touched=len(code_lines),
        code_footprint_bytes=len(code_lines) * LINE_BYTES,
        pc_reuse=1.0 - unique_pcs / n,
    )


def mix_deviation(
    characteristics: TraceCharacteristics, profile: WorkloadProfile
) -> float:
    """Largest absolute deviation between measured and intended mix.

    Near zero for a faithful generator on a long trace; the test suite
    bounds it.
    """
    intended = {
        "INT_ALU": profile.mix.int_alu,
        "INT_MUL": profile.mix.int_mul,
        "FP_ALU": profile.mix.fp_alu,
        "FP_MUL": profile.mix.fp_mul,
        "LOAD": profile.mix.load,
        "STORE": profile.mix.store,
        "BRANCH": profile.mix.branch,
    }
    return max(
        abs(characteristics.mix.get(name, 0.0) - fraction)
        for name, fraction in intended.items()
    )


def reuse_histogram(
    trace: Sequence[TraceInstruction], buckets: Sequence[int] = (1, 8, 64, 512, 4096)
) -> Dict[str, int]:
    """Histogram of data-line reuse distances (in distinct lines).

    Bucket ``"<=k"`` counts accesses whose reuse distance (number of
    distinct lines touched since the previous access to the same line)
    is at most ``k``; ``"cold"`` counts first touches.
    """
    last_seen: Dict[int, int] = {}
    stack: list = []  # LRU order of lines, most recent last
    histogram = {f"<={k}": 0 for k in buckets}
    histogram["cold"] = 0
    histogram[">max"] = 0
    for instr in trace:
        if instr.address is None:
            continue
        line = instr.address // LINE_BYTES
        if line not in last_seen:
            histogram["cold"] += 1
        else:
            depth = len(stack) - 1 - stack.index(line)
            for k in buckets:
                if depth <= k:
                    histogram[f"<={k}"] += 1
                    break
            else:
                histogram[">max"] += 1
            stack.remove(line)
        stack.append(line)
        last_seen[line] = instr.index
    return histogram
