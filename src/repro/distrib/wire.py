"""JSON codecs for everything that crosses the coordinator/worker wire.

Campaign tasks and results must travel between hosts as plain JSON, and
the distributed guarantee — a distributed run is *bit-identical* to a
serial one — hinges on these codecs being exact round trips:

* **Configurations** travel as 13-integer lists in Table 1 order.
* **Workload profiles** travel as nested field dicts mirroring the
  frozen dataclasses in :mod:`repro.workloads.profile`; reconstruction
  re-runs every ``__post_init__`` validator, so a tampered profile is
  rejected at decode time.
* **Batch results** travel as float lists.  Python's ``json`` emits
  ``repr(float)`` — the shortest string that parses back to the exact
  same IEEE-754 double — so metric arrays survive the wire bit-for-bit
  (``allow_nan=False`` everywhere; non-finite metrics are a backend
  bug caught by ``validate_batch`` long before encoding).
* **Retry policies** travel field-by-field so every worker backs off
  exactly like the serial loop would.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.runtime.artifact import payload_checksum
from repro.runtime.retry import RetryPolicy
from repro.sim.interval import BatchResult
from repro.workloads.profile import (
    BranchBehaviour,
    Idiosyncrasy,
    InstructionMix,
    LocalityModel,
    WorkloadProfile,
)

__all__ = [
    "batch_checksum",
    "batch_from_wire",
    "batch_to_wire",
    "configs_from_wire",
    "configs_to_wire",
    "policy_from_wire",
    "policy_to_wire",
    "profile_from_wire",
    "profile_to_wire",
]

_BATCH_FIELDS = ("cycles", "energy", "ed", "edd")


# ----------------------------------------------------------------------
# Configurations
# ----------------------------------------------------------------------
def configs_to_wire(configs: Sequence[Configuration]) -> List[List[int]]:
    """Encode configurations as integer lists in Table 1 order."""
    return [[int(v) for v in config.values()] for config in configs]


def configs_from_wire(wire: Sequence[Sequence[int]]) -> List[Configuration]:
    """Decode :func:`configs_to_wire` output back to configurations."""
    return [
        Configuration.from_values(tuple(int(v) for v in values))
        for values in wire
    ]


# ----------------------------------------------------------------------
# Workload profiles
# ----------------------------------------------------------------------
def profile_to_wire(profile: WorkloadProfile) -> Dict:
    """Encode a workload profile as a nested plain dict."""
    return asdict(profile)


def profile_from_wire(wire: Dict) -> WorkloadProfile:
    """Rebuild a :class:`WorkloadProfile` from :func:`profile_to_wire`.

    Every nested dataclass constructor re-runs its validators, so a
    malformed or tampered profile raises ``ValueError``/``TypeError``
    here instead of producing garbage simulations.
    """
    data = dict(wire)
    try:
        return WorkloadProfile(
            name=str(data["name"]),
            suite=str(data["suite"]),
            category=str(data["category"]),
            mix=InstructionMix(**data["mix"]),
            ilp_max=float(data["ilp_max"]),
            ilp_window_scale=float(data["ilp_window_scale"]),
            iq_pressure=float(data["iq_pressure"]),
            dest_fraction=float(data["dest_fraction"]),
            reads_per_instruction=float(data["reads_per_instruction"]),
            branches=BranchBehaviour(**data["branches"]),
            data_locality=_locality_from_wire(data["data_locality"]),
            instruction_locality=_locality_from_wire(
                data["instruction_locality"]
            ),
            mlp_max=float(data["mlp_max"]),
            latency_hiding_scale=float(data["latency_hiding_scale"]),
            idiosyncrasy_performance=Idiosyncrasy(
                **data["idiosyncrasy_performance"]
            ),
            idiosyncrasy_energy=Idiosyncrasy(**data["idiosyncrasy_energy"]),
            instructions=int(data["instructions"]),
        )
    except KeyError as error:
        raise ValueError(
            f"wire profile is missing field {error.args[0]!r}"
        ) from error


def _locality_from_wire(data: Dict) -> LocalityModel:
    return LocalityModel(
        working_sets=tuple(
            (float(size), float(weight))
            for size, weight in data["working_sets"]
        ),
        cold=float(data["cold"]),
        sharpness=float(data["sharpness"]),
    )


# ----------------------------------------------------------------------
# Batch results
# ----------------------------------------------------------------------
def batch_to_wire(batch: BatchResult) -> Dict[str, List[float]]:
    """Encode the four metric arrays as float lists."""
    return {
        field: [float(v) for v in getattr(batch, field)]
        for field in _BATCH_FIELDS
    }


def batch_from_wire(wire: Dict[str, Sequence[float]]) -> BatchResult:
    """Decode :func:`batch_to_wire` output back to a :class:`BatchResult`."""
    try:
        arrays = {
            field: np.asarray(wire[field], dtype=np.float64)
            for field in _BATCH_FIELDS
        }
    except KeyError as error:
        raise ValueError(
            f"wire batch is missing metric {error.args[0]!r}"
        ) from error
    lengths = {field: len(array) for field, array in arrays.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"wire batch arrays disagree on length: {lengths}")
    return BatchResult(**arrays)


def batch_checksum(batch: BatchResult) -> str:
    """The artifact-layer digest of a batch's metric arrays.

    Exactly the digest :func:`repro.runtime.artifact.payload_checksum`
    would embed when the arrays are archived — computed worker-side
    before encoding and re-computed coordinator-side after decoding, so
    a result corrupted anywhere in between is rejected rather than
    journalled.
    """
    return payload_checksum(
        {field: getattr(batch, field) for field in _BATCH_FIELDS}
    )


# ----------------------------------------------------------------------
# Retry policies
# ----------------------------------------------------------------------
def policy_to_wire(policy: RetryPolicy) -> Dict:
    """Encode a retry policy field-by-field."""
    return {
        "max_attempts": policy.max_attempts,
        "base_delay": policy.base_delay,
        "multiplier": policy.multiplier,
        "jitter": policy.jitter,
        "timeout": policy.timeout,
        "jitter_mode": policy.jitter_mode,
    }


def policy_from_wire(wire: Dict) -> RetryPolicy:
    """Decode :func:`policy_to_wire` output (validators re-run)."""
    timeout = wire.get("timeout")
    return RetryPolicy(
        max_attempts=int(wire["max_attempts"]),
        base_delay=float(wire["base_delay"]),
        multiplier=float(wire["multiplier"]),
        jitter=float(wire["jitter"]),
        timeout=None if timeout is None else float(timeout),
        jitter_mode=str(wire.get("jitter_mode", "proportional")),
    )
