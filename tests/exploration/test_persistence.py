"""Tests for dataset save/load round-tripping."""

import numpy as np
import pytest

from repro.exploration import DesignSpaceDataset, load_dataset, save_dataset
from repro.sim import Metric


@pytest.fixture()
def archive(tmp_path, small_dataset):
    return save_dataset(small_dataset, tmp_path / "dataset.npz")


class TestRoundTrip:
    def test_values_identical(self, archive, small_dataset, small_suite):
        restored = load_dataset(archive, small_suite)
        for metric in Metric.all():
            for program in small_suite.programs:
                assert np.allclose(
                    restored.values(program, metric),
                    small_dataset.values(program, metric),
                )

    def test_configs_identical(self, archive, small_dataset, small_suite):
        restored = load_dataset(archive, small_suite)
        assert restored.configs == small_dataset.configs

    def test_loaded_values_served_without_simulation(
        self, archive, small_suite
    ):
        restored = load_dataset(archive, small_suite)
        # Every (program, metric) pair must already be cached.
        for metric in Metric.all():
            for program in small_suite.programs:
                assert (program, metric) in restored._cache

    def test_restored_dataset_supports_splits(self, archive, small_suite):
        restored = load_dataset(archive, small_suite)
        first, rest = restored.split_indices(16, seed=3)
        assert len(first) == 16
        values = restored.subset_values("gzip", Metric.CYCLES, first)
        assert values.shape == (16,)


class TestValidation:
    def test_wrong_suite_name_rejected(self, archive, small_suite):
        renamed = type(small_suite)("other", small_suite.profiles)
        with pytest.raises(ValueError, match="suite"):
            load_dataset(archive, renamed)

    def test_wrong_program_list_rejected(self, archive, small_suite):
        reduced = small_suite.without("art")
        with pytest.raises(ValueError, match="program list"):
            load_dataset(archive, reduced)

    def test_archive_is_a_single_file(self, archive):
        assert archive.exists()
        assert archive.suffix == ".npz"
