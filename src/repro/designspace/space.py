"""The 13-parameter microarchitectural design space of Table 1.

The paper varies 13 parameters of a superscalar out-of-order core for a
raw cross product of roughly 63 billion configurations, then filters out
points that "do not make architectural sense" (e.g. a reorder buffer
smaller than the issue queue), leaving roughly 18 billion legal points.
:class:`DesignSpace` reproduces both the grid and the filtering, computes
the exact legal-point count by factored enumeration, and converts between
:class:`~repro.designspace.configuration.Configuration` objects and the
13-element feature vectors used by the predictors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .configuration import PARAMETER_ORDER, Configuration
from .parameters import Parameter, geometric_grid, linear_grid


def table1_parameters() -> Tuple[Parameter, ...]:
    """Build the 13 varied parameters of the paper's Table 1.

    The grids reproduce the ranges, steps and cardinalities of Table 1
    (4 x 17 x 10 x 10 x 16 x 8 x 8 x 6 x 3 x 4 x 5 x 5 x 5 which is about
    63 billion raw points) and the baseline machine encodes to the
    paper's ``x_baseline = (4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2)``.
    """
    return (
        Parameter("width", "Pipeline width", (2, 4, 6, 8), 4, "insns"),
        Parameter("rob_size", "Reorder buffer", linear_grid(32, 160, 8), 96, "entries"),
        Parameter("iq_size", "Issue queue", linear_grid(8, 80, 8), 32, "entries"),
        Parameter("lsq_size", "Load/store queue", linear_grid(8, 80, 8), 48, "entries"),
        Parameter("rf_size", "Register file", linear_grid(40, 160, 8), 96, "regs"),
        Parameter("rf_read_ports", "RF read ports", linear_grid(2, 16, 2), 8, "ports"),
        Parameter("rf_write_ports", "RF write ports", linear_grid(1, 8, 1), 4, "ports"),
        Parameter(
            "gshare_size",
            "Gshare predictor",
            geometric_grid(1024, 32768),
            16384,
            "entries",
            encoding_divisor=1024,
        ),
        Parameter(
            "btb_size",
            "Branch target buffer",
            geometric_grid(1024, 4096),
            4096,
            "entries",
            encoding_divisor=1024,
        ),
        Parameter("max_branches", "In-flight branches", (8, 16, 24, 32), 16, "branches"),
        Parameter("icache_kb", "L1 I-cache", geometric_grid(8, 128), 32, "KB"),
        Parameter("dcache_kb", "L1 D-cache", geometric_grid(8, 128), 32, "KB"),
        Parameter(
            "l2cache_kb",
            "L2 unified cache",
            geometric_grid(256, 4096),
            2048,
            "KB",
            encoding_divisor=1024,
        ),
    )


class DesignSpace:
    """The legal microarchitectural design space.

    Legality constraints (the paper names the first explicitly; the rest
    are the analogous "architectural sense" filters needed to reach the
    reported ~18 billion legal points):

    * ``rob_size >= iq_size`` — instructions in the issue queue occupy
      reorder-buffer slots.
    * ``rob_size >= lsq_size`` — likewise for the load/store queue.
    * ``rf_read_ports <= 2 * width`` — a width-``w`` machine can consume
      at most ``2w`` operand reads per cycle.
    * ``rf_write_ports <= width`` — at most ``w`` results written back.
    * ``l2cache_kb >= 8 * max(icache_kb, dcache_kb)`` — the unified L2
      must meaningfully back the L1s.
    """

    def __init__(self, parameters: Sequence[Parameter] | None = None) -> None:
        self._parameters: Tuple[Parameter, ...] = tuple(
            parameters if parameters is not None else table1_parameters()
        )
        names = tuple(p.name for p in self._parameters)
        if names != PARAMETER_ORDER:
            raise ValueError(
                "parameters must match the canonical 13-parameter order; "
                f"got {names}"
            )
        self._by_name: Dict[str, Parameter] = {p.name: p for p in self._parameters}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """The 13 varied parameters in canonical order."""
        return self._parameters

    @property
    def dimensions(self) -> int:
        """Number of varied parameters (13)."""
        return len(self._parameters)

    def parameter(self, name: str) -> Parameter:
        """Look a parameter up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown parameter {name!r}; known: {sorted(self._by_name)}"
            ) from None

    @property
    def raw_size(self) -> int:
        """Size of the unfiltered cross product (about 63 billion)."""
        size = 1
        for parameter in self._parameters:
            size *= parameter.cardinality
        return size

    @property
    def legal_size(self) -> int:
        """Exact number of legal points (about 18 billion).

        The constraints factor into three independent groups —
        (rob, iq, lsq), (width, read ports, write ports) and
        (icache, dcache, l2) — so the count is a product of three small
        enumerations times the cardinalities of the unconstrained
        parameters.
        """
        rob = self.parameter("rob_size").values
        iq = self.parameter("iq_size").values
        lsq = self.parameter("lsq_size").values
        window_group = sum(
            sum(1 for q in iq if q <= r) * sum(1 for s in lsq if s <= r)
            for r in rob
        )

        widths = self.parameter("width").values
        rports = self.parameter("rf_read_ports").values
        wports = self.parameter("rf_write_ports").values
        port_group = sum(
            sum(1 for rp in rports if rp <= 2 * w)
            * sum(1 for wp in wports if wp <= w)
            for w in widths
        )

        icache = self.parameter("icache_kb").values
        dcache = self.parameter("dcache_kb").values
        l2 = self.parameter("l2cache_kb").values
        cache_group = sum(
            sum(1 for c in l2 if c >= 8 * max(i, d))
            for i in icache
            for d in dcache
        )

        unconstrained = 1
        for name in ("rf_size", "gshare_size", "btb_size", "max_branches"):
            unconstrained *= self.parameter(name).cardinality
        return window_group * port_group * cache_group * unconstrained

    # ------------------------------------------------------------------
    # Legality
    # ------------------------------------------------------------------
    def is_on_grid(self, config: Configuration) -> bool:
        """True if every parameter value lies on its Table 1 grid."""
        return all(
            getattr(config, p.name) in p.values for p in self._parameters
        )

    def satisfies_constraints(self, config: Configuration) -> bool:
        """True if the configuration makes architectural sense."""
        return (
            config.rob_size >= config.iq_size
            and config.rob_size >= config.lsq_size
            and config.rf_read_ports <= 2 * config.width
            and config.rf_write_ports <= config.width
            and config.l2cache_kb >= 8 * max(config.icache_kb, config.dcache_kb)
        )

    def is_legal(self, config: Configuration) -> bool:
        """True if the configuration is on the grid and legal."""
        return self.is_on_grid(config) and self.satisfies_constraints(config)

    def validate(self, config: Configuration) -> None:
        """Raise ``ValueError`` with a diagnosis if ``config`` is illegal."""
        for parameter in self._parameters:
            value = getattr(config, parameter.name)
            if value not in parameter.values:
                raise ValueError(
                    f"{parameter.name}={value} is off the grid "
                    f"{parameter.values}"
                )
        if not self.satisfies_constraints(config):
            raise ValueError(f"configuration violates legality constraints: {config}")

    # ------------------------------------------------------------------
    # Baseline and encoding
    # ------------------------------------------------------------------
    @property
    def baseline(self) -> Configuration:
        """The paper's baseline machine (Table 1, last column)."""
        return Configuration(
            **{p.name: p.baseline for p in self._parameters}
        )

    def encode(self, config: Configuration) -> np.ndarray:
        """Encode a configuration as the paper's 13-element feature vector."""
        return np.array(
            [p.encode(getattr(config, p.name)) for p in self._parameters],
            dtype=float,
        )

    def encode_many(self, configs: Iterable[Configuration]) -> np.ndarray:
        """Encode configurations as an (n, 13) matrix.

        Accepts any iterable — list, tuple, generator — without the
        caller having to materialise a fresh list first.
        """
        if not hasattr(configs, "__len__"):
            configs = list(configs)
        if len(configs) == 0:
            return np.empty((0, self.dimensions), dtype=float)
        return np.stack([self.encode(c) for c in configs])

    def decode(self, features: Sequence[float]) -> Configuration:
        """Invert :meth:`encode`, snapping each feature to its grid."""
        if len(features) != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions} features, got {len(features)}"
            )
        values = {
            p.name: p.decode(f) for p, f in zip(self._parameters, features)
        }
        return Configuration(**values)

    # ------------------------------------------------------------------
    # Normalisation helpers used by the ML front end
    # ------------------------------------------------------------------
    def feature_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-feature (min, max) in encoded units, for scaling."""
        lo = np.array(
            [p.encode(p.minimum) for p in self._parameters], dtype=float
        )
        hi = np.array(
            [p.encode(p.maximum) for p in self._parameters], dtype=float
        )
        return lo, hi

    def enumerate(self, limit: int = 1_000_000):
        """Yield every legal configuration of the space, in grid order.

        Intended for *restricted* spaces (see
        :mod:`repro.designspace.restrict`) whose legal size is small
        enough to walk exhaustively; the full Table 1 space is 19
        billion points and is guarded by ``limit``.

        Args:
            limit: Raise ``ValueError`` if the legal size exceeds this,
                as a protection against accidentally iterating the full
                space.

        Yields:
            Legal :class:`Configuration` objects.
        """
        if self.legal_size > limit:
            raise ValueError(
                f"space has {self.legal_size:,} legal points, above the "
                f"enumeration limit of {limit:,}; restrict it first"
            )
        import itertools

        names = [p.name for p in self._parameters]
        grids = [p.values for p in self._parameters]
        for combo in itertools.product(*grids):
            config = Configuration(**dict(zip(names, combo)))
            if self.satisfies_constraints(config):
                yield config

    def neighbours(self, config: Configuration) -> List[Configuration]:
        """All legal single-parameter-step neighbours of ``config``.

        Useful for local search over the space (e.g. sweet-spot hill
        climbing in the examples).
        """
        result: List[Configuration] = []
        for parameter in self._parameters:
            index = parameter.index_of(getattr(config, parameter.name))
            for step in (-1, 1):
                neighbour_index = index + step
                if 0 <= neighbour_index < parameter.cardinality:
                    candidate = config.replace(
                        **{parameter.name: parameter.values[neighbour_index]}
                    )
                    if self.satisfies_constraints(candidate):
                        result.append(candidate)
        return result
