"""Span tracing: nesting, bounds, rollups, chrome export, trace ids."""

import json

import pytest

from repro.obs import (
    Tracer,
    get_tracer,
    new_trace_id,
    scoped_registry,
    scoped_tracer,
    span,
)


class TestSpans:
    def test_span_records_name_and_attrs(self):
        tracer = Tracer()
        with tracer.span("simulate.chunk", program="gzip", chunk=3):
            pass
        (record,) = tracer.spans
        assert record["name"] == "simulate.chunk"
        assert record["attrs"] == {"program": "gzip", "chunk": 3}
        assert record["dur"] >= 0.0

    def test_yielded_record_takes_late_attrs(self):
        tracer = Tracer()
        with tracer.span("simulate.chunk") as record:
            record["attrs"]["attempts"] = 4
        assert tracer.spans[0]["attrs"]["attempts"] == 4

    def test_duration_finalised_only_on_exit(self):
        tracer = Tracer()
        with tracer.span("work") as record:
            assert record["dur"] == 0.0
        assert tracer.spans[0]["dur"] > 0.0

    def test_nesting_tracks_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {record["name"]: record for record in tracer.spans}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # inner exits first, so it is stored first
        assert tracer.spans[0]["name"] == "inner"

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.spans[0]["name"] == "doomed"
        with tracer.span("after"):
            pass
        assert tracer.spans[1]["depth"] == 0  # stack was unwound

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored") as record:
            assert record is None
        tracer.record("ignored", 1.0)
        assert tracer.spans == []

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_record_adopts_external_timing(self):
        tracer = Tracer()
        tracer.record("train.fit", 1.5, program="gzip", worker=True)
        (record,) = tracer.spans
        assert record["dur"] == 1.5
        assert record["attrs"]["worker"] is True

    def test_adopt_folds_worker_spans(self):
        parent, worker = Tracer(), Tracer()
        with worker.span("simulate.chunk", program="art"):
            pass
        parent.adopt(worker.spans)
        assert parent.count("simulate.chunk") == 1


class TestTraceContext:
    def test_every_span_gets_a_span_id(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        (record,) = tracer.spans
        assert len(record["span_id"]) == 16
        assert "trace_id" not in record  # none bound: shape unchanged
        assert "parent_id" not in record

    def test_nested_spans_link_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {record["name"]: record for record in tracer.spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_bind_stamps_remote_context_on_roots(self):
        tracer = Tracer()
        tracer.bind(trace_id="t" * 32, parent_id="p" * 16)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        by_name = {record["name"]: record for record in tracer.spans}
        assert by_name["root"]["trace_id"] == "t" * 32
        assert by_name["root"]["parent_id"] == "p" * 16
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["child"]["trace_id"] == "t" * 32

    def test_context_reports_innermost_open_span(self):
        tracer = Tracer(trace_id="t" * 32)
        assert tracer.context() == {"trace_id": "t" * 32, "span_id": None}
        with tracer.span("open") as record:
            assert tracer.context()["span_id"] == record["span_id"]

    def test_ensure_trace_id_is_sticky(self):
        tracer = Tracer()
        first = tracer.ensure_trace_id()
        assert tracer.ensure_trace_id() == first
        assert len(first) == 32

    def test_new_trace_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()

    def test_adopt_stamps_missing_trace_id(self):
        parent = Tracer(trace_id="t" * 32)
        old_worker = Tracer()  # pre-trace-context peer
        with old_worker.span("simulate.chunk"):
            pass
        new_worker = Tracer(trace_id="u" * 32)
        with new_worker.span("simulate.chunk"):
            pass
        parent.adopt(old_worker.spans)
        parent.adopt(new_worker.spans)
        stamped = [record["trace_id"] for record in parent.spans]
        assert stamped == ["t" * 32, "u" * 32]

    def test_lane_stamped_on_every_span(self):
        tracer = Tracer(lane="worker-1")
        with tracer.span("a"):
            pass
        tracer.record("b", 0.1)
        assert [record["lane"] for record in tracer.spans] == [
            "worker-1", "worker-1",
        ]


class TestTruncationMarkers:
    def test_dropped_spans_counted_in_registry(self):
        with scoped_registry() as registry:
            tracer = Tracer(max_spans=1)
            tracer.record("kept", 0.1)
            tracer.record("dropped", 0.1)
            tracer.record("dropped", 0.1)
            assert tracer.dropped == 2
            assert registry.counter("trace.dropped").value == 2

    def test_summary_marks_truncation(self):
        tracer = Tracer(max_spans=1)
        tracer.record("a", 1.0)
        tracer.record("b", 1.0)
        summary = tracer.summary()
        assert summary["trace.dropped"]["count"] == 2 - 1
        assert summary["trace.dropped"]["total_seconds"] == 0.0

    def test_summary_unmarked_when_nothing_dropped(self):
        tracer = Tracer()
        tracer.record("a", 1.0)
        assert "trace.dropped" not in tracer.summary()

    def test_chrome_export_flags_truncation(self):
        tracer = Tracer(max_spans=1)
        tracer.record("kept", 0.5)
        tracer.record("lost", 0.5)
        events = tracer.to_chrome_events()
        marker = events[-1]
        assert marker["name"] == "trace.truncated"
        assert marker["ph"] == "I"
        assert marker["args"] == {"dropped": 1}
        kept = events[0]
        assert marker["ts"] >= kept["ts"] + kept["dur"] - 1e-6


class TestRollups:
    def test_count_scoped_by_mark(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        mark = tracer.mark()
        with tracer.span("x"):
            pass
        assert tracer.count("x") == 2
        assert tracer.count("x", mark) == 1

    def test_summary_shape(self):
        tracer = Tracer()
        tracer.record("a", 1.0)
        tracer.record("a", 3.0)
        tracer.record("b", 0.5)
        summary = tracer.summary()
        assert summary["a"]["count"] == 2
        assert summary["a"]["total_seconds"] == 4.0
        assert summary["a"]["min_seconds"] == 1.0
        assert summary["a"]["max_seconds"] == 3.0
        assert list(summary) == ["a", "b"]  # sorted by name

    def test_clear(self):
        tracer = Tracer(max_spans=1)
        tracer.record("a", 1.0)
        tracer.record("b", 1.0)  # dropped
        tracer.clear()
        assert tracer.spans == []
        assert tracer.dropped == 0


class TestChromeExport:
    def test_complete_events_in_microseconds(self):
        tracer = Tracer()
        tracer.record("simulate.chunk", 0.25, program="gzip")
        (event,) = tracer.to_chrome_events()
        assert event["ph"] == "X"
        assert event["dur"] == 250000.0
        assert event["args"] == {"program": "gzip"}
        assert event["cat"] == "repro"

    def test_write_chrome_is_valid_json(self, tmp_path):
        tracer = Tracer()
        tracer.record("a", 0.1)
        tracer.record("b", 0.2)
        path = tracer.write_chrome(tmp_path / "trace.json")
        events = json.loads(path.read_text())
        assert [event["name"] for event in events] == ["a", "b"]
        assert not (tmp_path / "trace.json.tmp").exists()

    def test_write_chrome_empty_trace(self, tmp_path):
        path = Tracer().write_chrome(tmp_path / "trace.json")
        assert json.loads(path.read_text()) == []

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.record("a", 0.1)
        path = tracer.write_jsonl(tmp_path / "spans.jsonl")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "a"

    def test_lanes_become_named_process_rows(self):
        parent = Tracer(trace_id="t" * 32)
        for worker_id in ("vm-b", "vm-a"):
            worker = Tracer(lane=worker_id)
            with worker.span("simulate.chunk"):
                pass
            parent.adopt(worker.spans)
        events = parent.to_chrome_events()
        meta = [event for event in events if event["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["vm-a", "vm-b"]
        pids = {m["args"]["name"]: m["pid"] for m in meta}
        spans = [event for event in events if event["ph"] == "X"]
        lanes_seen = sorted(event["pid"] for event in spans)
        assert lanes_seen == sorted(pids.values())
        assert len(set(pids.values())) == 2

    def test_trace_ids_ride_in_args_only_when_present(self):
        tracer = Tracer()
        tracer.record("plain", 0.1, program="gzip")
        tracer.bind(trace_id="t" * 32)
        tracer.record("traced", 0.1)
        plain, traced = (
            event
            for event in tracer.to_chrome_events()
            if event["ph"] == "X"
        )
        assert plain["args"] == {"program": "gzip"}
        assert traced["args"]["trace_id"] == "t" * 32
        assert "span_id" in traced["args"]


class TestGlobalTracer:
    def test_module_level_span_uses_scoped_tracer(self):
        with scoped_tracer() as tracer:
            with span("probe", k=1):
                pass
            assert tracer.count("probe") == 1
        assert get_tracer() is not tracer

    def test_invalid_max_spans(self):
        with pytest.raises(ValueError, match="at least 1"):
            Tracer(max_spans=0)
