"""repro.serve — the prediction serving subsystem.

The paper's predictor answers "what would this machine score?" in
microseconds once trained; this package turns that into operational
infrastructure, dependency-free:

* :class:`ModelRegistry` / :class:`ModelRecord` — versioned, immutable,
  doubly-checksummed on-disk artifacts for fitted predictors, with
  provenance records linking each version back to the run (seed, git
  sha, input checksum) that produced it.
* :class:`PredictionServer` / :func:`serve_forever` — a stdlib-only
  asyncio HTTP service (``repro serve``) that coalesces concurrent
  requests into vectorised batches and caches repeated configurations,
  with ``/healthz`` and ``/metrics`` endpoints, bounded-queue
  backpressure (503 + ``Retry-After``) and graceful SIGTERM drain.
* :class:`PredictionBatcher` / :class:`LRUCache` — the coalescing
  machinery, usable without the HTTP layer.
* :class:`PredictionClient` — a small blocking client for benchmarks,
  smoke tests and scripts.

Exactness is the design anchor: the server predicts through the
batch-composition-invariant forward path
(:meth:`~repro.core.predictor.ArchitectureCentricPredictor.predict_invariant`),
so a served prediction is bit-identical to calling the predictor
directly, regardless of how requests were batched or cached.
"""

from .batching import LRUCache, PredictionBatcher, ServerSaturated
from .client import PredictionClient, ServerError
from .registry import ModelRecord, ModelRegistry, RECORD_SCHEMA
from .server import PredictionServer, serve_forever

__all__ = [
    "LRUCache",
    "ModelRecord",
    "ModelRegistry",
    "PredictionBatcher",
    "PredictionClient",
    "PredictionServer",
    "RECORD_SCHEMA",
    "ServerError",
    "ServerSaturated",
    "serve_forever",
]
