"""Chunked, journalled, resumable simulation campaigns.

A campaign is the cross product of programs and a shared configuration
sample — exactly the shape of the paper's offline builds (T = 512
simulations for each of 26 training programs).  The runner splits every
program's configurations into fixed chunks, simulates each (program,
chunk) *cell* behind the retry/breaker machinery, writes the cell's
metric arrays to its own checksummed ``.npz`` and journals the
completion.  Interrupt the process at any point and a rerun resumes
from the journal: verified cells are loaded from disk, unfinished ones
are re-simulated, and the assembled matrices are bit-identical to an
uninterrupted run.

Backends advertising the program-major ``simulate_suite`` fast path
(see :func:`repro.runtime.backend.supports_suite`) are called once per
chunk across *all* programs instead of once per cell; both the serial
loop and the process pool exploit it automatically and journal exactly
the same cells with exactly the same arrays as the per-cell path.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.designspace.configuration import Configuration
from repro.obs import (
    build_manifest,
    get_logger,
    get_registry,
    get_tracer,
    scoped_registry,
    scoped_tracer,
    span,
    write_manifest,
)
from repro.parallel import resolve_jobs
from repro.sim.interval import BatchResult
from repro.sim.metrics import Metric
from repro.workloads.profile import WorkloadProfile, stable_seed

from .backend import (
    SimulationBackend,
    SimulationError,
    supports_suite,
    validate_batch,
)
from .integrity import array_checksum, file_checksum
from .journal import CampaignJournal
from .retry import CircuitBreaker, CircuitOpenError, RetryPolicy, call_with_retry

if TYPE_CHECKING:  # lazy import keeps runtime free of exploration
    from repro.exploration.dataset import DesignSpaceDataset
    from repro.workloads.suite import BenchmarkSuite

_MANIFEST_VERSION = 1
_METRIC_FIELDS = ("cycles", "energy", "ed", "edd")

_log = get_logger(__name__)


def _simulate_cell_worker(task):
    """Simulate one campaign cell with retries (runs in a worker process).

    Module-level so it pickles.  Each worker gets its *own copy* of the
    backend (pickled with the task) and a private circuit breaker, so a
    stateful backend — e.g. a seeded fault injector — evolves per cell
    rather than across the whole campaign.  Deterministic backends
    produce exactly the arrays the serial loop would.

    Telemetry is captured worker-side into a private registry/tracer
    (the fork-inherited globals would be lost with the process) and
    shipped back as a picklable dict the parent merges, so aggregate
    counters are independent of the worker count.

    Returns:
        (cell id, BatchResult or None on permanent failure, attempts,
        failure message or None, telemetry dict).
    """
    backend, profile, configs, policy, retry_seed, cell, chunk_index = task
    attempts = 0

    def attempt() -> BatchResult:
        nonlocal attempts
        attempts += 1
        return backend.simulate_batch(profile, configs)

    with scoped_registry() as registry, scoped_tracer() as tracer:
        batch, error = None, None
        with tracer.span(
            "simulate.chunk", program=profile.name, chunk=chunk_index
        ) as cell_span:
            try:
                batch = call_with_retry(
                    attempt,
                    policy,
                    seed=retry_seed,
                    breaker=CircuitBreaker(),
                    validate=lambda result: validate_batch(
                        result, f"for cell {cell}"
                    ),
                )
            except SimulationError as failure:
                error = str(failure)
            if cell_span is not None:
                cell_span["attrs"]["attempts"] = attempts
                cell_span["attrs"]["outcome"] = (
                    "ok" if error is None else "failed"
                )
        registry.histogram("campaign.chunk.seconds").observe(
            tracer.spans[-1]["dur"]
        )
        telemetry = {
            "metrics": registry.snapshot(),
            "spans": list(tracer.spans),
        }
    return cell, batch, attempts, error, telemetry


def _simulate_suite_worker(task):
    """Simulate one chunk's cells in a single program-major call.

    The suite twin of :func:`_simulate_cell_worker`, used when the
    backend advertises ``simulate_suite``: every unfinished program at
    one chunk shares a single backend call, so the backend builds the
    chunk's configuration columns once instead of once per program.  A
    retryable failure retries the whole suite call; validation checks
    every program's batch, so a single corrupted batch discards (and
    retries) the chunk exactly as the per-cell path would.

    Returns:
        (chunk index, list of BatchResult (one per profile, in task
        order) or None on permanent failure, attempts, failure message
        or None, telemetry dict).
    """
    backend, profiles, configs, policy, retry_seed, cell_ids, chunk_index = task
    attempts = 0

    def attempt() -> List[BatchResult]:
        nonlocal attempts
        attempts += 1
        return backend.simulate_suite(list(profiles), configs)

    def check(results: List[BatchResult]) -> List[BatchResult]:
        for cell, result in zip(cell_ids, results):
            validate_batch(result, f"for cell {cell}")
        return results

    with scoped_registry() as registry, scoped_tracer() as tracer:
        batches, error = None, None
        with tracer.span(
            "simulate.suite", chunk=chunk_index, programs=len(profiles)
        ) as suite_span:
            try:
                batches = call_with_retry(
                    attempt,
                    policy,
                    seed=retry_seed,
                    breaker=CircuitBreaker(),
                    validate=check,
                )
            except SimulationError as failure:
                error = str(failure)
            if suite_span is not None:
                suite_span["attrs"]["attempts"] = attempts
                suite_span["attrs"]["outcome"] = (
                    "ok" if error is None else "failed"
                )
        registry.histogram("campaign.chunk.seconds").observe(
            tracer.spans[-1]["dur"]
        )
        telemetry = {
            "metrics": registry.snapshot(),
            "spans": list(tracer.spans),
        }
    return chunk_index, batches, attempts, error, telemetry


@dataclass(frozen=True)
class CampaignCell:
    """One (program, chunk) unit of campaign work.

    Attributes:
        cell: The cell id, ``"<program>:<chunk_index>"``.
        profile: The program's workload profile.
        chunk_index: Index into the campaign's chunk bounds.
        start: First configuration index of the chunk (inclusive).
        stop: One past the last configuration index (exclusive).
    """

    cell: str
    profile: WorkloadProfile
    chunk_index: int
    start: int
    stop: int


@dataclass(frozen=True)
class CampaignPlan:
    """The resolved shape of a campaign before any cell is simulated.

    Produced by :meth:`CampaignRunner.plan` and shared by every
    execution strategy — the serial loop, the process pool and the
    distributed coordinator all iterate the same cells against the same
    journal, which is what makes their outputs interchangeable.

    Attributes:
        programs: Program names in campaign order.
        profiles: The matching workload profiles.
        configs: The shared configuration sample.
        chunks: ``(start, stop)`` bounds of each configuration chunk.
        cells: Every (program, chunk) cell in campaign order.
        completed: Journalled cells whose result files still verify,
            mapped to their on-disk paths.
    """

    programs: Tuple[str, ...]
    profiles: Tuple[WorkloadProfile, ...]
    configs: Tuple[Configuration, ...]
    chunks: Tuple[Tuple[int, int], ...]
    cells: Tuple[CampaignCell, ...]
    completed: Dict[str, pathlib.Path]

    @property
    def remaining(self) -> Tuple[CampaignCell, ...]:
        """Cells not yet journalled (the work an executor must run)."""
        return tuple(c for c in self.cells if c.cell not in self.completed)


@dataclass(frozen=True)
class CampaignResult:
    """Assembled matrices plus an accounting of how the run went.

    Attributes:
        programs: Program names in campaign order.
        configs: The shared configuration sample.
        total_cells: Number of (program, chunk) cells in the campaign.
        simulated_cells: Cells simulated by *this* run.
        resumed_cells: Cells restored from the checkpoint journal.
        failed_cells: Cell ids whose retries were exhausted.
        pending_cells: Cell ids never attempted (early stop or an open
            circuit breaker).
        attempts: Backend calls made by this run (retries included).
    """

    programs: Tuple[str, ...]
    configs: Tuple[Configuration, ...]
    total_cells: int
    simulated_cells: int
    resumed_cells: int
    failed_cells: Tuple[str, ...]
    pending_cells: Tuple[str, ...]
    attempts: int
    _values: Dict[Tuple[str, Metric], np.ndarray]

    @property
    def complete(self) -> bool:
        """True when every cell of every program finished."""
        return not self.failed_cells and not self.pending_cells

    def values(self, program: str, metric: Metric) -> np.ndarray:
        """One program's metric vector (NaN where cells are missing)."""
        try:
            return self._values[(program, metric)]
        except KeyError:
            raise KeyError(f"program {program!r} is not in this campaign")

    def matrix(self, metric: Metric) -> np.ndarray:
        """(programs, configurations) metric matrix in campaign order."""
        return np.stack(
            [self.values(program, metric) for program in self.programs]
        )

    def to_dataset(
        self,
        suite: "BenchmarkSuite",
        simulator=None,
    ) -> "DesignSpaceDataset":
        """Hydrate a :class:`DesignSpaceDataset` from the campaign.

        Args:
            suite: The suite the campaign simulated (must contain every
                campaign program).
            simulator: Optional simulator for the dataset.

        Raises:
            ValueError: if the campaign is incomplete or the suite does
                not cover the campaign's programs.
        """
        from repro.exploration.dataset import DesignSpaceDataset

        if not self.complete:
            missing = len(self.failed_cells) + len(self.pending_cells)
            raise ValueError(
                f"cannot build a dataset from an incomplete campaign "
                f"({missing} unfinished cell(s)); resume it first"
            )
        if tuple(suite.programs) != self.programs:
            raise ValueError(
                "suite program list does not match the campaign "
                f"({list(suite.programs)} vs {list(self.programs)})"
            )
        dataset = DesignSpaceDataset(suite, self.configs, simulator)
        for program in self.programs:
            for metric in Metric.all():
                dataset.hydrate(
                    program, metric, self.values(program, metric)
                )
        return dataset


class CampaignRunner:
    """Execute a (programs x configurations) campaign with checkpoints.

    Args:
        backend: Where simulations run (any :class:`SimulationBackend`).
        checkpoint_dir: Directory for the journal, the manifest and the
            per-cell result files.
        chunk_size: Configurations per cell — the unit of retry, of
            checkpointing and of loss on interruption.
        retry_policy: Per-cell retry policy (defaults to
            :class:`RetryPolicy()`).
        breaker_threshold: Consecutive cell failures that trip the
            campaign-wide circuit breaker.
        seed: Base seed of the deterministic retry jitter.
        n_jobs: Worker processes simulating cells concurrently.  1 (the
            default) runs the serial loop; -1 uses one worker per CPU.
            The parallel path requires a picklable backend, gives each
            cell a private circuit breaker (the campaign-wide breaker
            and the ``sleep``/``clock`` hooks apply to the serial loop
            only) and assembles matrices bit-identical to a serial run
            for deterministic backends.
        sleep: Sleep hook shared by backoff delays (injectable for
            tests).
        clock: Monotonic clock hook for the per-call timeout guard.
    """

    def __init__(
        self,
        backend: SimulationBackend,
        checkpoint_dir: Union[str, pathlib.Path],
        chunk_size: int = 128,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 8,
        seed: int = 0,
        n_jobs: Optional[int] = None,
        sleep=None,
        clock=None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.backend = backend
        self.checkpoint_dir = pathlib.Path(checkpoint_dir)
        self.chunk_size = chunk_size
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breaker_threshold = breaker_threshold
        self.seed = seed
        self.n_jobs = resolve_jobs(n_jobs)
        self._sleep = sleep
        self._clock = clock
        self.journal = CampaignJournal(self.checkpoint_dir / "journal.jsonl")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        profiles: Union["BenchmarkSuite", Sequence[WorkloadProfile]],
        configs: Sequence[Configuration],
        resume: bool = True,
        max_cells: Optional[int] = None,
        fail_fast: bool = False,
    ) -> CampaignResult:
        """Run (or resume) the campaign.

        Args:
            profiles: A benchmark suite or an explicit profile sequence.
            configs: The shared configuration sample.
            resume: Reuse a compatible existing checkpoint; ``False``
                refuses to run over one.
            max_cells: Stop after simulating this many cells (leaves the
                rest pending; the test hook for interruption).
            fail_fast: Re-raise the first permanent cell failure instead
                of recording it and moving on.

        Raises:
            ValueError: on an incompatible or unexpected checkpoint.
            SimulationError: with ``fail_fast``, the first permanent
                failure.

        Every run also leaves a ``run_manifest.json`` next to the
        journal — run id, seed, git sha, configuration checksum, cell
        accounting and a per-stage timing summary — so a checkpoint
        directory documents its own provenance.
        """
        plan = self.plan(profiles, configs, resume)
        programs = plan.programs
        chunks = list(plan.chunks)
        cells: List[Tuple[WorkloadProfile, int]] = [
            (cell.profile, cell.chunk_index) for cell in plan.cells
        ]
        completed = plan.completed

        values: Dict[Tuple[str, Metric], np.ndarray] = {
            (program, metric): np.full(len(configs), np.nan)
            for program in programs
            for metric in Metric.all()
        }
        started = time.time()
        tracer = get_tracer()
        trace_start = tracer.mark()
        # One trace id per campaign: process-pool children's spans are
        # adopted trace-id-less and stamped with this on merge, so a
        # local campaign stitches exactly like a distributed one.
        tracer.ensure_trace_id()
        _log.info(
            "campaign start: %d program(s) x %d configuration(s) = "
            "%d cell(s), %d already journalled, n_jobs=%d",
            len(programs), len(configs), len(cells), len(completed),
            self.n_jobs,
            extra={"event": "campaign.start", "cells": len(cells),
                   "journalled": len(completed), "n_jobs": self.n_jobs},
        )
        try:
            with span(
                "campaign.run",
                programs=len(programs),
                configs=len(configs),
                cells=len(cells),
                n_jobs=self.n_jobs,
            ):
                if self.n_jobs > 1:
                    result = self._run_parallel(
                        programs, configs, chunks, cells, completed, values,
                        max_cells, fail_fast,
                    )
                else:
                    result = self._run_serial(
                        programs, configs, chunks, cells, completed, values,
                        max_cells, fail_fast,
                    )
        except BaseException as error:
            # SIGTERM (SystemExit), Ctrl-C (KeyboardInterrupt) or a
            # crash: the checkpoint directory must still document what
            # happened — journalled cells are safe, and the next
            # --resume needs the provenance, not a missing manifest.
            self._write_interrupted_manifest(error, trace_start, started)
            raise
        self._finalize(result, trace_start, started)
        return result

    def plan(
        self,
        profiles: Union["BenchmarkSuite", Sequence[WorkloadProfile]],
        configs: Sequence[Configuration],
        resume: bool = True,
    ) -> CampaignPlan:
        """Resolve the campaign's cells and what the journal already holds.

        Validates the inputs, checks (or creates) the checkpoint
        manifest and verifies journalled cell files against their
        checksums — everything :meth:`run` does before simulating, with
        no simulation.  The distributed coordinator calls this to build
        its work queue over the same checkpoint a serial run would use.

        Raises:
            ValueError: on empty inputs or an incompatible checkpoint.
        """
        profile_list = self._profiles(profiles)
        if not configs:
            raise ValueError("a campaign needs at least one configuration")
        programs = tuple(profile.name for profile in profile_list)
        self._check_manifest(programs, configs, resume)
        chunks = tuple(self._chunk_bounds(len(configs)))
        cells = tuple(
            CampaignCell(
                cell=f"{profile.name}:{index}",
                profile=profile,
                chunk_index=index,
                start=start,
                stop=stop,
            )
            for profile in profile_list
            for index, (start, stop) in enumerate(chunks)
        )
        return CampaignPlan(
            programs=programs,
            profiles=tuple(profile_list),
            configs=tuple(configs),
            chunks=chunks,
            cells=cells,
            completed=self._verified_completed_cells(),
        )

    def _run_serial(
        self,
        programs: Tuple[str, ...],
        configs: Sequence[Configuration],
        chunks: List[Tuple[int, int]],
        cells: List[Tuple[WorkloadProfile, int]],
        completed: Dict[str, pathlib.Path],
        values: Dict[Tuple[str, Metric], np.ndarray],
        max_cells: Optional[int],
        fail_fast: bool,
    ) -> CampaignResult:
        """The in-process cell loop (``n_jobs == 1``).

        When the backend advertises ``simulate_suite``, the first cell
        of each chunk triggers one program-major call covering every
        later program that still needs the chunk; the siblings land in
        a cache and are journalled when the loop reaches them, so the
        journal records exactly the cells, order and arrays of the
        per-cell path while the backend builds each chunk's
        configuration columns only once.
        """
        registry = get_registry()
        breaker = CircuitBreaker(self.breaker_threshold)
        use_suite = supports_suite(self.backend)
        suite_cache: Dict[str, BatchResult] = {}
        simulated, resumed, attempts = 0, 0, 0
        failed: List[str] = []
        pending: List[str] = []

        for position, (profile, chunk_index) in enumerate(cells):
            cell = f"{profile.name}:{chunk_index}"
            start, stop = chunks[chunk_index]
            if cell in completed:
                with span(
                    "resume.chunk", program=profile.name, chunk=chunk_index
                ):
                    batch = self.resume_cell(
                        cell, completed[cell], stop - start
                    )
                self.fill_values(values, profile.name, start, stop, batch)
                resumed += 1
                continue
            if max_cells is not None and simulated >= max_cells:
                pending.extend(
                    f"{p.name}:{i}"
                    for p, i in cells[position:]
                    if f"{p.name}:{i}" not in completed
                )
                break
            chunk_configs = list(configs[start:stop])

            batch = suite_cache.pop(cell, None) if use_suite else None
            if batch is not None:
                try:
                    validate_batch(batch, f"for cell {cell}")
                except SimulationError:
                    batch = None  # distrust the cached copy; re-simulate
            if batch is not None:
                with span(
                    "simulate.chunk", program=profile.name, chunk=chunk_index
                ) as cell_span:
                    if cell_span is not None:
                        cell_span["attrs"]["attempts"] = 0
                        cell_span["attrs"]["outcome"] = "ok"
                self.store_cell(cell, profile.name, chunk_index, batch)
                self.fill_values(values, profile.name, start, stop, batch)
                simulated += 1
                continue

            def attempt() -> BatchResult:
                nonlocal attempts
                attempts += 1
                if not use_suite:
                    return self.backend.simulate_batch(profile, chunk_configs)
                needed = [
                    p
                    for p, i in cells[position:]
                    if i == chunk_index and f"{p.name}:{i}" not in completed
                ]
                results = self.backend.simulate_suite(needed, chunk_configs)
                for other, result in zip(needed, results):
                    suite_cache[f"{other.name}:{chunk_index}"] = result
                return suite_cache.pop(cell)

            before = attempts
            outcome = "ok"
            with span(
                "simulate.chunk", program=profile.name, chunk=chunk_index
            ) as cell_span:
                try:
                    batch = call_with_retry(
                        attempt,
                        self.retry_policy,
                        seed=stable_seed(
                            "campaign-retry", cell, str(self.seed)
                        ),
                        breaker=breaker,
                        validate=lambda result: validate_batch(
                            result, f"for cell {cell}"
                        ),
                        sleep=self._sleep,
                        clock=self._clock,
                    )
                except CircuitOpenError:
                    outcome = "circuit-open"
                except SimulationError as error:
                    if fail_fast:
                        raise
                    outcome = "failed"
                    _log.warning(
                        "cell %s failed permanently: %s", cell, error,
                        extra={"event": "campaign.cell_failed",
                               "cell": cell},
                    )
                if cell_span is not None:
                    cell_span["attrs"]["attempts"] = attempts - before
                    cell_span["attrs"]["outcome"] = outcome
            if cell_span is not None:
                # The span's duration is final only once the block exits.
                registry.histogram("campaign.chunk.seconds").observe(
                    cell_span["dur"]
                )
            if outcome == "circuit-open":
                # The backend is down; stop burning attempts and leave
                # everything from here on pending for a later resume.
                pending.extend(
                    f"{p.name}:{i}"
                    for p, i in cells[position:]
                    if f"{p.name}:{i}" not in completed
                )
                break
            if outcome == "failed":
                failed.append(cell)
                continue
            self.store_cell(cell, profile.name, chunk_index, batch)
            self.fill_values(values, profile.name, start, stop, batch)
            simulated += 1

        return CampaignResult(
            programs=programs,
            configs=tuple(configs),
            total_cells=len(cells),
            simulated_cells=simulated,
            resumed_cells=resumed,
            failed_cells=tuple(failed),
            pending_cells=tuple(pending),
            attempts=attempts,
            _values=values,
        )

    def _run_parallel(
        self,
        programs: Tuple[str, ...],
        configs: Sequence[Configuration],
        chunks: List[Tuple[int, int]],
        cells: List[Tuple[WorkloadProfile, int]],
        completed: Dict[str, pathlib.Path],
        values: Dict[Tuple[str, Metric], np.ndarray],
        max_cells: Optional[int],
        fail_fast: bool,
    ) -> CampaignResult:
        """Fan the unfinished cells out over a process pool.

        Resumed cells are all restored first (the parallel path never
        stops mid-resume), then up to ``max_cells`` unfinished cells are
        dispatched; the rest stay pending.  Suite-capable backends get
        one task per *chunk* (every unfinished program at that chunk in
        a single program-major call); everything else gets one task per
        cell.  Results are journalled as the ordered ``map`` stream
        delivers them, so an interrupted parallel run resumes exactly
        like a serial one.  Each worker ships its telemetry (spans,
        counters, chunk latencies) back with the batch; the parent
        merges everything into the process-global registry/tracer, so
        aggregate metrics match a serial run for deterministic backends.
        """
        registry = get_registry()
        tracer = get_tracer()
        simulated, resumed, attempts = 0, 0, 0
        failed: List[str] = []
        todo: List[Tuple[str, WorkloadProfile, int, int, int]] = []
        for profile, chunk_index in cells:
            cell = f"{profile.name}:{chunk_index}"
            start, stop = chunks[chunk_index]
            if cell in completed:
                with span(
                    "resume.chunk", program=profile.name, chunk=chunk_index
                ):
                    batch = self.resume_cell(
                        cell, completed[cell], stop - start
                    )
                self.fill_values(values, profile.name, start, stop, batch)
                resumed += 1
            else:
                todo.append((cell, profile, chunk_index, start, stop))
        pending: List[str] = []
        if max_cells is not None and len(todo) > max_cells:
            pending = [item[0] for item in todo[max_cells:]]
            todo = todo[:max_cells]
        if todo and supports_suite(self.backend):
            # Program-major fast path: one task per chunk covering every
            # unfinished program at that chunk, so each worker builds
            # the chunk's configuration columns once.  The journal holds
            # the same cells with the same arrays as the per-cell path,
            # just appended chunk-major — resume reads the journal as a
            # set, so the orders are interchangeable.
            groups: Dict[
                int, List[Tuple[str, WorkloadProfile, int, int, int]]
            ] = {}
            for item in todo:
                groups.setdefault(item[2], []).append(item)
            tasks = [
                (
                    self.backend,
                    tuple(item[1] for item in group),
                    list(configs[group[0][3] : group[0][4]]),
                    self.retry_policy,
                    stable_seed(
                        "campaign-retry", f"suite:{chunk_index}",
                        str(self.seed),
                    ),
                    tuple(item[0] for item in group),
                    chunk_index,
                )
                for chunk_index, group in groups.items()
            ]
            workers = min(self.n_jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = pool.map(_simulate_suite_worker, tasks)
                for group, outcome in zip(groups.values(), outcomes):
                    _, batches, suite_attempts, error, telemetry = outcome
                    attempts += suite_attempts
                    registry.merge(telemetry["metrics"])
                    tracer.adopt(telemetry["spans"])
                    if batches is None:
                        if fail_fast:
                            raise SimulationError(error)
                        for cell, *_ in group:
                            _log.warning(
                                "cell %s failed permanently: %s", cell,
                                error,
                                extra={"event": "campaign.cell_failed",
                                       "cell": cell},
                            )
                            failed.append(cell)
                        continue
                    for item, batch in zip(group, batches):
                        cell, profile, chunk_index, start, stop = item
                        self.store_cell(
                            cell, profile.name, chunk_index, batch
                        )
                        self.fill_values(
                            values, profile.name, start, stop, batch
                        )
                        simulated += 1
        elif todo:
            tasks = [
                (
                    self.backend,
                    profile,
                    list(configs[start:stop]),
                    self.retry_policy,
                    stable_seed("campaign-retry", cell, str(self.seed)),
                    cell,
                    chunk_index,
                )
                for cell, profile, chunk_index, start, stop in todo
            ]
            workers = min(self.n_jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = pool.map(_simulate_cell_worker, tasks)
                for item, outcome in zip(todo, outcomes):
                    cell, profile, chunk_index, start, stop = item
                    _, batch, cell_attempts, error, telemetry = outcome
                    attempts += cell_attempts
                    registry.merge(telemetry["metrics"])
                    tracer.adopt(telemetry["spans"])
                    if batch is None:
                        if fail_fast:
                            raise SimulationError(error)
                        _log.warning(
                            "cell %s failed permanently: %s", cell, error,
                            extra={"event": "campaign.cell_failed",
                                   "cell": cell},
                        )
                        failed.append(cell)
                        continue
                    self.store_cell(cell, profile.name, chunk_index, batch)
                    self.fill_values(values, profile.name, start, stop, batch)
                    simulated += 1
        return CampaignResult(
            programs=programs,
            configs=tuple(configs),
            total_cells=len(cells),
            simulated_cells=simulated,
            resumed_cells=resumed,
            failed_cells=tuple(failed),
            pending_cells=tuple(pending),
            attempts=attempts,
            _values=values,
        )

    def _write_interrupted_manifest(
        self, error: BaseException, trace_start: int, started: float
    ) -> None:
        """Best-effort run manifest for a run that did not finish.

        Never raises: the manifest write must not mask the original
        interruption, and a half-created checkpoint directory is still
        created by :func:`write_manifest` itself.
        """
        try:
            manifest = build_manifest(
                run_id=uuid.uuid4().hex,
                seed=self.seed,
                extra={
                    "kind": "campaign",
                    "status": "interrupted",
                    "error": f"{type(error).__name__}: {error}",
                    "checkpoint_dir": str(self.checkpoint_dir),
                    "chunk_size": self.chunk_size,
                    "n_jobs": self.n_jobs,
                    "journal_records": len(self.journal.records()),
                },
                trace_start=trace_start,
                started=started,
            )
            write_manifest(self.run_manifest_path, manifest)
            _log.warning(
                "campaign interrupted (%s); manifest written to %s",
                type(error).__name__, self.run_manifest_path,
                extra={"event": "campaign.interrupted"},
            )
        except Exception:  # noqa: BLE001 - deliberately silent
            pass

    def _finalize(
        self, result: CampaignResult, trace_start: int, started: float
    ) -> None:
        """Record campaign-level metrics and write the run manifest."""
        registry = get_registry()
        registry.counter("campaign.cells.simulated").inc(
            result.simulated_cells
        )
        registry.counter("campaign.cells.resumed").inc(result.resumed_cells)
        registry.counter("campaign.cells.failed").inc(
            len(result.failed_cells)
        )
        registry.counter("campaign.cells.pending").inc(
            len(result.pending_cells)
        )
        registry.counter("campaign.attempts").inc(result.attempts)
        level = (
            "info" if result.complete else "warning"
        )
        getattr(_log, level)(
            "campaign done: %d simulated, %d resumed, %d failed, "
            "%d pending, %d backend attempt(s)",
            result.simulated_cells, result.resumed_cells,
            len(result.failed_cells), len(result.pending_cells),
            result.attempts,
            extra={"event": "campaign.done",
                   "simulated": result.simulated_cells,
                   "resumed": result.resumed_cells,
                   "failed": len(result.failed_cells),
                   "pending": len(result.pending_cells),
                   "attempts": result.attempts},
        )
        manifest = build_manifest(
            run_id=uuid.uuid4().hex,
            seed=self.seed,
            config_checksum=self._config_checksum(result.configs),
            extra={
                "kind": "campaign",
                "status": "complete" if result.complete else "incomplete",
                "checkpoint_dir": str(self.checkpoint_dir),
                "programs": list(result.programs),
                "config_count": len(result.configs),
                "chunk_size": self.chunk_size,
                "n_jobs": self.n_jobs,
                "total_cells": result.total_cells,
                "simulated_cells": result.simulated_cells,
                "resumed_cells": result.resumed_cells,
                "failed_cells": list(result.failed_cells),
                "pending_cells": list(result.pending_cells),
                "attempts": result.attempts,
                "journal_records": len(self.journal.records()),
            },
            trace_start=trace_start,
            started=started,
        )
        write_manifest(self.run_manifest_path, manifest)

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> pathlib.Path:
        return self.checkpoint_dir / "manifest.json"

    @property
    def run_manifest_path(self) -> pathlib.Path:
        """Provenance manifest of the most recent :meth:`run`."""
        return self.checkpoint_dir / "run_manifest.json"

    @property
    def chunks_dir(self) -> pathlib.Path:
        return self.checkpoint_dir / "chunks"

    @staticmethod
    def _profiles(
        profiles: Union["BenchmarkSuite", Sequence[WorkloadProfile]]
    ) -> List[WorkloadProfile]:
        items = list(
            profiles.profiles if hasattr(profiles, "profiles") else profiles
        )
        if not items:
            raise ValueError("a campaign needs at least one program")
        return items

    def _chunk_bounds(self, count: int) -> List[Tuple[int, int]]:
        return [
            (start, min(start + self.chunk_size, count))
            for start in range(0, count, self.chunk_size)
        ]

    def _config_checksum(self, configs: Sequence[Configuration]) -> str:
        matrix = np.array(
            [list(config.values()) for config in configs], dtype=np.int64
        )
        return array_checksum(matrix)

    def _check_manifest(
        self,
        programs: Tuple[str, ...],
        configs: Sequence[Configuration],
        resume: bool,
    ) -> None:
        manifest = {
            "version": _MANIFEST_VERSION,
            "programs": list(programs),
            "config_count": len(configs),
            "chunk_size": self.chunk_size,
            "configs_checksum": self._config_checksum(configs),
        }
        if self.manifest_path.exists():
            if not resume:
                raise ValueError(
                    f"checkpoint directory {self.checkpoint_dir} already "
                    "holds a campaign; resume it or start in a fresh "
                    "directory"
                )
            try:
                existing = json.loads(
                    self.manifest_path.read_text(encoding="utf-8")
                )
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"corrupt campaign manifest {self.manifest_path}"
                ) from error
            if existing != manifest:
                raise ValueError(
                    "checkpoint directory belongs to a different campaign "
                    "(programs, configurations or chunk size changed)"
                )
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
        )

    def _verified_completed_cells(self) -> Dict[str, pathlib.Path]:
        """Journalled cells whose result files still pass their checksum."""
        completed: Dict[str, pathlib.Path] = {}
        for record in self.journal.records():
            cell = record.get("cell")
            filename = record.get("file")
            checksum = record.get("checksum")
            if not (cell and filename and checksum):
                continue
            path = self.checkpoint_dir / filename
            if not path.exists() or file_checksum(path) != checksum:
                continue  # damaged or missing: re-simulate this cell
            completed[cell] = path
        return completed

    def _cell_path(self, program: str, chunk_index: int) -> pathlib.Path:
        return self.chunks_dir / f"{program}__{chunk_index:05d}.npz"

    def store_cell(
        self, cell: str, program: str, chunk_index: int, batch: BatchResult
    ) -> None:
        """Write the cell atomically, then journal it with its checksum.

        The arrays go to a scratch file first, are fsynced, and only
        then renamed over the final name — a crash at any point leaves
        either no cell file or a complete one, never a torn ``.npz``
        that a later ``--resume`` would have to distrust.  (The journal
        checksum would catch a torn file anyway; the atomic write means
        it never has to.)
        """
        self.chunks_dir.mkdir(parents=True, exist_ok=True)
        path = self._cell_path(program, chunk_index)
        # numpy appends ".npz" to names lacking it, so the scratch file
        # must already end in ".npz" for the rename below to find it.
        scratch = path.with_name(path.stem + ".tmp.npz")
        try:
            np.savez_compressed(
                scratch,
                **{
                    field: getattr(batch, field) for field in _METRIC_FIELDS
                },
            )
            with open(scratch, "rb") as handle:
                os.fsync(handle.fileno())
            os.replace(scratch, path)
        except BaseException:
            scratch.unlink(missing_ok=True)
            raise
        self.journal.append(
            {
                "cell": cell,
                "file": str(path.relative_to(self.checkpoint_dir)),
                "checksum": file_checksum(path),
            }
        )
        _log.debug(
            "journalled cell %s -> %s", cell, path.name,
            extra={"event": "campaign.cell_stored", "cell": cell},
        )

    def resume_cell(
        self, cell: str, path: pathlib.Path, expected: int
    ) -> BatchResult:
        """Load a journalled cell back from disk, checking its shape.

        Shared by the serial loop, the process-parallel loop and the
        distributed coordinator, so every executor restores checkpoints
        identically.
        """
        batch = self._load_cell(path)
        if len(batch) != expected:
            raise ValueError(
                f"checkpointed cell {cell} holds {len(batch)} "
                f"configurations, expected {expected}"
            )
        return batch

    def _load_cell(self, path: pathlib.Path) -> BatchResult:
        with np.load(path, allow_pickle=False) as archive:
            return BatchResult(
                **{field: archive[field] for field in _METRIC_FIELDS}
            )

    @staticmethod
    def fill_values(
        values: Dict[Tuple[str, Metric], np.ndarray],
        program: str,
        start: int,
        stop: int,
        batch: BatchResult,
    ) -> None:
        """Write one cell's metric arrays into the campaign matrices."""
        for metric in Metric.all():
            values[(program, metric)][start:stop] = batch.metric(metric)
