"""Tests for the functional set-associative caches."""

import pytest

from repro.sim.pipeline import SetAssociativeCache, build_hierarchy


def _tiny(assoc=2, sets_lines=8):
    """A 8-line, 32B-line cache for hand-traceable scenarios."""
    return SetAssociativeCache(
        "T", sets_lines * 32, 32, assoc, hit_latency=1,
        next_level=None, memory_latency=100,
    )


class TestBasics:
    def test_first_access_misses(self):
        cache = _tiny()
        assert cache.access(0) == 101
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = _tiny()
        cache.access(0)
        assert cache.access(0) == 1
        assert cache.stats.misses == 1
        assert cache.stats.accesses == 2

    def test_same_line_hits(self):
        cache = _tiny()
        cache.access(0)
        assert cache.access(31) == 1  # same 32-byte line

    def test_different_line_misses(self):
        cache = _tiny()
        cache.access(0)
        assert cache.access(32) == 101

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            _tiny().access(-1)

    def test_miss_ratio(self):
        cache = _tiny()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_ratio == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        cache = _tiny()
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(0) == 1  # still cached


class TestLru:
    def test_lru_eviction_order(self):
        # 4 sets x 2 ways; addresses mapping to set 0 are multiples of
        # 4 lines = 128 bytes.
        cache = _tiny(assoc=2, sets_lines=8)
        a, b, c = 0, 128, 256  # all in set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.lookup(a)
        assert not cache.lookup(b)
        assert cache.lookup(c)

    def test_direct_mapped_conflicts(self):
        cache = _tiny(assoc=1, sets_lines=8)
        cache.access(0)
        cache.access(8 * 32)  # same set, conflicting tag
        assert not cache.lookup(0)

    def test_full_associativity_capped_at_lines(self):
        cache = SetAssociativeCache("T", 4 * 32, 32, 16, 1)
        assert cache.associativity == 4


class TestValidation:
    def test_capacity_below_line_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("T", 16, 32, 1, 1)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("T", 1024, 48, 1, 1)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("T", 1024, 32, 0, 1)


class TestHierarchy:
    def test_build_hierarchy_links_levels(self):
        caches = build_hierarchy(8, 8, 256)
        assert caches["l1i"].next_level is caches["l2"]
        assert caches["l1d"].next_level is caches["l2"]
        assert caches["l2"].next_level is None

    def test_l1_miss_l2_hit_latency(self):
        caches = build_hierarchy(8, 8, 256, l1_latency=2, l2_latency=12,
                                 memory_latency=200)
        # Warm the L2 through the D-cache, then evict from L1 only.
        caches["l1d"].access(0)
        first = caches["l1d"].access(0)
        assert first == 2
        # Thrash L1 set 0 while L2 keeps the line.
        l1_sets = caches["l1d"].sets
        line = caches["l1d"].line_bytes
        for way in range(1, 4):
            caches["l1d"].access(way * l1_sets * line)
        latency = caches["l1d"].access(0)
        assert latency == 2 + 12  # L1 miss, L2 hit

    def test_memory_latency_charged_at_bottom(self):
        caches = build_hierarchy(8, 8, 256, l1_latency=2, l2_latency=12,
                                 memory_latency=200)
        assert caches["l1d"].access(0) == 2 + 12 + 200
