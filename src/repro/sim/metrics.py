"""Target metrics: cycles, energy, ED and EDD.

The paper evaluates four targets (Section 3.2): cycles, energy (nJ), the
energy-delay product ED = energy x cycles, and the energy-delay-squared
product EDD = energy x cycles^2.  ED weighs energy and delay equally;
EDD emphasises performance — both are "lower is better" efficiency
metrics.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

import numpy as np


class Metric(Enum):
    """The four target metrics of the paper."""

    CYCLES = "cycles"
    ENERGY = "energy"
    ED = "ed"
    EDD = "edd"

    @classmethod
    def all(cls) -> tuple["Metric", ...]:
        """All four metrics in the paper's order of presentation."""
        return (cls.CYCLES, cls.ENERGY, cls.ED, cls.EDD)

    @classmethod
    def from_name(cls, name: str) -> "Metric":
        """Look up a metric by its string name (case-insensitive)."""
        try:
            return cls(name.lower())
        except ValueError:
            raise ValueError(
                f"unknown metric {name!r}; known: "
                f"{[m.value for m in cls]}"
            ) from None


def derive_metrics(cycles, energy) -> Dict[Metric, np.ndarray]:
    """Compute all four metrics from cycles and energy.

    Accepts scalars or arrays (broadcast together); values must be
    positive, since all four metrics are physical quantities.
    """
    cycles = np.asarray(cycles, dtype=float)
    energy = np.asarray(energy, dtype=float)
    if np.any(cycles <= 0) or np.any(energy <= 0):
        raise ValueError("cycles and energy must be positive")
    return {
        Metric.CYCLES: cycles,
        Metric.ENERGY: energy,
        Metric.ED: energy * cycles,
        Metric.EDD: energy * cycles * cycles,
    }
