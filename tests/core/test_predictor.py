"""Tests for the architecture-centric predictor."""

import numpy as np
import pytest

from repro.core import ArchitectureCentricPredictor, ProgramSpecificPredictor
from repro.ml import correlation, rmae
from repro.sim import Metric


@pytest.fixture(scope="module")
def fitted(cycles_pool, small_dataset):
    """Predictor for applu built from the other five programs."""
    models = cycles_pool.models(exclude=["applu"])
    predictor = ArchitectureCentricPredictor(models)
    response_idx, holdout_idx = small_dataset.split_indices(32, seed=21)
    predictor.fit_responses(
        small_dataset.subset_configs(response_idx),
        small_dataset.subset_values("applu", Metric.CYCLES, response_idx),
    )
    return predictor, holdout_idx


class TestPrediction:
    def test_beats_the_trivial_mean_model(self, fitted, small_dataset):
        predictor, holdout = fitted
        predictions = predictor.predict(small_dataset.subset_configs(holdout))
        actual = small_dataset.subset_values("applu", Metric.CYCLES, holdout)
        mean_error = rmae(np.full_like(actual, actual.mean()), actual)
        assert rmae(predictions, actual) < 0.6 * mean_error

    def test_tracks_the_space_shape(self, fitted, small_dataset):
        predictor, holdout = fitted
        predictions = predictor.predict(small_dataset.subset_configs(holdout))
        actual = small_dataset.subset_values("applu", Metric.CYCLES, holdout)
        assert correlation(predictions, actual) > 0.8

    def test_training_error_below_testing_error_scale(self, fitted):
        predictor, _ = fitted
        assert 0.0 <= predictor.training_error < 30.0

    def test_predict_one(self, fitted, space):
        predictor, _ = fitted
        assert predictor.predict_one(space.baseline) > 0

    def test_program_weights_expose_combination(self, fitted):
        predictor, _ = fitted
        weights = predictor.program_weights
        assert set(weights) == {"gzip", "crafty", "swim", "mesa", "art"}

    def test_evaluate_helper(self, fitted, small_dataset):
        predictor, holdout = fitted
        scores = predictor.evaluate(
            small_dataset.subset_configs(holdout),
            small_dataset.subset_values("applu", Metric.CYCLES, holdout),
        )
        assert {"rmae", "correlation"} == set(scores)


class TestValidation:
    def test_no_models_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureCentricPredictor([])

    def test_mixed_metrics_rejected(self, cycles_pool, small_dataset):
        other = ProgramSpecificPredictor(
            small_dataset.simulator.space, Metric.ENERGY, "x"
        )
        with pytest.raises(ValueError, match="same metric"):
            ArchitectureCentricPredictor(
                [cycles_pool.model("gzip"), other]
            )

    def test_predict_before_fit_rejected(self, cycles_pool, space):
        predictor = ArchitectureCentricPredictor(
            cycles_pool.models(exclude=["applu"])
        )
        with pytest.raises(RuntimeError, match="responses"):
            predictor.predict([space.baseline])

    def test_training_error_before_fit_rejected(self, cycles_pool):
        predictor = ArchitectureCentricPredictor(
            cycles_pool.models(exclude=["applu"])
        )
        with pytest.raises(RuntimeError):
            predictor.training_error

    def test_too_few_responses_rejected(self, cycles_pool, small_dataset, space):
        predictor = ArchitectureCentricPredictor(
            cycles_pool.models(exclude=["applu"])
        )
        with pytest.raises(ValueError, match="two responses"):
            predictor.fit_responses([space.baseline], np.array([1.0]))

    def test_non_positive_responses_rejected(self, cycles_pool, space):
        predictor = ArchitectureCentricPredictor(
            cycles_pool.models(exclude=["applu"])
        )
        configs = [space.baseline, space.baseline.replace(width=8)]
        with pytest.raises(ValueError, match="positive"):
            predictor.fit_responses(configs, np.array([1.0, 0.0]))

    def test_mismatched_lengths_rejected(self, cycles_pool, space):
        predictor = ArchitectureCentricPredictor(
            cycles_pool.models(exclude=["applu"])
        )
        with pytest.raises(ValueError, match="sample count"):
            predictor.fit_responses([space.baseline], np.array([1.0, 2.0]))


class TestInvariances:
    def test_scale_equivariance(self, cycles_pool, small_dataset):
        """Multiplying all responses by a constant multiplies every
        prediction by the same constant (the log-space linear combiner
        absorbs it into the intercept)."""
        models = cycles_pool.models(exclude=["applu"])
        idx, rest = small_dataset.split_indices(32, seed=91)
        configs = small_dataset.subset_configs(idx)
        values = small_dataset.subset_values("applu", Metric.CYCLES, idx)
        probe = small_dataset.subset_configs(rest[:20])

        base = ArchitectureCentricPredictor(models)
        base.fit_responses(configs, values)
        scaled = ArchitectureCentricPredictor(models)
        scaled.fit_responses(configs, values * 7.5)

        ratio = scaled.predict(probe) / base.predict(probe)
        assert np.allclose(ratio, 7.5, rtol=1e-6)

    def test_response_order_irrelevant(self, cycles_pool, small_dataset):
        models = cycles_pool.models(exclude=["applu"])
        idx, rest = small_dataset.split_indices(24, seed=92)
        configs = small_dataset.subset_configs(idx)
        values = small_dataset.subset_values("applu", Metric.CYCLES, idx)
        probe = small_dataset.subset_configs(rest[:10])

        forward = ArchitectureCentricPredictor(models)
        forward.fit_responses(configs, values)
        backward = ArchitectureCentricPredictor(models)
        backward.fit_responses(configs[::-1], values[::-1])
        assert np.allclose(
            forward.predict(probe), backward.predict(probe), rtol=1e-8
        )

    def test_duplicate_responses_do_not_crash(self, cycles_pool,
                                              small_dataset):
        models = cycles_pool.models(exclude=["applu"])
        idx, _ = small_dataset.split_indices(8, seed=93)
        configs = small_dataset.subset_configs(idx) * 2  # duplicated
        values = np.tile(
            small_dataset.subset_values("applu", Metric.CYCLES, idx), 2
        )
        predictor = ArchitectureCentricPredictor(models)
        predictor.fit_responses(configs, values)
        assert predictor.training_error >= 0
