"""repro.distrib — multi-host campaign execution over plain TCP.

The paper's offline builds (T = 512 simulations x 26 programs) are
embarrassingly parallel across (program, chunk) cells, and this package
shards them across hosts with nothing beyond the standard library: a
**coordinator** owns the work queue, the lease table and the checkpoint
journal; **workers** connect over a length-prefixed, versioned,
checksummed JSON protocol, lease cells, simulate them and ship the
metric arrays back.

The design contracts:

* **Bit-identical to serial.**  Workers draw the same deterministic
  per-cell retry seeds as the serial loop and results are journalled
  through the same checksummed artifact layer, so a campaign's matrices
  are identical regardless of worker count, interleaving, or whether it
  ran serial, process-parallel or distributed.
* **Resume is transparent.**  The coordinator plans against the same
  journal a serial run writes; any mode can resume any other mode's
  checkpoint.
* **Failure is routine.**  Dead workers (dropped connections) and hung
  workers (missed lease deadlines) have their leases reclaimed and
  requeued with deterministic backoff; repeatedly failing workers are
  circuit-broken out of the campaign; stale results are discarded, not
  double-journalled.
* **The fleet is elastic.**  Workers advertise capabilities at HELLO
  and are leased capacity-weighted task bundles; late joiners are
  admitted mid-campaign, leavers drain cleanly, stragglers have their
  leases stolen speculatively (first result wins), and a seeded chaos
  harness replays exactly these failure modes on demand.

Public surface:

* :class:`CampaignCoordinator` / :class:`CoordinatorStats` — the
  serving side (``repro coordinator``), plus :func:`fetch_status` /
  :func:`fetch_status_async` (``repro status``).
* :class:`CampaignWorker` / :class:`RepeatBackend` /
  :class:`CoordinatorLost` — the executing side (``repro worker``).
* :class:`FleetMembership` / :class:`WorkerCapabilities` /
  :func:`detect_capabilities` — the roster and capacity model.
* :class:`ChaosPlan` / :func:`run_chaos_campaign` — the deterministic
  failure-injection harness (``repro chaos``).
* :mod:`~repro.distrib.protocol` — framing, integrity, versioning.
* :mod:`~repro.distrib.wire` — exact-round-trip JSON codecs.
"""

from .chaos import (
    ChaosEvent,
    ChaosPlan,
    ChaosRunReport,
    ChaosWireFilter,
    run_chaos_campaign,
    run_chaos_campaign_sync,
)
from .coordinator import (
    CampaignCoordinator,
    CoordinatorStats,
    fetch_status,
    fetch_status_async,
)
from .membership import (
    FleetMembership,
    WorkerCapabilities,
    detect_capabilities,
    measure_calibration,
)
from .protocol import (
    MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_message,
    write_message,
)
from .wire import (
    batch_checksum,
    batch_from_wire,
    batch_to_wire,
    configs_from_wire,
    configs_to_wire,
    policy_from_wire,
    policy_to_wire,
    profile_from_wire,
    profile_to_wire,
)
from .worker import CampaignWorker, CoordinatorLost, RepeatBackend

__all__ = [
    "MAX_FRAME_BYTES",
    "MIN_PROTOCOL_VERSION",
    "PROTOCOL_VERSION",
    "CampaignCoordinator",
    "CampaignWorker",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosRunReport",
    "ChaosWireFilter",
    "CoordinatorLost",
    "CoordinatorStats",
    "FleetMembership",
    "ProtocolError",
    "RepeatBackend",
    "WorkerCapabilities",
    "batch_checksum",
    "batch_from_wire",
    "batch_to_wire",
    "configs_from_wire",
    "configs_to_wire",
    "decode_frame",
    "detect_capabilities",
    "encode_frame",
    "fetch_status",
    "fetch_status_async",
    "measure_calibration",
    "policy_from_wire",
    "policy_to_wire",
    "profile_from_wire",
    "profile_to_wire",
    "read_message",
    "run_chaos_campaign",
    "run_chaos_campaign_sync",
    "write_message",
]
