"""Experiment runners: one per table/figure of the paper.

Each function reproduces the measurement behind one artefact of the
paper's evaluation and returns a plain-data result object; the benchmark
harnesses in ``benchmarks/`` call these and print the paper's rows or
series.  All runners accept scale parameters (sample size, repeats) so
they can run at smoke-test scale in CI and at paper scale when asked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.crossval import (
    CrossValidationResult,
    cross_suite,
    evaluate_on_program,
    leave_one_out,
    program_specific_score,
)
from repro.core.predictor import ArchitectureCentricPredictor
from repro.core.program_model import ProgramSpecificPredictor
from repro.core.training import TrainingPool
from repro.ml.metrics import correlation, rmae
from repro.sim.metrics import Metric
from repro.workloads.profile import stable_seed

from .dataset import DesignSpaceDataset


# ----------------------------------------------------------------------
# Figure 1 — motivation: applu energy, program-specific vs ours
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MotivationResult:
    """Fig. 1 data: the space sorted by actual value, both predictions."""

    program: str
    metric: Metric
    actual: np.ndarray
    program_specific: np.ndarray
    architecture_centric: np.ndarray

    @property
    def program_specific_rmae(self) -> float:
        return rmae(self.program_specific, self.actual)

    @property
    def architecture_centric_rmae(self) -> float:
        return rmae(self.architecture_centric, self.actual)


def motivation_experiment(
    dataset: DesignSpaceDataset,
    program: str = "applu",
    metric: Metric = Metric.ENERGY,
    responses: int = 32,
    training_size: int = 512,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> MotivationResult:
    """Reproduce Fig. 1: both models given the same 32 simulations.

    The program-specific predictor trains on the 32 simulations; the
    architecture-centric predictor uses them as responses on top of
    offline training on every other program of the suite.
    """
    response_idx, holdout_idx = dataset.split_indices(
        responses, seed=stable_seed("motivation", program, str(seed))
    )
    response_configs = dataset.subset_configs(response_idx)
    response_values = dataset.subset_values(program, metric, response_idx)
    holdout_configs = dataset.subset_configs(holdout_idx)
    actual = dataset.subset_values(program, metric, holdout_idx)

    specific = ProgramSpecificPredictor(
        space=dataset.simulator.space,
        metric=metric,
        program=program,
        seed=stable_seed("motivation-ps", program, str(seed)),
    ).fit(response_configs, response_values)

    pool = TrainingPool(
        dataset, metric, training_size=training_size,
        seed=stable_seed("motivation-pool", str(seed)), n_jobs=n_jobs,
    )
    centric = ArchitectureCentricPredictor(pool.models(exclude=[program]))
    centric.fit_responses(response_configs, response_values)

    order = np.argsort(actual)
    return MotivationResult(
        program=program,
        metric=metric,
        actual=actual[order],
        program_specific=specific.predict(holdout_configs)[order],
        architecture_centric=centric.predict(holdout_configs)[order],
    )


# ----------------------------------------------------------------------
# Figures 9/10 — model parameter sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One point of an accuracy-vs-budget sweep."""

    budget: int
    rmae_mean: float
    rmae_std: float
    correlation_mean: float
    correlation_std: float


@dataclass(frozen=True)
class SweepResult:
    """A sweep series for one metric."""

    metric: Metric
    points: Tuple[SweepPoint, ...]

    def budgets(self) -> List[int]:
        """The swept budget values, in sweep order."""
        return [point.budget for point in self.points]


def training_size_sweep(
    dataset: DesignSpaceDataset,
    metric: Metric,
    sizes: Sequence[int] = (16, 32, 64, 128, 256, 512),
    repeats: int = 3,
    seed: int = 0,
    programs: Optional[Sequence[str]] = None,
) -> SweepResult:
    """Fig. 9: program-specific accuracy vs training-set size T.

    Averaged over programs and repeats; the paper's conclusion is the
    plateau at T = 512.
    """
    targets = list(programs) if programs is not None else list(dataset.programs)
    points = []
    for size in sizes:
        errors, correlations = [], []
        for repeat in range(repeats):
            for program in targets:
                score = program_specific_score(
                    dataset,
                    program,
                    metric,
                    training_size=size,
                    seed=stable_seed("fig9", program, str(size), str(repeat), str(seed)),
                )
                errors.append(score.rmae)
                correlations.append(score.correlation)
        points.append(
            SweepPoint(
                budget=size,
                rmae_mean=float(np.mean(errors)),
                rmae_std=float(np.std(errors)),
                correlation_mean=float(np.mean(correlations)),
                correlation_std=float(np.std(correlations)),
            )
        )
    return SweepResult(metric=metric, points=tuple(points))


def response_sweep(
    dataset: DesignSpaceDataset,
    metric: Metric,
    counts: Sequence[int] = (4, 8, 16, 32, 64, 128),
    training_size: int = 512,
    repeats: int = 3,
    seed: int = 0,
    programs: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> SweepResult:
    """Fig. 10: architecture-centric accuracy vs response count R.

    Leave-one-out per program; the paper's conclusion is the plateau at
    R = 32.
    """
    targets = list(programs) if programs is not None else list(dataset.programs)
    pools = [
        TrainingPool(
            dataset, metric, training_size=training_size,
            seed=stable_seed("fig10-pool", str(repeat), str(seed)),
            n_jobs=n_jobs,
        )
        for repeat in range(repeats)
    ]
    points = []
    for count in counts:
        errors, correlations = [], []
        for repeat, pool in enumerate(pools):
            for program in targets:
                score = evaluate_on_program(
                    pool.models(exclude=[program]),
                    dataset,
                    program,
                    responses=count,
                    seed=stable_seed("fig10", program, str(count), str(repeat), str(seed)),
                )
                errors.append(score.rmae)
                correlations.append(score.correlation)
        points.append(
            SweepPoint(
                budget=count,
                rmae_mean=float(np.mean(errors)),
                rmae_std=float(np.std(errors)),
                correlation_mean=float(np.mean(correlations)),
                correlation_std=float(np.std(correlations)),
            )
        )
    return SweepResult(metric=metric, points=tuple(points))


# ----------------------------------------------------------------------
# Figure 13 — comparison against the program-specific predictor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComparisonResult:
    """Fig. 13 data: both models' accuracy vs simulation budget."""

    metric: Metric
    architecture_centric: SweepResult
    program_specific: SweepResult

    def crossover_budget(self) -> Optional[int]:
        """Smallest budget where the program-specific rmae matches ours
        at 32 responses, or ``None`` if it never does in the sweep."""
        ours_at_32 = next(
            (
                p.rmae_mean
                for p in self.architecture_centric.points
                if p.budget == 32
            ),
            None,
        )
        if ours_at_32 is None:
            return None
        for point in self.program_specific.points:
            if point.rmae_mean <= ours_at_32:
                return point.budget
        return None


def comparison_sweep(
    dataset: DesignSpaceDataset,
    metric: Metric,
    budgets: Sequence[int] = (8, 16, 32, 64, 128, 256, 512),
    training_size: int = 512,
    repeats: int = 3,
    seed: int = 0,
    programs: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> ComparisonResult:
    """Fig. 13: same simulation budget as responses (ours) vs training
    data (program-specific baseline)."""
    ours = response_sweep(
        dataset,
        metric,
        counts=budgets,
        training_size=training_size,
        repeats=repeats,
        seed=seed,
        programs=programs,
        n_jobs=n_jobs,
    )
    targets = list(programs) if programs is not None else list(dataset.programs)
    points = []
    for budget in budgets:
        errors, correlations = [], []
        for repeat in range(repeats):
            for program in targets:
                score = program_specific_score(
                    dataset,
                    program,
                    metric,
                    training_size=budget,
                    seed=stable_seed("fig13", program, str(budget), str(repeat), str(seed)),
                )
                errors.append(score.rmae)
                correlations.append(score.correlation)
        points.append(
            SweepPoint(
                budget=budget,
                rmae_mean=float(np.mean(errors)),
                rmae_std=float(np.std(errors)),
                correlation_mean=float(np.mean(correlations)),
                correlation_std=float(np.std(correlations)),
            )
        )
    return ComparisonResult(
        metric=metric,
        architecture_centric=ours,
        program_specific=SweepResult(metric=metric, points=tuple(points)),
    )


# ----------------------------------------------------------------------
# Figure 14 — cost of offline training
# ----------------------------------------------------------------------
def training_programs_sweep(
    dataset: DesignSpaceDataset,
    metric: Metric,
    pool_sizes: Sequence[int] = (2, 5, 10, 15, 20),
    training_size: int = 512,
    responses: int = 32,
    repeats: int = 3,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> SweepResult:
    """Fig. 14: accuracy vs number of offline training programs.

    For each pool size, training programs are drawn at random (as in the
    paper) and every remaining program is predicted.
    """
    programs = list(dataset.programs)
    if max(pool_sizes) >= len(programs):
        raise ValueError(
            "pool sizes must leave at least one program to predict"
        )
    pool = TrainingPool(
        dataset, metric, training_size=training_size,
        seed=stable_seed("fig14-pool", str(seed)), n_jobs=n_jobs,
    )
    points = []
    for size in pool_sizes:
        errors, correlations = [], []
        for repeat in range(repeats):
            rng = np.random.default_rng(
                stable_seed("fig14-pick", str(size), str(repeat), str(seed))
            )
            chosen = list(rng.choice(programs, size=size, replace=False))
            models = pool.models(include=chosen)
            for program in programs:
                if program in chosen:
                    continue
                score = evaluate_on_program(
                    models,
                    dataset,
                    program,
                    responses=responses,
                    seed=stable_seed("fig14", program, str(size), str(repeat), str(seed)),
                )
                errors.append(score.rmae)
                correlations.append(score.correlation)
        points.append(
            SweepPoint(
                budget=size,
                rmae_mean=float(np.mean(errors)),
                rmae_std=float(np.std(errors)),
                correlation_mean=float(np.mean(correlations)),
                correlation_std=float(np.std(correlations)),
            )
        )
    return SweepResult(metric=metric, points=tuple(points))


# ----------------------------------------------------------------------
# Robustness sweeps (ablations A4/A8): drift and response noise
# ----------------------------------------------------------------------
def noise_sweep(
    dataset: DesignSpaceDataset,
    metric: Metric,
    noise_levels: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    training_size: int = 512,
    responses: int = 32,
    seed: int = 0,
    programs: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> SweepResult:
    """Ablation A8: accuracy vs multiplicative response noise.

    Each response is perturbed by lognormal noise of the given sigma
    before fitting, modelling SimPoint-class measurement error.  The
    ``budget`` field of each sweep point carries the noise level in
    percent.
    """
    targets = list(programs) if programs is not None else list(dataset.programs)
    pool = TrainingPool(
        dataset, metric, training_size=training_size,
        seed=stable_seed("noise-pool", str(seed)), n_jobs=n_jobs,
    )
    points = []
    for noise in noise_levels:
        if noise < 0:
            raise ValueError("noise levels must be non-negative")
        errors, correlations = [], []
        for program in targets:
            point_seed = stable_seed("noise", program, str(noise), str(seed))
            rng = np.random.default_rng(point_seed)
            response_idx, holdout_idx = dataset.split_indices(
                responses, seed=point_seed
            )
            clean = dataset.subset_values(program, metric, response_idx)
            noisy = clean * np.exp(rng.normal(0.0, noise, size=clean.shape))
            predictor = ArchitectureCentricPredictor(
                pool.models(exclude=[program])
            )
            predictor.fit_responses(
                dataset.subset_configs(response_idx), noisy
            )
            predictions = predictor.predict(
                dataset.subset_configs(holdout_idx)
            )
            actual = dataset.subset_values(program, metric, holdout_idx)
            errors.append(rmae(predictions, actual))
            correlations.append(correlation(predictions, actual))
        points.append(
            SweepPoint(
                budget=int(round(noise * 100)),
                rmae_mean=float(np.mean(errors)),
                rmae_std=float(np.std(errors)),
                correlation_mean=float(np.mean(correlations)),
                correlation_std=float(np.std(correlations)),
            )
        )
    return SweepResult(metric=metric, points=tuple(points))


def drift_sweep(
    dataset: DesignSpaceDataset,
    metric: Metric,
    drifts: Sequence[float] = (0.0, 0.5, 1.0),
    programs_per_level: int = 5,
    training_size: int = 512,
    responses: int = 32,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> SweepResult:
    """Ablation A4: accuracy vs workload drift off the training suite.

    Random programs are generated at each drift level and predicted
    from the dataset-suite-trained pool.  The ``budget`` field carries
    the drift level in percent.
    """
    from repro.workloads.synthetic import synthetic_suite

    pool = TrainingPool(
        dataset, metric, training_size=training_size,
        seed=stable_seed("drift-pool", str(seed)), n_jobs=n_jobs,
    )
    models = pool.models()
    points = []
    for drift in drifts:
        suite = synthetic_suite(
            programs_per_level, seed=seed + int(drift * 1000), drift=drift,
            name=f"drift{int(drift * 100):03d}",
        )
        drifted = DesignSpaceDataset(
            suite, dataset.configs, dataset.simulator
        )
        errors, correlations = [], []
        for program in suite.programs:
            score = evaluate_on_program(
                models, drifted, program, responses=responses,
                seed=stable_seed("drift", program, str(drift), str(seed)),
            )
            errors.append(score.rmae)
            correlations.append(score.correlation)
        points.append(
            SweepPoint(
                budget=int(round(drift * 100)),
                rmae_mean=float(np.mean(errors)),
                rmae_std=float(np.std(errors)),
                correlation_mean=float(np.mean(correlations)),
                correlation_std=float(np.std(correlations)),
            )
        )
    return SweepResult(metric=metric, points=tuple(points))


# ----------------------------------------------------------------------
# Figures 11/12 — thin wrappers with the paper's defaults
# ----------------------------------------------------------------------
def spec_error_experiment(
    dataset: DesignSpaceDataset,
    metric: Metric,
    repeats: int = 3,
    seed: int = 0,
    training_size: int = 512,
    responses: int = 32,
    n_jobs: Optional[int] = None,
) -> CrossValidationResult:
    """Fig. 11: per-SPEC-program training and testing error."""
    return leave_one_out(
        dataset, metric, training_size=training_size, responses=responses,
        repeats=repeats, seed=seed, n_jobs=n_jobs,
    )


def mibench_experiment(
    spec_dataset: DesignSpaceDataset,
    mibench_dataset: DesignSpaceDataset,
    metric: Metric,
    repeats: int = 3,
    seed: int = 0,
    training_size: int = 512,
    responses: int = 32,
    n_jobs: Optional[int] = None,
) -> CrossValidationResult:
    """Fig. 12: MiBench predicted from a SPEC CPU 2000-trained model."""
    return cross_suite(
        spec_dataset, mibench_dataset, metric,
        training_size=training_size, responses=responses,
        repeats=repeats, seed=seed, n_jobs=n_jobs,
    )
