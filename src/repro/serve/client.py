"""A small blocking HTTP client for the prediction server.

Thin ``http.client`` wrapper used by the benchmarks, the CI smoke job
and the tests — and a reasonable starting point for real callers.  One
client owns one keep-alive connection and is **not** thread-safe; give
each thread its own instance (connections are cheap, and that is
exactly what the load generator does to model independent clients).

Two production niceties:

* **Stale keep-alive recovery** — a server may close an idle
  keep-alive connection at any time (drain does, and so do proxies);
  the client reconnects and retries transparently instead of
  surfacing a ``ConnectionError`` for a request that never reached a
  live server.
* **Seeded 503 retries** — with ``retries > 0`` a 503 response is
  retried after honouring the server's ``Retry-After`` hint plus a
  bounded *full-jitter* backoff drawn from a seeded generator, so a
  fleet of clients with distinct seeds de-synchronises instead of
  thundering back in lockstep — and a test with the same seed replays
  the same delays.  ``retries=0`` (the default) keeps the original
  fail-fast behaviour.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["PredictionClient", "ServerError"]

#: A request configuration: a full 13-value list/tuple in Table 1
#: order, or a (possibly partial) parameter mapping.
ConfigLike = Union[Sequence[int], Dict[str, int]]

#: First-retry backoff ceiling in seconds; doubles per attempt (full
#: jitter draws uniformly from [0, ceiling]).
_RETRY_BASE = 0.05


class ServerError(RuntimeError):
    """A non-2xx response, carrying the HTTP status and server message."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None,
                 request_id: Optional[str] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.request_id = request_id


class PredictionClient:
    """Blocking client for one server, reusing one connection.

    Args:
        host: Server host.
        port: Server port.
        timeout: Socket timeout in seconds for each request.
        retries: Most 503 retries per request (0 fails fast).
        retry_seed: Seed for the full-jitter backoff stream; give each
            client in a fleet a distinct seed.
        max_retry_wait: Backoff ceiling in seconds (the server's
            ``Retry-After`` hint is honoured on top).
        client_id: Sent as ``X-Client-Id`` on every request, keying
            the server's per-client admission quota (default: the
            server falls back to the peer address).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 0,
        retry_seed: int = 0,
        max_retry_wait: float = 5.0,
        client_id: Optional[str] = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if max_retry_wait <= 0:
            raise ValueError("max_retry_wait must be positive")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.max_retry_wait = max_retry_wait
        self.client_id = client_id
        self._retry_rng = random.Random(retry_seed)
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def predict(self, configs: Sequence[ConfigLike]) -> List[float]:
        """Predictions for ``configs``, in order.

        Raises:
            ServerError: on any non-200 response (status 503 carries
                ``retry_after`` when the server is saturated, and
                ``request_id`` for correlation with the server log).
        """
        payload = self._request(
            "POST", "/predict",
            body=json.dumps({"configs": [_jsonable(c) for c in configs]}),
        )
        return [float(v) for v in payload["predictions"]]

    def predict_one(self, config: ConfigLike) -> float:
        """A single configuration's prediction."""
        return self.predict([config])[0]

    def search(
        self,
        agent: str = "hill",
        budget: int = 128,
        batch: int = 16,
        seed: int = 0,
    ) -> Dict:
        """Run a bounded closed-loop search on the server.

        Args:
            agent: Search agent name (see ``repro.search.AGENT_NAMES``).
            budget: Predictor-evaluation budget for the run.
            batch: Proposals evaluated per round.
            seed: Agent seed; the same seed replays the same search.

        Returns:
            The search outcome payload — best configuration, frontier,
            hypervolume, budget accounting and the served model info.

        Raises:
            ServerError: on any non-200 response (503 when the server
                already runs its maximum of concurrent searches).
        """
        return self._request(
            "POST", "/search",
            body=json.dumps({
                "agent": agent, "budget": budget,
                "batch": batch, "seed": seed,
            }),
        )

    def healthz(self) -> Dict:
        """The server's health document (raises 503 while draining)."""
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition text from ``/metrics``."""
        status, headers, body = self._raw_request("GET", "/metrics")
        if status != 200:
            raise ServerError(status, body.decode("utf-8", "replace"))
        return body.decode("utf-8")

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[str] = None) -> Dict:
        for attempt in range(self.retries + 1):
            status, headers, raw = self._raw_request(method, path, body)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {"error": raw.decode("utf-8", "replace")}
            if status == 200:
                return payload
            retry_after = _float_or_none(headers.get("Retry-After"))
            if status == 503 and attempt < self.retries:
                time.sleep(self._retry_delay(attempt, retry_after))
                continue
            raise ServerError(
                status,
                str(payload.get("error", "unexpected response")),
                retry_after=retry_after,
                request_id=(
                    payload.get("request_id")
                    or headers.get("X-Request-Id")
                ),
            )
        raise AssertionError("unreachable: the retry loop always returns")

    def _retry_delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """Honour the server's hint, then add seeded full jitter."""
        ceiling = min(self.max_retry_wait, _RETRY_BASE * (2 ** attempt))
        jitter = self._retry_rng.uniform(0.0, ceiling)
        return (retry_after or 0.0) + jitter

    def _raw_request(
        self, method: str, path: str, body: Optional[str] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        try:
            return self._exchange(method, path, body)
        except (http.client.HTTPException, ConnectionError, OSError):
            # Reconnect transparently: the server may have closed an
            # idle keep-alive connection between requests (drain does,
            # and so do proxies).  One fresh-connection retry; if that
            # fails too, the server is genuinely gone.
            self.close()
            return self._exchange(method, path, body)

    def _exchange(
        self, method: str, path: str, body: Optional[str]
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection = self._connect()
        headers: Dict[str, str] = {}
        if body:
            headers["Content-Type"] = "application/json"
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        connection.request(
            method, path,
            body=body.encode("utf-8") if body else None,
            headers=headers,
        )
        response = connection.getresponse()
        raw = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status, dict(response.getheaders()), raw

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection


def _float_or_none(text: Optional[str]) -> Optional[float]:
    if not text:
        return None
    try:
        return float(text)
    except ValueError:
        return None


def _jsonable(config: ConfigLike):
    if isinstance(config, dict):
        return {name: int(value) for name, value in config.items()}
    if hasattr(config, "values") and callable(config.values):
        # A Configuration object: send its canonical tuple.
        return [int(v) for v in config.values()]
    return [int(v) for v in config]
