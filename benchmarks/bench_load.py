"""Saturation curves: offered load swept through the knee, 1 vs N workers.

Not a paper artefact — the capacity study behind deploying the
architecture-centric predictor as a service.  A fitted predictor is
served by a :class:`~repro.serve.ServingFleet` (one process, then
``REPRO_LOAD_WORKERS``), and the open-loop generator replays seeded
constant-rate plans at increasing fractions of nominal capacity.
Because arrivals are decoupled from completions, the latency columns
include queueing delay — the curve bends at the knee instead of
flattering the server the way closed-loop clients do.

The forward pass carries an artificial ``service_delay`` (slept in the
executor, per batch), so a worker's nominal capacity is
``max_batch / service_delay`` requests/second and adding a worker buys
real capacity even on a one-core CI machine.  The knee is the highest
offered rate that sheds nothing, errors nothing, and keeps p99 under
``P99_KNEE_MS``; the bench asserts the fleet's knee sits strictly above
the single process's, that nothing is dropped below the single-process
knee, and that a below-knee plan replays deterministically.  Results
land in ``results/BENCH_load.json``.
"""

import os

from repro.core import ArchitectureCentricPredictor
from repro.load import LoadGenerator, LoadPlan, LoadStage, build_schedule
from repro.obs import scoped_registry
from repro.serve import PredictionClient, ServingFleet
from repro.sim import Metric

#: Artificial per-batch forward-pass delay (seconds); the capacity
#: knob.  One worker's nominal ceiling is ``MAX_BATCH / SERVICE_DELAY``.
SERVICE_DELAY = float(os.environ.get("REPRO_LOAD_SERVICE_DELAY", 0.05))

MAX_BATCH = int(os.environ.get("REPRO_LOAD_MAX_BATCH", 4))

#: Parked-request bound; overload turns into fast 503s, not timeouts.
QUEUE_LIMIT = int(os.environ.get("REPRO_LOAD_QUEUE", 32))

#: Seconds of offered load per swept rate.
STAGE_SECONDS = float(os.environ.get("REPRO_LOAD_STAGE_SECONDS", 3.0))

#: Fleet size for the multi-process sweep.
FLEET_WORKERS = int(os.environ.get("REPRO_LOAD_WORKERS", 2))

#: Client threads per run (each owns one keep-alive connection).  Kept
#: above ``QUEUE_LIMIT`` so overload can actually fill the queue and
#: shed — with fewer connections than queue slots, saturation shows up
#: only as latency, never as 503s.
CLIENTS = int(os.environ.get("REPRO_LOAD_CLIENTS", 48))

#: Offered load as fractions of one worker's nominal capacity: two
#: points below the single-process knee, one between the single and
#: fleet knees, one beyond both.
FRACTIONS = (0.4, 0.7, 1.3, 2.6)

#: p99 ceiling (ms) for a rate to count as below the knee.
P99_KNEE_MS = 750.0

#: Held-out program whose responses fit the served predictor.
TARGET_PROGRAM = "applu"

RESPONSES = 24

PLAN_SEED = 2007


def _rate_plan(rate: float) -> LoadPlan:
    """A one-stage constant-rate plan at ``rate`` requests/second."""
    return LoadPlan(
        seed=PLAN_SEED,
        description=f"saturation sweep point at {rate:g} rps",
        stages=(LoadStage(
            name=f"rate-{rate:g}",
            duration=STAGE_SECONDS,
            rate=rate,
            arrival="constant",
            clients=CLIENTS,
            mix=(("predict_hot", 0.8), ("predict_cold", 0.2)),
            hot_configs=32,
            cold_configs=256,
        ),),
    )


def _run_plan(plan: LoadPlan, port: int) -> dict:
    """Replay one plan in a scratch registry; return its stage row."""
    with scoped_registry():
        report = LoadGenerator(plan, "127.0.0.1", port, timeout=30.0).run()
    stage = report.stages[0]
    return {
        "offered_rps": stage.offered_rps,
        "scheduled": stage.scheduled,
        "ok": stage.ok,
        "shed": stage.shed,
        "errors": stage.errors,
        "goodput_rps": stage.goodput_rps,
        "latency_p50_ms": stage.latency_percentiles_ms["p50"],
        "latency_p90_ms": stage.latency_percentiles_ms["p90"],
        "latency_p99_ms": stage.latency_percentiles_ms["p99"],
    }


def _below_knee(row: dict) -> bool:
    return (
        row["shed"] == 0
        and row["errors"] == 0
        and row["latency_p99_ms"] <= P99_KNEE_MS
    )


def _knee(rows: list) -> float:
    """Highest offered rate whose run stayed clean."""
    clean = [row["offered_rps"] for row in rows if _below_knee(row)]
    return max(clean) if clean else 0.0


def _sweep(predictor, workers: int, rates) -> tuple:
    """Serve with ``workers`` processes and replay one plan per rate."""
    rows = []
    with scoped_registry():
        fleet = ServingFleet(
            predictor, workers, port=0,
            server_options={
                "max_batch": MAX_BATCH,
                "service_delay": SERVICE_DELAY,
                "cache_size": 0,     # every request pays the queue
                "queue_limit": QUEUE_LIMIT,
            },
        )
        fleet.start(timeout=90.0)
        mode = fleet.mode
        try:
            # Touch every worker's forward path once so first-batch
            # warm-up cost does not land inside the measured stages.
            for _ in range(2 * workers):
                with PredictionClient(
                    "127.0.0.1", fleet.port, timeout=30.0
                ) as client:
                    client.predict_one({"rob_size": 96})
            for rate in rates:
                rows.append(_run_plan(_rate_plan(rate), fleet.port))
            # Replay the lowest (surely below-knee) rate to prove a
            # below-knee run is deterministic end to end.
            replay = _run_plan(_rate_plan(rates[0]), fleet.port)
        finally:
            report = fleet.stop(timeout=60.0)
    assert report.exit_codes == [0] * workers, report.exit_codes
    return rows, replay, mode


def test_load_saturation(spec_dataset, pools, record_json):
    models = pools(Metric.CYCLES).models(exclude=[TARGET_PROGRAM])
    predictor = ArchitectureCentricPredictor(models)
    response_idx, _ = spec_dataset.split_indices(RESPONSES, seed=2007)
    predictor.fit_responses(
        spec_dataset.subset_configs(response_idx),
        spec_dataset.subset_values(
            TARGET_PROGRAM, Metric.CYCLES, response_idx
        ),
    )

    capacity = MAX_BATCH / SERVICE_DELAY
    rates = [fraction * capacity for fraction in FRACTIONS]

    # The schedule is a pure function of the plan — bit-identical on
    # rebuild, which is what makes below-knee replays meaningful.
    first_schedule, _ = build_schedule(_rate_plan(rates[0]))
    second_schedule, _ = build_schedule(_rate_plan(rates[0]))
    assert first_schedule == second_schedule

    sweeps = {}
    replays = {}
    modes = {}
    for workers in (1, FLEET_WORKERS):
        rows, replay, mode = _sweep(predictor, workers, rates)
        sweeps[str(workers)] = rows
        replays[str(workers)] = replay
        modes[str(workers)] = mode

    knees = {
        workers: _knee(rows) for workers, rows in sweeps.items()
    }
    payload = {
        "service_delay_s": SERVICE_DELAY,
        "max_batch": MAX_BATCH,
        "queue_limit": QUEUE_LIMIT,
        "stage_seconds": STAGE_SECONDS,
        "clients": CLIENTS,
        "worker_capacity_rps": capacity,
        "offered_fractions": list(FRACTIONS),
        "p99_knee_ms": P99_KNEE_MS,
        "fleet_workers": FLEET_WORKERS,
        "fleet_mode": modes[str(FLEET_WORKERS)],
        "sweeps": sweeps,
        "knee_rps": knees,
        "replay_rows": replays,
        "cpu_count": os.cpu_count(),
    }
    record_json("BENCH_load", payload)

    single_knee = knees["1"]
    fleet_knee = knees[str(FLEET_WORKERS)]
    # The headline: N workers move the knee strictly past one process.
    assert fleet_knee > single_knee, (single_knee, fleet_knee)
    assert single_knee > 0, sweeps["1"]
    # Below the single-process knee nothing is dropped — by either
    # fleet size (open-loop offered load, zero sheds, zero errors).
    for workers, rows in sweeps.items():
        for row in rows:
            if row["offered_rps"] <= single_knee:
                assert row["shed"] == 0 and row["errors"] == 0, (
                    workers, row,
                )
    # Below-knee replays are deterministic: same schedule, and the
    # rerun also completed without drops.
    for workers, row in replays.items():
        assert row["scheduled"] == sweeps[workers][0]["scheduled"]
        assert row["shed"] == 0 and row["errors"] == 0, (workers, row)
