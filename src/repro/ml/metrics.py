"""Evaluation metrics: relative mean absolute error and correlation.

Section 6.1 of the paper: predictor accuracy is measured with the
relative mean absolute error ``rmae = |(prediction - actual) / actual| *
100%`` — an rmae of 100 percent means predictions are off by the actual
value on average — and with the Pearson correlation coefficient, which
captures how well the predictor follows the *shape* of the space (the
property design-space exploration actually needs).
"""

from __future__ import annotations

import numpy as np


def rmae(predictions: np.ndarray, actuals: np.ndarray) -> float:
    """Relative mean absolute error, in percent.

    Raises:
        ValueError: on shape mismatch, empty input, or zero actuals
            (relative error is undefined there).
    """
    predictions = np.asarray(predictions, dtype=float).reshape(-1)
    actuals = np.asarray(actuals, dtype=float).reshape(-1)
    if predictions.shape != actuals.shape:
        raise ValueError("predictions and actuals must align")
    if predictions.size == 0:
        raise ValueError("rmae of zero samples is undefined")
    if np.any(actuals == 0.0):
        raise ValueError("rmae is undefined for zero actual values")
    return float(np.mean(np.abs((predictions - actuals) / actuals)) * 100.0)


def correlation(predictions: np.ndarray, actuals: np.ndarray) -> float:
    """Pearson correlation coefficient between predictions and actuals.

    Returns 0.0 when either side has zero variance (no linear relation
    can be measured), rather than propagating NaN.
    """
    predictions = np.asarray(predictions, dtype=float).reshape(-1)
    actuals = np.asarray(actuals, dtype=float).reshape(-1)
    if predictions.shape != actuals.shape:
        raise ValueError("predictions and actuals must align")
    if predictions.size < 2:
        raise ValueError("correlation needs at least two samples")
    prediction_std = predictions.std()
    actual_std = actuals.std()
    if prediction_std == 0.0 or actual_std == 0.0:
        return 0.0
    covariance = np.mean(
        (predictions - predictions.mean()) * (actuals - actuals.mean())
    )
    return float(covariance / (prediction_std * actual_std))
