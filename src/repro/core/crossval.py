"""Cross-validation harnesses (Sections 6, 7 and 8 of the paper).

Three evaluation protocols:

* :func:`evaluate_on_program` — fit the architecture-centric model for
  one new program from R responses and score it on the held-out sample.
* :func:`leave_one_out` — the paper's main protocol: for every program,
  train on all others, characterise the left-out program with R
  responses, validate on the rest of the 3,000-point sample, repeated
  with independent seeds.
* :func:`cross_suite` — train the pool on one suite (SPEC CPU 2000) and
  predict every program of another (MiBench), Section 7.3.

Each record carries both the testing error/correlation and the training
error of the response fit, which Section 7.2 uses as the signal that a
program (art, mcf, tiff2rgba, patricia) has unique behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.metrics import correlation, rmae
from repro.obs import span
from repro.sim.metrics import Metric
from repro.workloads.profile import stable_seed

from .predictor import ArchitectureCentricPredictor
from .program_model import ProgramSpecificPredictor
from .training import TrainingPool

if TYPE_CHECKING:  # avoid a package-level import cycle with exploration
    from repro.exploration.dataset import DesignSpaceDataset


@dataclass(frozen=True)
class PredictionScore:
    """Accuracy of one fitted predictor on one program."""

    program: str
    metric: Metric
    rmae: float
    correlation: float
    training_error: float
    responses: int


@dataclass
class ProgramSummary:
    """Aggregated scores for one program across repeats."""

    program: str
    scores: List[PredictionScore] = field(default_factory=list)

    @property
    def mean_rmae(self) -> float:
        return float(np.mean([s.rmae for s in self.scores]))

    @property
    def std_rmae(self) -> float:
        return float(np.std([s.rmae for s in self.scores]))

    @property
    def mean_correlation(self) -> float:
        return float(np.mean([s.correlation for s in self.scores]))

    @property
    def mean_training_error(self) -> float:
        return float(np.mean([s.training_error for s in self.scores]))


@dataclass
class CrossValidationResult:
    """Result of a full cross-validation run."""

    metric: Metric
    summaries: Dict[str, ProgramSummary]

    @property
    def mean_rmae(self) -> float:
        """Average testing rmae across programs."""
        return float(
            np.mean([s.mean_rmae for s in self.summaries.values()])
        )

    @property
    def mean_correlation(self) -> float:
        """Average correlation coefficient across programs."""
        return float(
            np.mean([s.mean_correlation for s in self.summaries.values()])
        )

    def program(self, name: str) -> ProgramSummary:
        """Summary for one program."""
        try:
            return self.summaries[name]
        except KeyError:
            raise KeyError(
                f"no summary for program {name!r}; "
                f"known: {sorted(self.summaries)}"
            ) from None


def evaluate_on_program(
    models: Sequence[ProgramSpecificPredictor],
    dataset: DesignSpaceDataset,
    program: str,
    responses: int = 32,
    seed: int = 0,
    ridge: float = 0.05,
) -> PredictionScore:
    """Fit and score the architecture-centric predictor on one program.

    The R responses are drawn from the dataset's configuration pool and
    the score is computed on the remaining configurations, exactly the
    paper's protocol.
    """
    metric = models[0].metric
    response_idx, holdout_idx = dataset.split_indices(responses, seed=seed)
    predictor = ArchitectureCentricPredictor(models, ridge=ridge)
    predictor.fit_responses(
        dataset.subset_configs(response_idx),
        dataset.subset_values(program, metric, response_idx),
    )
    predictions = predictor.predict(dataset.subset_configs(holdout_idx))
    actual = dataset.subset_values(program, metric, holdout_idx)
    return PredictionScore(
        program=program,
        metric=metric,
        rmae=rmae(predictions, actual),
        correlation=correlation(predictions, actual),
        training_error=predictor.training_error,
        responses=responses,
    )


def leave_one_out(
    dataset: DesignSpaceDataset,
    metric: Metric,
    training_size: int = 512,
    responses: int = 32,
    repeats: int = 5,
    seed: int = 0,
    programs: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> CrossValidationResult:
    """Leave-one-out cross-validation over a suite (Section 7.1/7.2).

    Args:
        dataset: Shared simulated dataset for the suite.
        metric: Target metric.
        training_size: T simulations per training program.
        responses: R simulations from each left-out program.
        repeats: Independent repetitions with fresh splits/initialisation
            (the paper repeats 20 times; benches default lower and say so).
        seed: Base seed.
        programs: Restrict evaluation to these left-out programs
            (training still uses the whole suite minus the one left out).
        n_jobs: Worker processes for the offline pool training of each
            repeat (1 = serial; results are identical either way).
    """
    targets = list(programs) if programs is not None else list(dataset.programs)
    summaries = {name: ProgramSummary(name) for name in targets}
    for repeat in range(repeats):
        with span("crossval.repeat", protocol="leave-one-out",
                  repeat=repeat):
            pool = TrainingPool(
                dataset,
                metric,
                training_size=training_size,
                seed=stable_seed("loo", str(seed), str(repeat)),
                n_jobs=n_jobs,
            )
            pool.train_all()
            for name in targets:
                models = pool.models(exclude=[name])
                with span("crossval.evaluate", program=name,
                          repeat=repeat):
                    score = evaluate_on_program(
                        models,
                        dataset,
                        name,
                        responses=responses,
                        seed=stable_seed(
                            "loo-resp", name, str(seed), str(repeat)
                        ),
                    )
                summaries[name].scores.append(score)
    return CrossValidationResult(metric=metric, summaries=summaries)


def cross_suite(
    train_dataset: DesignSpaceDataset,
    test_dataset: DesignSpaceDataset,
    metric: Metric,
    training_size: int = 512,
    responses: int = 32,
    repeats: int = 5,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> CrossValidationResult:
    """Train on one suite, predict every program of another (Section 7.3).

    Both datasets must share a design space; they need not share
    configurations (responses come from the test dataset's own pool).
    ``n_jobs`` controls the worker processes of each repeat's offline
    pool training (1 = serial; results are identical either way).
    """
    summaries = {
        name: ProgramSummary(name) for name in test_dataset.programs
    }
    for repeat in range(repeats):
        with span("crossval.repeat", protocol="cross-suite",
                  repeat=repeat):
            pool = TrainingPool(
                train_dataset,
                metric,
                training_size=training_size,
                seed=stable_seed("xsuite", str(seed), str(repeat)),
                n_jobs=n_jobs,
            )
            models = pool.models()
            for name in test_dataset.programs:
                with span("crossval.evaluate", program=name,
                          repeat=repeat):
                    score = evaluate_on_program(
                        models,
                        test_dataset,
                        name,
                        responses=responses,
                        seed=stable_seed(
                            "xsuite-resp", name, str(seed), str(repeat)
                        ),
                    )
                summaries[name].scores.append(score)
    return CrossValidationResult(metric=metric, summaries=summaries)


def program_specific_score(
    dataset: DesignSpaceDataset,
    program: str,
    metric: Metric,
    training_size: int,
    seed: int = 0,
) -> PredictionScore:
    """Score a program-specific ANN given ``training_size`` simulations.

    The comparison baseline of Section 7.4: the same simulation budget
    the architecture-centric model spends on responses is spent training
    a fresh per-program network instead.
    """
    train_idx, holdout_idx = dataset.split_indices(training_size, seed=seed)
    predictor = ProgramSpecificPredictor(
        space=dataset.simulator.space,
        metric=metric,
        program=program,
        seed=stable_seed("ps-net", program, str(seed)),
    )
    predictor.fit(
        dataset.subset_configs(train_idx),
        dataset.subset_values(program, metric, train_idx),
    )
    train_predictions = predictor.predict(dataset.subset_configs(train_idx))
    training_error = rmae(
        train_predictions, dataset.subset_values(program, metric, train_idx)
    )
    predictions = predictor.predict(dataset.subset_configs(holdout_idx))
    actual = dataset.subset_values(program, metric, holdout_idx)
    return PredictionScore(
        program=program,
        metric=metric,
        rmae=rmae(predictions, actual),
        correlation=correlation(predictions, actual),
        training_error=training_error,
        responses=training_size,
    )
