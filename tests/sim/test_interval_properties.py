"""Property-based tests on the interval simulator's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import Configuration, DesignSpace
from repro.sim import IntervalSimulator, Metric
from repro.workloads import spec2000_profile

_SPACE = DesignSpace()
_SIM = IntervalSimulator(_SPACE)
_PROFILES = [spec2000_profile(name) for name in ("gzip", "swim", "art")]


@st.composite
def legal_configurations(draw):
    """Draw a uniformly random legal configuration."""
    values = {}
    for parameter in _SPACE.parameters:
        values[parameter.name] = draw(st.sampled_from(parameter.values))
    config = Configuration(**values)
    # Repair the constrained groups instead of rejecting (keeps the
    # search space dense for hypothesis).
    repairs = {}
    if config.iq_size > config.rob_size:
        repairs["iq_size"] = min(
            v for v in _SPACE.parameter("iq_size").values
            if v <= config.rob_size
        ) if any(v <= config.rob_size
                 for v in _SPACE.parameter("iq_size").values) else 8
    if config.lsq_size > config.rob_size:
        repairs["lsq_size"] = 8
    if config.rf_read_ports > 2 * config.width:
        repairs["rf_read_ports"] = 2
    if config.rf_write_ports > config.width:
        repairs["rf_write_ports"] = 1
    if config.l2cache_kb < 8 * max(config.icache_kb, config.dcache_kb):
        repairs["l2cache_kb"] = 4096
    if repairs:
        config = config.replace(**repairs)
    return config


class TestInvariants:
    @given(config=legal_configurations())
    @settings(max_examples=60, deadline=None)
    def test_metrics_positive_and_finite(self, config):
        for profile in _PROFILES:
            result = _SIM.simulate(profile, config)
            for metric in Metric.all():
                value = result.metric(metric)
                assert np.isfinite(value)
                assert value > 0

    @given(config=legal_configurations())
    @settings(max_examples=40, deadline=None)
    def test_ipc_bounded_by_width(self, config):
        for profile in _PROFILES:
            result = _SIM.simulate(profile, config)
            ipc = 1.0 / result.breakdown["cpi"]
            assert ipc <= config.width + 1e-9

    @given(config=legal_configurations())
    @settings(max_examples=40, deadline=None)
    def test_window_bounded_by_rob(self, config):
        for profile in _PROFILES:
            result = _SIM.simulate(profile, config)
            assert result.breakdown["window"] <= config.rob_size + 1e-9

    @given(config=legal_configurations())
    @settings(max_examples=40, deadline=None)
    def test_derived_metric_identities(self, config):
        result = _SIM.simulate(_PROFILES[0], config)
        assert result.ed == pytest.approx(result.cycles * result.energy)
        assert result.edd == pytest.approx(result.ed * result.cycles)

    @given(config=legal_configurations())
    @settings(max_examples=30, deadline=None)
    def test_growing_gshare_never_hurts_cycles(self, config):
        """The analytic mispredict model is monotone in predictor size."""
        grid = _SPACE.parameter("gshare_size").values
        profile = _PROFILES[0]
        cycles = [
            _SIM.simulate(profile, config.replace(gshare_size=size)).cycles
            for size in grid
        ]
        assert all(b <= a + 1e-6 for a, b in zip(cycles, cycles[1:]))

    @given(config=legal_configurations())
    @settings(max_examples=30, deadline=None)
    def test_mlp_within_model_bounds(self, config):
        for profile in _PROFILES:
            result = _SIM.simulate(profile, config)
            assert 1.0 <= result.breakdown["mlp"] <= max(
                profile.mlp_max, float(_SIM.fixed.mshr_entries)
            ) + 1e-9
