"""Ablation A9: statistical vs executed wrong-path accounting.

The default pipeline simulator charges wrong-path energy statistically
(an inflation factor derived from the misprediction count); with
``wrong_path=True`` it actually fetches, executes and squashes the
speculative work.  This ablation validates the cheap estimate against
the measured one across programs — if the two disagree wildly, every
energy number in the repository would inherit the error.
"""

import numpy as np

from repro.designspace import DesignSpace
from repro.exploration import format_table, scale_banner
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import generate_trace, spec2000_suite

PROGRAMS = ("gzip", "crafty", "twolf")
TRACE_LENGTH = 24_000
WARMUP = 8_000


def test_ablation_wrong_path(benchmark, record_artifact):
    space = DesignSpace()
    suite = spec2000_suite()

    def run():
        rows = []
        for program in PROGRAMS:
            trace = generate_trace(suite[program], TRACE_LENGTH)
            default = PipelineSimulator(space.baseline).run(
                trace, warmup=WARMUP
            )
            speculative = PipelineSimulator(
                space.baseline, wrong_path=True
            ).run(trace, warmup=WARMUP)
            rows.append((program, default, speculative))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ("program", "energy (statistical)", "energy (executed)",
         "ratio", "cycles ratio", "phantoms/instr"),
        [
            (
                program,
                f"{default.energy:.3e}",
                f"{speculative.energy:.3e}",
                round(speculative.energy / default.energy, 3),
                round(speculative.cycles / default.cycles, 3),
                round(
                    speculative.stats.wrong_path_fetched
                    / max(1, speculative.stats.committed),
                    3,
                ),
            )
            for program, default, speculative in rows
        ],
    )
    text = (
        scale_banner(
            "Ablation A9 — statistical vs executed wrong-path accounting",
            trace=TRACE_LENGTH, warmup=WARMUP, programs=len(PROGRAMS),
        )
        + "\n"
        + table
    )
    record_artifact("ablation_wrong_path", text)

    for program, default, speculative in rows:
        energy_ratio = speculative.energy / default.energy
        cycles_ratio = speculative.cycles / default.cycles
        # The cheap statistical estimate tracks the measured truth
        # within a modest factor, and timing is barely disturbed.
        assert 0.6 < energy_ratio < 1.7, program
        assert 0.75 < cycles_ratio < 1.25, program
