"""Tests for the benchmark suites and the suite container."""

import pytest

from repro.workloads import (
    SPEC_FP,
    SPEC_INT,
    BenchmarkSuite,
    mibench_profile,
    mibench_suite,
    spec2000_profile,
    spec2000_suite,
)


class TestSpec2000:
    def test_suite_has_26_programs(self, spec_suite):
        assert len(spec_suite) == 26

    def test_int_fp_split(self):
        assert len(SPEC_INT) == 12
        assert len(SPEC_FP) == 14
        assert set(SPEC_INT).isdisjoint(SPEC_FP)

    def test_canonical_programs_present(self, spec_suite):
        for name in ("gzip", "gcc", "mcf", "art", "applu", "swim"):
            assert name in spec_suite

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError, match="unknown SPEC"):
            spec2000_profile("doom")

    def test_profiles_are_deterministic(self):
        assert spec2000_profile("gzip") == spec2000_profile("gzip")

    def test_art_is_memory_bound(self, spec_suite):
        art = spec_suite["art"]
        median_footprint = sorted(
            p.data_locality.footprint for p in spec_suite
        )[len(spec_suite) // 2]
        assert art.data_locality.footprint > median_footprint
        assert art.ilp_max < 2.5

    def test_mcf_has_low_mlp(self, spec_suite):
        assert spec_suite["mcf"].mlp_max < 1.6

    def test_fp_programs_have_fp_work(self, spec_suite):
        for name in SPEC_FP:
            assert spec_suite[name].mix.fp > 0.15

    def test_int_programs_are_branchier_than_fp(self, spec_suite):
        int_branch = sum(spec_suite[n].mix.branch for n in SPEC_INT) / len(SPEC_INT)
        fp_branch = sum(spec_suite[n].mix.branch for n in SPEC_FP) / len(SPEC_FP)
        assert int_branch > fp_branch


class TestMiBench:
    def test_suite_has_24_programs(self, mibench):
        assert len(mibench) == 24

    def test_ghostscript_is_omitted(self, mibench):
        assert "ghostscript" not in mibench

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError, match="unknown MiBench"):
            mibench_profile("doom")

    def test_embedded_footprints_smaller_than_spec(self, mibench, spec_suite):
        mibench_median = sorted(
            p.data_locality.footprint for p in mibench
        )[len(mibench) // 2]
        spec_median = sorted(
            p.data_locality.footprint for p in spec_suite
        )[len(spec_suite) // 2]
        assert mibench_median < spec_median

    def test_categories_cover_mibench_groups(self, mibench):
        categories = {p.category for p in mibench}
        assert {"automotive", "consumer", "network", "office",
                "security", "telecomm"} <= categories


class TestBenchmarkSuite:
    def test_lookup(self, spec_suite):
        assert spec_suite["gzip"].name == "gzip"

    def test_lookup_missing(self, spec_suite):
        with pytest.raises(KeyError, match="no program"):
            spec_suite["doom"]

    def test_subset_preserves_order(self, spec_suite):
        subset = spec_suite.subset(["art", "gzip"])
        assert subset.programs == ("gzip", "art")  # suite order

    def test_subset_missing_program(self, spec_suite):
        with pytest.raises(KeyError):
            spec_suite.subset(["gzip", "doom"])

    def test_without(self, spec_suite):
        reduced = spec_suite.without("art")
        assert "art" not in reduced
        assert len(reduced) == len(spec_suite) - 1

    def test_without_missing(self, spec_suite):
        with pytest.raises(KeyError):
            spec_suite.without("doom")

    def test_duplicate_names_rejected(self, spec_suite):
        gzip = spec_suite["gzip"]
        with pytest.raises(ValueError, match="duplicate"):
            BenchmarkSuite("bad", [gzip, gzip])

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BenchmarkSuite("empty", [])

    def test_by_category(self, spec_suite):
        fp = spec_suite.by_category("fp")
        assert all(p.category == "fp" for p in fp)
        assert len(fp) == len(SPEC_FP)

    def test_iteration_matches_programs(self, spec_suite):
        assert tuple(p.name for p in spec_suite) == spec_suite.programs
