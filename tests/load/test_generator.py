"""Schedule construction and live open-loop runs against a real server."""

from __future__ import annotations

import collections

import pytest

from repro.load import LoadGenerator, LoadPlan, LoadStage, build_schedule
from repro.obs import scoped_registry
from repro.serve import AdmissionController


def _mixed_plan(**stage_overrides) -> LoadPlan:
    fields = {
        "name": "mixed", "duration": 1.0, "rate": 60.0,
        "arrival": "poisson", "clients": 3,
        "mix": (("predict_hot", 0.6), ("predict_cold", 0.4)),
        "hot_configs": 8, "cold_configs": 32,
    }
    fields.update(stage_overrides)
    return LoadPlan(stages=(LoadStage(**fields),), seed=2007)


class TestBuildSchedule:
    def test_replay_is_bit_identical(self):
        plan = _mixed_plan()
        first, first_pools = build_schedule(plan)
        second, second_pools = build_schedule(plan)
        assert first == second
        assert first_pools == second_pools

    def test_seed_changes_schedule(self):
        first, _ = build_schedule(_mixed_plan())
        second, _ = build_schedule(_mixed_plan().with_seed(1))
        assert first != second

    def test_ordered_by_offset(self):
        schedule, _ = build_schedule(LoadPlan(stages=(
            LoadStage(name="a", duration=1.0, rate=40.0),
            LoadStage(name="b", duration=1.0, rate=40.0),
        ), seed=3))
        offsets = [request.offset for request in schedule]
        assert offsets == sorted(offsets)
        # Stage b's arrivals land after stage a's window.
        b_offsets = [r.offset for r in schedule if r.stage == "b"]
        assert min(b_offsets) >= 1.0

    def test_clients_round_robin(self):
        schedule, _ = build_schedule(_mixed_plan(clients=3))
        assert {request.client for request in schedule} == {0, 1, 2}

    def test_pools_match_plan(self):
        _, pools = build_schedule(_mixed_plan())
        assert len(pools["mixed"].hot) == 8
        assert len(pools["mixed"].cold) == 32

    def test_hot_picks_are_zipf_skewed(self):
        plan = _mixed_plan(
            rate=500.0, duration=2.0, arrival="constant",
            mix=(("predict_hot", 1.0),), zipf_s=1.5,
        )
        schedule, _ = build_schedule(plan)
        counts = collections.Counter(
            request.payload for request in schedule
        )
        # Rank 0 must dominate the tail rank by a wide margin.
        assert counts[0] > 5 * max(counts.get(7, 0), 1)

    def test_cold_payloads_cycle_the_pool(self):
        plan = _mixed_plan(
            rate=100.0, duration=1.0, arrival="constant",
            mix=(("predict_cold", 1.0),), cold_configs=16,
        )
        schedule, _ = build_schedule(plan)
        payloads = [request.payload for request in schedule]
        assert payloads[:16] == list(range(16))
        assert max(payloads) < 16


class TestLiveRuns:
    def test_below_knee_run_all_ok(self, harness):
        started = harness(cache_size=0)
        plan = _mixed_plan()
        with scoped_registry() as registry:
            report = LoadGenerator(
                plan, "127.0.0.1", started.port, timeout=10.0
            ).run()
        assert report.scheduled > 20
        assert report.ok == report.scheduled
        assert report.shed == 0 and report.errors == 0
        summary = report.stages[0]
        assert summary.scheduled == report.scheduled
        assert summary.goodput_rps > 0
        assert summary.latency_percentiles_ms["p99"] > 0
        # Every record landed in the metrics registry.
        total = 0.0
        for metric in registry.snapshot()["metrics"]:
            if metric["name"] == "load.requests":
                total += metric["state"]
        assert total == report.scheduled

    def test_report_payload_shape(self, harness):
        started = harness()
        plan = _mixed_plan(duration=0.5, rate=30.0)
        with scoped_registry():
            payload = LoadGenerator(
                plan, "127.0.0.1", started.port, timeout=10.0
            ).run().to_payload()
        assert payload["plan_seed"] == 2007
        assert payload["scheduled"] == payload["ok"]
        stage = payload["stages"][0]
        assert stage["name"] == "mixed"
        assert set(stage["latency_percentiles_ms"]) == {"p50", "p90", "p99"}

    def test_quota_sheds_are_recorded_with_ids(self, harness):
        # One token per client and a glacial refill: nearly every
        # request past the first per client must shed.
        started = harness(
            admission=AdmissionController(client_rate=0.1, client_burst=1),
        )
        plan = _mixed_plan(duration=1.0, rate=40.0, clients=2,
                           arrival="constant")
        with scoped_registry():
            report = LoadGenerator(
                plan, "127.0.0.1", started.port, timeout=10.0
            ).run()
        assert report.ok >= 2
        assert report.shed >= report.scheduled - 4
        assert report.errors == 0
        shed = [r for r in report.records if r.outcome == "shed"]
        assert all(r.status == 503 for r in shed)
        # Every shed carries the server-minted id for log correlation.
        assert all(r.request_id for r in shed)
        assert len(report.shed_request_ids) == len(shed)
