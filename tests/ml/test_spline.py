"""Tests for restricted cubic spline regression."""

import numpy as np
import pytest

from repro.ml import SplineRegressor, restricted_cubic_basis


class TestBasis:
    def test_shape(self):
        x = np.linspace(0, 10, 50)
        knots = np.array([1.0, 3.0, 6.0, 9.0])
        basis = restricted_cubic_basis(x, knots)
        assert basis.shape == (50, 2)

    def test_linear_below_first_knot(self):
        knots = np.array([2.0, 5.0, 8.0])
        x = np.array([-5.0, 0.0, 1.0])
        basis = restricted_cubic_basis(x, knots)
        assert np.allclose(basis, 0.0)

    def test_linear_beyond_last_knot(self):
        """Second derivative vanishes past the boundary knots: the
        basis grows linearly there, so second differences are ~0."""
        knots = np.array([2.0, 5.0, 8.0])
        x = np.array([10.0, 12.0, 14.0, 16.0])
        basis = restricted_cubic_basis(x, knots)
        second_diff = np.diff(basis[:, 0], n=2)
        assert np.allclose(second_diff, 0.0, atol=1e-9)

    def test_too_few_knots_rejected(self):
        with pytest.raises(ValueError):
            restricted_cubic_basis(np.arange(5.0), np.array([1.0, 2.0]))

    def test_unsorted_knots_rejected(self):
        with pytest.raises(ValueError):
            restricted_cubic_basis(
                np.arange(5.0), np.array([3.0, 2.0, 5.0])
            )


class TestSplineRegressor:
    def test_fits_a_nonlinear_curve_better_than_linear(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(300, 1))
        y = np.sin(x[:, 0] / 2.0) + 0.1 * x[:, 0]
        spline = SplineRegressor(knots=5).fit(x, y)
        from repro.ml import LinearRegressor
        linear = LinearRegressor().fit(x, y)
        spline_rmse = np.sqrt(np.mean((spline.predict(x) - y) ** 2))
        linear_rmse = np.sqrt(np.mean((linear.predict(x) - y) ** 2))
        assert spline_rmse < 0.5 * linear_rmse

    def test_extrapolates_linearly(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 10, size=(200, 1))
        y = 2.0 * x[:, 0]
        spline = SplineRegressor(knots=4).fit(x, y)
        outside = spline.predict(np.array([[20.0], [40.0]]))
        assert np.all(np.isfinite(outside))
        # Linear tails: doubling x roughly doubles the prediction.
        assert outside[1] == pytest.approx(2 * outside[0], rel=0.25)

    def test_multifeature(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(250, 3))
        y = x[:, 0] ** 2 + np.sin(3 * x[:, 1]) + x[:, 2]
        spline = SplineRegressor(knots=4).fit(x, y)
        rmse = np.sqrt(np.mean((spline.predict(x) - y) ** 2))
        assert rmse < 0.25 * y.std()

    def test_constant_feature_falls_back_to_linear(self):
        rng = np.random.default_rng(3)
        x = np.hstack([rng.uniform(0, 1, size=(100, 1)), np.ones((100, 1))])
        y = x[:, 0]
        spline = SplineRegressor(knots=4).fit(x, y)
        assert np.all(np.isfinite(spline.predict(x)))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            SplineRegressor().predict(np.ones((2, 2)))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            SplineRegressor(knots=4).fit(np.ones((2, 1)), np.ones(2))

    def test_bad_knot_count_rejected(self):
        with pytest.raises(ValueError):
            SplineRegressor(knots=2)
