"""Agglomerative hierarchical clustering and dendrograms (Fig. 5).

A from-scratch implementation of average-linkage (UPGMA) agglomerative
clustering — the paper's ``hclust(..., method="average")`` — over the
program distance matrix of :mod:`repro.analysis.similarity`.  The result
is a dendrogram tree whose merge heights are the average inter-cluster
distances; cutting it reproduces the paper's observations (art on its
own branch far from everything, mcf next).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DendrogramNode:
    """A node of the clustering tree.

    Leaves carry a program name; internal nodes carry the merge height
    (the average distance between the two merged clusters) and their
    children.
    """

    height: float
    members: Tuple[str, ...]
    program: Optional[str] = None
    left: Optional["DendrogramNode"] = None
    right: Optional["DendrogramNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.program is not None

    def leaves(self) -> Tuple[str, ...]:
        """Member programs in dendrogram (left-to-right) order."""
        if self.is_leaf:
            return (self.program,)
        return self.left.leaves() + self.right.leaves()


def average_linkage(
    distances: np.ndarray, labels: Sequence[str]
) -> DendrogramNode:
    """Cluster with average linkage (UPGMA); returns the dendrogram root.

    Args:
        distances: Symmetric (n, n) distance matrix, zero diagonal.
        labels: One label per row.
    """
    distances = np.asarray(distances, dtype=float)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ValueError("distance matrix must be square")
    if len(labels) != n:
        raise ValueError("one label per matrix row is required")
    if n == 0:
        raise ValueError("cannot cluster zero items")
    if not np.allclose(distances, distances.T):
        raise ValueError("distance matrix must be symmetric")

    nodes: Dict[int, DendrogramNode] = {
        i: DendrogramNode(height=0.0, members=(labels[i],), program=labels[i])
        for i in range(n)
    }
    sizes: Dict[int, int] = {i: 1 for i in range(n)}
    # Working copy with inf diagonal so argmin never picks it.
    work = distances.astype(float).copy()
    np.fill_diagonal(work, np.inf)
    active = set(range(n))
    next_id = n

    while len(active) > 1:
        # Find the closest active pair.
        best = (np.inf, -1, -1)
        active_list = sorted(active)
        for index, i in enumerate(active_list):
            for j in active_list[index + 1:]:
                if work[i, j] < best[0]:
                    best = (work[i, j], i, j)
        height, i, j = best
        merged = DendrogramNode(
            height=float(height),
            members=nodes[i].members + nodes[j].members,
            left=nodes[i],
            right=nodes[j],
        )
        # Average linkage: distance to the merged cluster is the
        # size-weighted mean of the distances to its parts.
        size_i, size_j = sizes[i], sizes[j]
        total = size_i + size_j
        new_row = np.full(work.shape[0] + 1, np.inf)
        for k in active:
            if k in (i, j):
                continue
            new_row[k] = (size_i * work[i, k] + size_j * work[j, k]) / total
        work = np.pad(work, ((0, 1), (0, 1)), constant_values=np.inf)
        work[next_id, : new_row.shape[0]] = new_row
        work[: new_row.shape[0], next_id] = new_row
        active.discard(i)
        active.discard(j)
        active.add(next_id)
        nodes[next_id] = merged
        sizes[next_id] = total
        next_id += 1

    return nodes[active.pop()]


def cut_tree(root: DendrogramNode, height: float) -> List[Tuple[str, ...]]:
    """Clusters obtained by cutting the dendrogram at a height."""
    clusters: List[Tuple[str, ...]] = []

    def descend(node: DendrogramNode) -> None:
        if node.is_leaf or node.height <= height:
            clusters.append(node.members)
            return
        descend(node.left)
        descend(node.right)

    descend(root)
    return clusters


def merge_height_of(root: DendrogramNode, program: str) -> float:
    """Height at which a program first joins any other cluster.

    A large value marks an outlier: the paper reads art's ~500 ED merge
    height straight off the dendrogram.
    """

    def descend(node: DendrogramNode) -> Optional[float]:
        if node.is_leaf:
            return None
        if program in node.left.members and node.left.is_leaf:
            return node.height
        if program in node.right.members and node.right.is_leaf:
            return node.height
        if program in node.left.members:
            return descend(node.left)
        if program in node.right.members:
            return descend(node.right)
        return None

    height = descend(root)
    if height is None:
        raise KeyError(f"program {program!r} is not in the dendrogram")
    return height


def render_dendrogram(root: DendrogramNode, width: int = 72) -> str:
    """ASCII rendering of the dendrogram (leaves left, merges right)."""
    lines: List[str] = []

    def descend(node: DendrogramNode, prefix: str, connector: str) -> None:
        if node.is_leaf:
            lines.append(f"{prefix}{connector}{node.program}")
            return
        label = f"+-[{node.height:.3g}]"
        lines.append(f"{prefix}{connector}{label}")
        child_prefix = prefix + ("|  " if connector == "+--" else "   ")
        descend(node.left, child_prefix, "+--")
        descend(node.right, child_prefix, "+--")

    descend(root, "", "")
    return "\n".join(lines)
