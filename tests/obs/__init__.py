"""Tests for the observability layer (logging, metrics, tracing, manifests)."""
