"""Tests for the shared checksummed ``.npz`` artifact layer."""

import numpy as np
import pytest

from repro.runtime import payload_checksum, read_archive, write_archive


@pytest.fixture()
def payload():
    rng = np.random.default_rng(3)
    return {
        "matrix": rng.standard_normal((6, 4)),
        "labels": np.array(["a", "b", "c"]),
        "count": np.array(17),
    }


class TestRoundTrip:
    def test_arrays_survive_exactly(self, tmp_path, payload):
        path = write_archive(tmp_path / "a.npz", payload, format_version=3)
        version, loaded = read_archive(path, current_version=3)
        assert version == 3
        assert sorted(loaded) == sorted(payload)
        for name, array in payload.items():
            assert np.array_equal(loaded[name], np.asarray(array))

    def test_reserved_keys_stripped_on_read(self, tmp_path, payload):
        path = write_archive(tmp_path / "a.npz", payload, format_version=1)
        _, loaded = read_archive(path, current_version=1)
        assert "format_version" not in loaded
        assert "checksum" not in loaded

    def test_reserved_keys_rejected_on_write(self, tmp_path):
        for key in ("format_version", "checksum"):
            with pytest.raises(ValueError, match="reserved"):
                write_archive(
                    tmp_path / "bad.npz",
                    {key: np.array(1)},
                    format_version=1,
                )

    def test_no_scratch_file_left_behind(self, tmp_path, payload):
        write_archive(tmp_path / "a.npz", payload, format_version=1)
        assert [p.name for p in tmp_path.iterdir()] == ["a.npz"]


class TestChecksum:
    def test_stable_across_key_order(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert payload_checksum(payload) == payload_checksum(reordered)

    def test_sensitive_to_values(self, payload):
        tampered = dict(payload)
        tampered["matrix"] = payload["matrix"] + 1e-12
        assert payload_checksum(payload) != payload_checksum(tampered)

    def test_sensitive_to_names(self, payload):
        renamed = {
            ("renamed" if k == "matrix" else k): v
            for k, v in payload.items()
        }
        assert payload_checksum(payload) != payload_checksum(renamed)

    def test_ignores_reserved_keys(self, payload):
        noisy = dict(payload)
        noisy["checksum"] = np.array("whatever")
        assert payload_checksum(noisy) == payload_checksum(payload)


class TestIntegrity:
    def test_bit_flip_detected(self, tmp_path, payload):
        path = write_archive(tmp_path / "a.npz", payload, format_version=2)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            read_archive(path, current_version=2)

    def test_truncation_detected(self, tmp_path, payload):
        path = write_archive(tmp_path / "a.npz", payload, format_version=2)
        path.write_bytes(path.read_bytes()[:-100])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            read_archive(path, current_version=2)

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "a.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            read_archive(path, current_version=1)

    def test_label_appears_in_errors(self, tmp_path):
        path = tmp_path / "a.npz"
        path.write_bytes(b"junk")
        with pytest.raises(ValueError, match="model pool"):
            read_archive(path, current_version=1, label="model pool")


class TestVersions:
    def test_unsupported_version_rejected(self, tmp_path, payload):
        path = write_archive(tmp_path / "a.npz", payload, format_version=9)
        with pytest.raises(ValueError, match="version 9"):
            read_archive(path, current_version=2, legacy_versions=(1,))

    def test_legacy_version_accepted_unverified(self, tmp_path, payload):
        """A legacy archive loads even if its arrays were altered:
        its (caller-owned) checksum entry rides along in the payload."""
        path = write_archive(tmp_path / "a.npz", payload, format_version=1)
        version, loaded = read_archive(
            path, current_version=2, legacy_versions=(1,)
        )
        assert version == 1
        assert "checksum" in loaded  # preserved for caller verification

    def test_missing_version_key_rejected(self, tmp_path, payload):
        path = tmp_path / "a.npz"
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="no format version"):
            read_archive(path, current_version=1)
