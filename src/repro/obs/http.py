"""Minimal shared HTTP/1.1 plumbing for the observability surfaces.

Two subsystems expose HTTP without pulling in a framework: the
prediction server (``repro serve``) and the distributed coordinator's
read-only observability twins (``--http-port``: ``/metrics``,
``/healthz``, ``/status``).  Both ride the same stdlib-only request
parser and response writer here, so content-type quirks, keep-alive
semantics and body limits are fixed in exactly one place.

:class:`ObservabilityEndpoint` is the ready-made read-only flavour: a
table of GET routes, each a zero-argument callable returning
``(status, body_bytes, content_type)``.  The prediction server keeps
its own richer dispatch (POST bodies, backpressure) but uses the same
primitives below.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Mapping, Optional, Tuple

__all__ = [
    "ObservabilityEndpoint",
    "PROMETHEUS_CONTENT_TYPE",
    "dump_json",
    "json_error",
    "read_request",
    "write_response",
]

#: The content type Prometheus scrapers expect from a text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"

#: Largest accepted request body — a defence against accidental
#: uploads, not a tuning knob.
MAX_BODY = 4 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: A route handler: () -> (status, body, content_type).
RouteHandler = Callable[[], Tuple[int, bytes, str]]


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed
    connection.  Returns ``(method, target, headers, body)`` with the
    method upper-cased and header names lower-cased."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        return None
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip().lower()
    length = int(headers.get("content-length", "0") or "0")
    if length > max_body:
        raise ConnectionError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: bytes,
    content_type: str,
    keep_alive: bool,
    extra: Mapping[str, str],
) -> None:
    """Serialise one response onto ``writer`` (caller drains)."""
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra.items())
    writer.write(
        ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
    )


def dump_json(payload: Dict) -> bytes:
    """A JSON response body (newline-terminated, curl-friendly)."""
    return (json.dumps(payload) + "\n").encode("utf-8")


def json_error(
    status: int,
    message: str,
    extra: Optional[Dict[str, str]] = None,
    request_id: Optional[str] = None,
) -> Tuple[int, bytes, str, Dict[str, str]]:
    """The standard error shape: ``{"error": message}`` + headers.

    When the caller assigns request ids (the prediction server does),
    the id rides in the body so a shed request can be correlated from
    the client's side against the server log.
    """
    payload: Dict[str, str] = {"error": message}
    if request_id is not None:
        payload["request_id"] = request_id
    return (
        status,
        dump_json(payload),
        "application/json",
        dict(extra or {}),
    )


class ObservabilityEndpoint:
    """A read-only GET-routed asyncio HTTP sidecar.

    Args:
        routes: ``{path: handler}``; each handler is synchronous and
            returns ``(status, body_bytes, content_type)``.  Handlers
            run on the event loop, so they must be cheap — snapshot
            serialisation, not simulation.
        host: Bind address.
        port: Bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        routes: Mapping[str, RouteHandler],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.routes = dict(routes)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()

    async def start(self) -> None:
        """Bind the socket (resolves :attr:`port` when it was 0)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the socket and every open connection."""
        if self._server is None:
            return
        self._server.close()
        for writer in list(self._connections):
            writer.close()
        await self._server.wait_closed()
        self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                method, target, headers, _body = request
                path = target.split("?", 1)[0]
                handler = self.routes.get(path)
                if handler is None:
                    status, payload, content_type, extra = json_error(
                        404, f"unknown path {path!r}"
                    )
                elif method != "GET":
                    status, payload, content_type, extra = json_error(
                        405, "use GET"
                    )
                else:
                    extra = {}
                    try:
                        status, payload, content_type = handler()
                    except Exception as error:  # noqa: BLE001 — a broken
                        # handler must answer 500, not kill the endpoint.
                        status, payload, content_type, extra = json_error(
                            500, f"handler failed: {error}"
                        )
                keep_alive = (
                    headers.get("connection", "keep-alive") != "close"
                )
                write_response(
                    writer, status, payload, content_type,
                    keep_alive=keep_alive, extra=extra,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
