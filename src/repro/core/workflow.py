"""The one-call workflow: characterise a new program end to end.

Everything the paper's Fig. 6 pipeline does, packaged for a user who
has a trained offline pool and a brand-new workload:

1. simulate the new program at R sampled configurations (the only
   simulations spent);
2. fit the architecture-centric combiner on those responses;
3. read the training error as the confidence signal (Section 7.2) and
   turn it into an explicit verdict;
4. optionally scan a large candidate set for predicted sweet spots.

The returned :class:`ExplorationReport` carries the fitted predictor,
so all further prediction is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.sampling import sample_configurations
from repro.sim.interval import IntervalSimulator
from repro.sim.metrics import Metric
from repro.workloads.profile import WorkloadProfile

from .predictor import ArchitectureCentricPredictor
from .program_model import ProgramSpecificPredictor

#: Training-error (%) thresholds for the confidence verdict.
_TRUSTED_BELOW = 8.0
_SUSPECT_ABOVE = 15.0


@dataclass(frozen=True)
class ExplorationReport:
    """Everything :func:`explore_new_program` learned.

    Attributes:
        program: The new program's name.
        metric: Target metric.
        predictor: The fitted architecture-centric predictor (reusable).
        responses: The configurations that were simulated.
        training_error: rmae (%) of the response fit — the confidence
            signal.
        verdict: ``"trusted"`` / ``"usable"`` / ``"suspect"`` from the
            training error (Section 7.2's decision rule made explicit).
        sweet_spots: Predicted-best configurations with their predicted
            values (empty when scanning was disabled).
        simulations_spent: Real simulations consumed (== R).
    """

    program: str
    metric: Metric
    predictor: ArchitectureCentricPredictor
    responses: Tuple[Configuration, ...]
    training_error: float
    verdict: str
    sweet_spots: Tuple[Tuple[Configuration, float], ...]
    simulations_spent: int

    @property
    def trustworthy(self) -> bool:
        """True unless the confidence signal flags unique behaviour."""
        return self.verdict != "suspect"


def _verdict(training_error: float) -> str:
    if training_error < _TRUSTED_BELOW:
        return "trusted"
    if training_error <= _SUSPECT_ABOVE:
        return "usable"
    return "suspect"


def explore_new_program(
    models: Sequence[ProgramSpecificPredictor],
    profile: WorkloadProfile,
    simulator: Optional[IntervalSimulator] = None,
    responses: int = 32,
    sweet_spot_candidates: int = 5000,
    sweet_spots: int = 5,
    seed: int = 0,
) -> ExplorationReport:
    """Characterise a new program from R simulations and scan the space.

    Args:
        models: The offline-trained per-program pool (all one metric).
        profile: The new program.
        simulator: Simulator supplying the responses (defaults to a
            fresh interval simulator over the full Table 1 space).
        responses: R — simulations of the new program (the only cost).
        sweet_spot_candidates: Random candidates scanned by prediction;
            0 disables the scan.
        sweet_spots: Predicted-best configurations to report.
        seed: Sampling seed.

    Returns:
        An :class:`ExplorationReport`; its ``predictor`` predicts any
        configuration of the space from here on for free.
    """
    if responses < 2:
        raise ValueError("at least two responses are required")
    simulator = simulator if simulator is not None else IntervalSimulator()
    space = simulator.space
    metric = models[0].metric

    response_configs = sample_configurations(space, responses, seed=seed)
    batch = simulator.simulate_batch(profile, response_configs)
    response_values = batch.metric(metric)

    predictor = ArchitectureCentricPredictor(models)
    predictor.fit_responses(response_configs, response_values)

    spots: List[Tuple[Configuration, float]] = []
    if sweet_spot_candidates > 0:
        candidates = sample_configurations(
            space, sweet_spot_candidates, seed=seed + 1
        )
        predictions = predictor.predict(candidates)
        order = np.argsort(predictions)[:sweet_spots]
        spots = [
            (candidates[i], float(predictions[i])) for i in order
        ]

    return ExplorationReport(
        program=profile.name,
        metric=metric,
        predictor=predictor,
        responses=tuple(response_configs),
        training_error=predictor.training_error,
        verdict=_verdict(predictor.training_error),
        sweet_spots=tuple(spots),
        simulations_spent=responses,
    )
