"""The simulation backend interface campaigns run against.

Campaigns never touch :class:`~repro.sim.interval.IntervalSimulator`
directly: they call a :class:`SimulationBackend`, an interface with a
single ``simulate_batch`` method.  That indirection is what lets the
fault-injecting wrapper, future sharded or asynchronous backends, and
remote simulator farms all slot under the same retry/checkpoint
machinery without the campaign layer changing.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.designspace.configuration import Configuration
from repro.sim.interval import BatchResult, IntervalSimulator
from repro.workloads.profile import WorkloadProfile


class SimulationError(RuntimeError):
    """Base class for failures raised by or around a backend call."""


class CorruptResultError(SimulationError):
    """A backend returned non-finite metric values."""


@runtime_checkable
class SimulationBackend(Protocol):
    """Anything that can simulate one program over a batch of configs.

    Backends may additionally offer the program-major 2-D fast path
    ``simulate_suite(profiles, configs)``; callers discover it with
    :func:`supports_suite` and must fall back to per-profile
    ``simulate_batch`` calls when it is absent, so older or wrapped
    backends keep working unchanged.
    """

    def simulate_batch(
        self, profile: WorkloadProfile, configs: Sequence[Configuration]
    ) -> BatchResult:
        """Return the four metric arrays for ``profile`` at ``configs``."""
        ...


def supports_suite(backend: object) -> bool:
    """True if ``backend`` offers the ``simulate_suite`` fast path.

    Capability discovery is duck-typed on purpose: wrappers that proxy
    an inner backend (fault injection, retry shims, remote stubs)
    advertise the fast path only when they actually implement it, and
    everything else degrades gracefully to per-profile batches.
    """
    return callable(getattr(backend, "simulate_suite", None))


class IntervalBackend:
    """The interval simulator behind the backend interface.

    Args:
        simulator: The wrapped simulator (a default one over the full
            Table 1 space is built if absent).
    """

    def __init__(self, simulator: Optional[IntervalSimulator] = None) -> None:
        self.simulator = (
            simulator if simulator is not None else IntervalSimulator()
        )

    @property
    def space(self):
        """The design space the wrapped simulator operates over."""
        return self.simulator.space

    def simulate_batch(
        self, profile: WorkloadProfile, configs: Sequence[Configuration]
    ) -> BatchResult:
        """Delegate straight to :meth:`IntervalSimulator.simulate_batch`."""
        return self.simulator.simulate_batch(profile, configs)

    def simulate_suite(
        self,
        profiles: Sequence[WorkloadProfile],
        configs: Sequence[Configuration],
    ) -> List[BatchResult]:
        """Program-major fast path: one column build for all profiles.

        Bit-identical to per-profile :meth:`simulate_batch` calls (see
        :meth:`IntervalSimulator.simulate_suite`).
        """
        return self.simulator.simulate_suite(profiles, configs)


def validate_batch(result: BatchResult, context: str = "") -> BatchResult:
    """Reject batches containing NaN/Inf metric values.

    Backends are trusted to return *finite* positive metrics; anything
    else (a corrupted response, an overflowed model) must fail loudly
    here rather than poison a ridge fit three layers up.

    Raises:
        CorruptResultError: if any metric array contains a non-finite
            value.
    """
    for name, values in (
        ("cycles", result.cycles),
        ("energy", result.energy),
        ("ed", result.ed),
        ("edd", result.edd),
    ):
        bad = ~np.isfinite(values)
        if np.any(bad):
            where = " " + context if context else ""
            raise CorruptResultError(
                f"backend returned {int(bad.sum())} non-finite {name} "
                f"value(s){where}"
            )
    return result
