"""Metrics registry: instruments, snapshot/merge, exporters."""

import json
import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value == 3.0

    def test_histogram_summary_stats(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 22.5
        assert histogram.min == 0.5
        assert histogram.max == 20.0
        assert histogram.mean == 7.5
        assert histogram.bucket_counts == [1, 1, 1]

    def test_histogram_empty_mean_is_nan(self):
        assert math.isnan(Histogram().mean)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.counter("faults", kind="transient").inc()
        registry.counter("faults", kind="stall").inc(2)
        assert registry.value("faults", kind="transient") == 1
        assert registry.value("faults", kind="stall") == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_value_of_untouched_metric_is_zero(self):
        assert MetricsRegistry().value("nothing") == 0.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            MetricsRegistry().counter("")


class TestSnapshotMerge:
    def test_counters_add(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("retry.attempts").inc(3)
        worker.counter("retry.attempts").inc(4)
        parent.merge(worker.snapshot())
        assert parent.value("retry.attempts") == 7

    def test_histograms_add(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("chunk.seconds").observe(1.0)
        worker.histogram("chunk.seconds").observe(3.0)
        worker.histogram("chunk.seconds").observe(0.5)
        parent.merge(worker.snapshot())
        merged = parent.histogram("chunk.seconds")
        assert merged.count == 3
        assert merged.sum == 4.5
        assert merged.min == 0.5
        assert merged.max == 3.0

    def test_gauges_last_write_wins(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("breaker.open").set(1)
        worker.gauge("breaker.open").set(0)
        parent.merge(worker.snapshot())
        assert parent.value("breaker.open") == 0

    def test_untouched_worker_metric_does_not_clobber(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("depth").set(7)
        worker.counter("other").inc()
        parent.merge(worker.snapshot())
        assert parent.value("depth") == 7

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a", kind="x").inc()
        registry.histogram("b").observe(0.2)
        json.dumps(registry.snapshot())  # must not raise

    def test_merge_round_trips_through_pickle_shape(self):
        # the worker transport is pickle; json round-trip is stricter
        worker = MetricsRegistry()
        worker.counter("n").inc(5)
        worker.histogram("h").observe(2.0)
        snapshot = json.loads(json.dumps(worker.snapshot()))
        parent = MetricsRegistry()
        parent.merge(snapshot)
        assert parent.value("n") == 5
        assert parent.histogram("h").count == 1

    def test_concurrent_label_sets_merge_independently(self):
        # Two workers share a metric name but bump disjoint (and one
        # overlapping) label sets — each (name, labels) series must
        # aggregate on its own, never cross-contaminate.
        parent = MetricsRegistry()
        parent.counter("tasks", worker="w1", state="done").inc(1)
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("tasks", worker="w1", state="done").inc(2)
        first.counter("tasks", worker="w1", state="failed").inc(3)
        second.counter("tasks", worker="w2", state="done").inc(5)
        parent.merge(first.snapshot())
        parent.merge(second.snapshot())
        assert parent.value("tasks", worker="w1", state="done") == 3
        assert parent.value("tasks", worker="w1", state="failed") == 3
        assert parent.value("tasks", worker="w2", state="done") == 5

    def test_interleaved_merges_from_threads(self):
        import threading

        parent = MetricsRegistry()
        lock = threading.Lock()

        def worker(worker_id: str) -> None:
            for _ in range(50):
                local = MetricsRegistry()
                local.counter("done", worker=worker_id).inc()
                local.histogram("lat", worker=worker_id).observe(0.5)
                snapshot = local.snapshot()
                with lock:  # the coordinator's single-threaded merge
                    parent.merge(snapshot)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for i in range(4):
            assert parent.value("done", worker=f"w{i}") == 50
            assert parent.histogram("lat", worker=f"w{i}").count == 50


class TestExporters:
    def test_to_json_shapes(self):
        registry = MetricsRegistry()
        registry.counter("cells", state="done").inc(12)
        registry.histogram("lat").observe(0.25)
        out = registry.to_json()
        assert out["cells{state=done}"] == {"kind": "counter", "value": 12}
        assert out["lat"]["count"] == 1
        assert out["lat"]["mean"] == 0.25

    def test_to_json_empty_histogram_uses_none(self):
        registry = MetricsRegistry()
        registry.histogram("lat")
        out = registry.to_json()
        assert out["lat"]["min"] is None
        json.dumps(out)  # NaN/Inf never leak into the JSON export

    def test_prometheus_counter_line(self):
        registry = MetricsRegistry()
        registry.counter("retry.attempts").inc(4)
        text = registry.to_prometheus()
        assert "# TYPE retry_attempts counter" in text
        assert "retry_attempts 4" in text

    def test_prometheus_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_prometheus_labels_quoted(self):
        registry = MetricsRegistry()
        registry.counter("faults.injected", kind="transient").inc()
        assert 'faults_injected{kind="transient"} 1' in registry.to_prometheus()

    def test_prometheus_label_values_escaped(self):
        # Backslash, double quote and newline are the three characters
        # the text exposition format requires escaping in label values.
        registry = MetricsRegistry()
        registry.counter("jobs", path='C:\\tmp\\"run"\nnext').inc()
        text = registry.to_prometheus()
        assert (
            'jobs{path="C:\\\\tmp\\\\\\"run\\"\\nnext"} 1' in text
        )
        assert "\nnext" not in text.replace("\\n", "")  # no raw newline

    def test_json_export_unescaped(self):
        # The JSON exporter must stay byte-stable: escaping is a
        # Prometheus text-format concern only.
        registry = MetricsRegistry()
        registry.counter("jobs", path='a\\b"c').inc()
        out = registry.to_json()
        assert out['jobs{path=a\\b"c}'] == {"kind": "counter", "value": 1}

    def test_write_json_by_extension(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        path = registry.write(tmp_path / "metrics.json")
        assert json.loads(path.read_text())["n"]["value"] == 1
        assert not (tmp_path / "metrics.json.tmp").exists()

    def test_write_prometheus_by_extension(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        path = registry.write(tmp_path / "metrics.prom")
        assert "# TYPE n counter" in path.read_text()


class TestGlobalRegistry:
    def test_scoped_registry_isolates(self):
        outer = get_registry()
        with scoped_registry() as inner:
            assert get_registry() is inner
            get_registry().counter("scoped.probe").inc()
        assert get_registry() is outer
        assert inner.value("scoped.probe") == 1
