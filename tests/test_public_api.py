"""The top-level package exposes the documented public surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self, small_dataset, cycles_pool, space):
        """The README quickstart, condensed."""
        models = cycles_pool.models(exclude=["applu"])
        predictor = repro.ArchitectureCentricPredictor(models)
        responses, _ = small_dataset.split_indices(32, seed=1)
        predictor.fit_responses(
            small_dataset.subset_configs(responses),
            small_dataset.subset_values("applu", repro.Metric.CYCLES,
                                        responses),
        )
        prediction = predictor.predict_one(space.baseline)
        actual = small_dataset.simulator.simulate(
            small_dataset.suite["applu"], space.baseline
        ).cycles
        assert abs(prediction - actual) / actual < 0.5

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.designspace
        import repro.exploration
        import repro.ml
        import repro.runtime
        import repro.search
        import repro.serve
        import repro.sim
        import repro.sim.pipeline
        import repro.workloads
