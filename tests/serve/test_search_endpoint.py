"""The /search endpoint: round-trips, validation, determinism."""

from __future__ import annotations

import pytest

from repro.serve import ServerError


class TestSearchEndpoint:
    def test_round_trip(self, harness):
        server = harness()
        with server.client() as client:
            payload = client.search(agent="hill", budget=24, batch=8, seed=1)
        assert payload["agent"] == "hill"
        assert payload["spent"] == 24
        assert payload["metric"] == "cycles"
        assert payload["frontier_size"] >= 1
        best = payload["best"]["cycles"]
        assert best["value"] > 0
        assert set(best["configuration"]) >= {"width", "rob_size"}
        assert payload["model"] == server.server.model_info

    def test_deterministic_for_seed(self, harness):
        server = harness()
        with server.client() as client:
            first = client.search(agent="random", budget=16, seed=7)
            second = client.search(agent="random", budget=16, seed=7)
        assert first["best"] == second["best"]
        assert first["frontier"] == second["frontier"]

    def test_best_is_at_least_as_good_as_baseline(self, harness):
        server = harness()
        with server.client() as client:
            payload = client.search(agent="hill", budget=24, seed=0)
            baseline = client.predict_one({})
        assert payload["best"]["cycles"]["value"] <= baseline

    def test_unknown_agent_is_400(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client.search(agent="gradient", budget=16)
        assert excinfo.value.status == 400
        assert "unknown agent" in excinfo.value.message

    def test_budget_bounds_enforced(self, harness):
        server = harness()
        with server.client() as client:
            for budget in (0, 1, 1_000_000):
                with pytest.raises(ServerError) as excinfo:
                    client.search(budget=budget)
                assert excinfo.value.status == 400

    def test_wrong_objective_is_400(self, harness):
        import http.client
        import json

        server = harness()
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )
        try:
            connection.request(
                "POST", "/search",
                body=json.dumps({"objective": "energy"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = response.read()
        finally:
            connection.close()
        assert response.status == 400
        assert b"predicts" in body

    def test_unknown_option_is_400(self, harness):
        import http.client
        import json

        server = harness()
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )
        try:
            connection.request(
                "POST", "/search",
                body=json.dumps({"temperature": 1.0}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = response.read()
        finally:
            connection.close()
        assert response.status == 400
        assert b"unknown search options" in body

    def test_get_method_rejected(self, harness):
        import http.client

        server = harness()
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )
        try:
            connection.request("GET", "/search")
            response = connection.getresponse()
            response.read()
        finally:
            connection.close()
        assert response.status == 405

    def test_draining_server_rejects_search(self, harness):
        server = harness()
        client = server.client()
        client.search(budget=8)  # warm connection while healthy
        server.drain()
        # A kept-alive connection gets a 503; a torn-down one refuses.
        with pytest.raises((ServerError, OSError)) as excinfo:
            client.search(budget=8)
        if isinstance(excinfo.value, ServerError):
            assert excinfo.value.status == 503
        client.close()
