"""Synthetic instruction trace generation for the pipeline simulator.

The detailed out-of-order simulator (:mod:`repro.sim.pipeline`) is
trace-driven.  This module synthesises a dynamic instruction stream from
a :class:`~repro.workloads.profile.WorkloadProfile`:

* operation classes are drawn from the instruction mix;
* register dataflow follows a geometric dependency-distance model tuned
  to the profile's ILP curve (short distances -> serial code, long
  distances -> independent work for the window to find);
* data addresses are drawn from a working-set region model consistent
  with the profile's locality mixture;
* instruction addresses walk basic blocks sequentially and jump on taken
  branches within the profile's code footprint;
* branch outcomes come from a static-branch population with per-branch
  bias, so a real gshare predictor can (and must) learn them.

Traces are deterministic given (profile, seed, length).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional, Tuple

import numpy as np

from .profile import WorkloadProfile, stable_seed

#: Cache line size assumed by the address generators (bytes).
LINE_BYTES = 32
#: Architected registers per file (int and fp each).
LOGICAL_REGISTERS = 32


class OpClass(Enum):
    """Operation classes recognised by the pipeline simulator."""

    INT_ALU = auto()
    INT_MUL = auto()
    FP_ALU = auto()
    FP_MUL = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ALU, OpClass.FP_MUL)


@dataclass
class TraceInstruction:
    """One dynamic instruction of a synthetic trace."""

    __slots__ = (
        "index",
        "op",
        "pc",
        "dest",
        "sources",
        "address",
        "branch_id",
        "taken",
    )

    index: int
    op: OpClass
    pc: int
    dest: Optional[int]
    sources: Tuple[int, ...]
    address: Optional[int]
    branch_id: Optional[int]
    taken: Optional[bool]


class TraceGenerator:
    """Deterministic synthetic trace generator for one profile."""

    def __init__(self, profile: WorkloadProfile, seed: Optional[int] = None) -> None:
        self.profile = profile
        if seed is None:
            seed = stable_seed(profile.suite, profile.name, "trace")
        self._rng = np.random.default_rng(seed)
        self._op_classes = list(OpClass)
        self._op_probabilities = np.array(profile.mix.as_tuple(), dtype=float)
        self._op_probabilities /= self._op_probabilities.sum()

        # Dependency distances: geometric with a mean tied to how much of
        # the ILP curve a moderate window unlocks; serial programs have
        # short producer->consumer distances.
        self._dependency_mean = max(2.0, profile.ilp_window_scale / 6.0)

        # Data regions: each working set becomes an address region whose
        # access probability scales with its miss weight; residual
        # probability goes to a small hot region.
        regions: List[Tuple[int, float]] = []
        base = 1 << 30
        total_weight = 0.0
        for size_bytes, weight in profile.data_locality.working_sets:
            lines = max(4, int(size_bytes // LINE_BYTES))
            probability = min(0.9, weight)
            regions.append((lines, probability))
            total_weight += probability
        hot_probability = max(0.05, 1.0 - total_weight)
        regions.append((64, hot_probability))
        probabilities = np.array([p for _, p in regions], dtype=float)
        probabilities /= probabilities.sum()
        self._region_lines = [lines for lines, _ in regions]
        self._region_bases = [
            base + i * (1 << 26) for i in range(len(regions))
        ]
        self._region_probabilities = probabilities

        # Static branch population.  Most branches are loop back-edges
        # (strongly biased taken, short backward targets) so the code
        # actually loops: predictors train on revisited sites and the
        # I-cache sees a hot working set, as in real programs.  The rest
        # are data-dependent branches whose bias hardness tracks the
        # profile's irreducible misprediction floor.
        count = profile.branches.static_branches
        is_loop = self._rng.random(count) < 0.65
        hardness = np.clip(profile.branches.floor * 8.0, 0.05, 0.9)
        data_bias = self._rng.beta(0.4, 0.4, size=count)
        easy = np.where(data_bias > 0.5, 0.97, 0.03)
        hard_mask = self._rng.random(count) < hardness
        self._branch_bias = np.where(hard_mask, data_bias, easy)
        self._branch_is_loop = is_loop
        # Loop branches follow a trip-count pattern: taken (trip - 1)
        # times, then not taken once, with a small data-dependent noise
        # flip.  History-based predictors can learn the exits, so bigger
        # gshare tables genuinely help, as on real codes.
        self._trip_counts = self._rng.integers(3, 25, size=count)
        self._trip_positions = np.zeros(count, dtype=np.int64)
        self._loop_noise = np.clip(
            profile.branches.floor * 0.5
            + self._rng.uniform(0.0, 0.02, size=count),
            0.0,
            0.2,
        )
        # Loop back-edges jump a few basic blocks backward; other taken
        # branches jump a short distance forward.
        self._back_bytes = (
            np.maximum(1, self._rng.geometric(1.0 / 10.0, size=count)) * 16
        )
        self._forward_bytes = (
            np.maximum(1, self._rng.geometric(1.0 / 6.0, size=count)) * 16
        )
        footprint_lines = max(
            64, int(profile.instruction_locality.footprint // LINE_BYTES)
        )
        self._code_bytes = footprint_lines * LINE_BYTES

    def generate(self, length: int) -> List[TraceInstruction]:
        """Generate a trace of ``length`` dynamic instructions."""
        if length <= 0:
            raise ValueError("length must be positive")
        rng = self._rng
        profile = self.profile

        ops = rng.choice(
            len(self._op_classes), size=length, p=self._op_probabilities
        )
        dep_distances = rng.geometric(
            1.0 / self._dependency_mean, size=(length, 2)
        )
        region_choices = rng.choice(
            len(self._region_lines), size=length, p=self._region_probabilities
        )
        line_draws = rng.random(length)
        outcome_draws = rng.random(length)
        source_counts_fp = rng.random(length)

        trace: List[TraceInstruction] = []
        # dest register of each previous instruction, for dataflow.
        recent_dests: List[Optional[int]] = []
        pc = 0
        next_logical = 0
        for i in range(length):
            op = self._op_classes[int(ops[i])]

            # Register dataflow -------------------------------------------------
            sources: List[int] = []
            source_count = 2 if source_counts_fp[i] < 0.6 else 1
            if op is OpClass.BRANCH:
                source_count = 1
            for s in range(source_count):
                distance = int(dep_distances[i, s])
                if op is OpClass.BRANCH:
                    # Branch conditions hang off short side-chains (loop
                    # counters, compare results), not the program's
                    # longest dependency chain, so they resolve early.
                    distance = 24 + distance
                producer = i - distance
                if 0 <= producer < len(recent_dests):
                    dest = recent_dests[producer]
                    if dest is not None:
                        sources.append(dest)
                        continue
                # No in-flight producer: read an architected register.
                sources.append(int(line_draws[i] * LOGICAL_REGISTERS) % LOGICAL_REGISTERS)

            dest: Optional[int] = None
            if op not in (OpClass.STORE, OpClass.BRANCH):
                dest = next_logical
                next_logical = (next_logical + 1) % LOGICAL_REGISTERS

            # Memory address ----------------------------------------------------
            address: Optional[int] = None
            if op.is_memory:
                # Power-law reuse inside each region: the head of the
                # region is touched far more often than the tail, giving
                # a realistic stack-distance profile (uniform access
                # would make every touch effectively cold).
                region = int(region_choices[i])
                position = line_draws[i] ** 2.5
                line = int(position * self._region_lines[region])
                address = self._region_bases[region] + line * LINE_BYTES

            # Branches ----------------------------------------------------------
            branch_id: Optional[int] = None
            taken: Optional[bool] = None
            if op is OpClass.BRANCH:
                # The static branch is a deterministic function of the
                # code address, as in a real program: the same location
                # always holds the same branch, so a history-based
                # predictor can learn its behaviour.
                branch_id = (pc // 16) % len(self._branch_bias)
                if self._branch_is_loop[branch_id]:
                    trip = int(self._trip_counts[branch_id])
                    position = int(self._trip_positions[branch_id])
                    taken = (position % trip) != (trip - 1)
                    self._trip_positions[branch_id] = position + 1
                    if outcome_draws[i] < self._loop_noise[branch_id]:
                        taken = not taken
                else:
                    taken = bool(
                        outcome_draws[i] < self._branch_bias[branch_id]
                    )

            instruction = TraceInstruction(
                index=i,
                op=op,
                pc=pc,
                dest=dest,
                sources=tuple(sources),
                address=address,
                branch_id=branch_id,
                taken=taken,
            )
            trace.append(instruction)
            recent_dests.append(dest)

            # Instruction address walk -----------------------------------------
            if op is OpClass.BRANCH and taken:
                if self._branch_is_loop[branch_id]:
                    pc = max(0, pc - int(self._back_bytes[branch_id]))
                else:
                    pc = (pc + int(self._forward_bytes[branch_id])) % self._code_bytes
            else:
                pc = (pc + 4) % self._code_bytes
        return trace


def generate_trace(
    profile: WorkloadProfile, length: int, seed: Optional[int] = None
) -> List[TraceInstruction]:
    """Convenience wrapper: build a generator and produce one trace."""
    return TraceGenerator(profile, seed=seed).generate(length)
