"""Tests for trained-pool save/load round-tripping."""

import numpy as np
import pytest

from repro.core import ArchitectureCentricPredictor, load_models, save_models
from repro.sim import Metric


@pytest.fixture()
def archive(tmp_path, cycles_pool):
    models = cycles_pool.models()
    return save_models(models, tmp_path / "pool.npz"), models


class TestRoundTrip:
    def test_predictions_identical(self, archive, small_dataset, space):
        path, originals = archive
        restored = load_models(path, space)
        probe = list(small_dataset.configs[:30])
        for original, clone in zip(originals, restored):
            assert clone.program == original.program
            assert np.allclose(clone.predict(probe), original.predict(probe))

    def test_metadata_restored(self, archive, space):
        path, originals = archive
        restored = load_models(path, space)
        for original, clone in zip(originals, restored):
            assert clone.metric is original.metric
            assert clone.training_size_ == original.training_size_
            assert clone.log_target == original.log_target

    def test_restored_pool_drives_the_predictor(self, archive,
                                                small_dataset, space):
        path, _ = archive
        restored = [
            model for model in load_models(path, space)
            if model.program != "applu"
        ]
        predictor = ArchitectureCentricPredictor(restored)
        idx, rest = small_dataset.split_indices(32, seed=44)
        predictor.fit_responses(
            small_dataset.subset_configs(idx),
            small_dataset.subset_values("applu", Metric.CYCLES, idx),
        )
        scores = predictor.evaluate(
            small_dataset.subset_configs(rest),
            small_dataset.subset_values("applu", Metric.CYCLES, rest),
        )
        assert scores["correlation"] > 0.8


class TestValidation:
    def test_empty_pool_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_models([], tmp_path / "pool.npz")

    def test_mixed_metrics_rejected(self, tmp_path, cycles_pool,
                                    small_dataset):
        from repro.core import TrainingPool
        energy_pool = TrainingPool(
            small_dataset, Metric.ENERGY, training_size=64, seed=1
        )
        mixed = [cycles_pool.model("gzip"), energy_pool.model("gzip")]
        with pytest.raises(ValueError, match="same metric"):
            save_models(mixed, tmp_path / "pool.npz")

    def test_untrained_network_export_rejected(self):
        from repro.ml import MultilayerPerceptron
        with pytest.raises(RuntimeError):
            MultilayerPerceptron().get_weights()

    def test_incomplete_weights_rejected(self):
        from repro.ml import MultilayerPerceptron
        with pytest.raises(ValueError, match="missing"):
            MultilayerPerceptron().set_weights({"hidden_weights": np.ones(2)})


@pytest.fixture()
def fitted(cycles_pool, small_dataset):
    models = cycles_pool.models(exclude=["swim"])
    predictor = ArchitectureCentricPredictor(models)
    idx, holdout = small_dataset.split_indices(24, seed=3)
    predictor.fit_responses(
        small_dataset.subset_configs(idx),
        small_dataset.subset_values("swim", Metric.CYCLES, idx),
    )
    probe = small_dataset.subset_configs(holdout)[:40]
    return predictor, probe


class TestPredictorRoundTrip:
    def test_predictions_bit_identical(self, fitted, tmp_path, space):
        from repro.core import load_predictor, save_predictor

        predictor, probe = fitted
        path = save_predictor(predictor, tmp_path / "fitted.npz")
        restored = load_predictor(path, space)
        assert np.array_equal(
            restored.predict(probe), predictor.predict(probe)
        )
        assert np.array_equal(
            restored.predict_invariant(probe),
            predictor.predict_invariant(probe),
        )

    def test_fit_metadata_survives(self, fitted, tmp_path, space):
        from repro.core import load_predictor, save_predictor

        predictor, _ = fitted
        path = save_predictor(predictor, tmp_path / "fitted.npz")
        restored = load_predictor(path, space)
        assert restored.training_error_ == predictor.training_error_
        assert restored.response_count_ == predictor.response_count_
        assert restored._regressor.ridge == predictor._regressor.ridge

    def test_unfitted_predictor_rejected(self, cycles_pool, tmp_path):
        from repro.core import save_predictor

        unfitted = ArchitectureCentricPredictor(cycles_pool.models())
        with pytest.raises(RuntimeError, match="fit_responses"):
            save_predictor(unfitted, tmp_path / "nope.npz")

    def test_bare_pool_rejected_by_load_predictor(self, cycles_pool,
                                                  tmp_path, space):
        from repro.core import load_predictor

        path = save_models(cycles_pool.models(), tmp_path / "pool.npz")
        with pytest.raises(ValueError, match="load_models instead"):
            load_predictor(path, space)

    def test_corrupt_predictor_artifact_rejected(self, fitted, tmp_path):
        from repro.core import load_predictor, save_predictor

        predictor, _ = fitted
        path = save_predictor(predictor, tmp_path / "fitted.npz")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            load_predictor(path)


class TestLegacyPool:
    def test_v1_archive_still_loads(self, cycles_pool, tmp_path, space,
                                    small_dataset):
        """Pre-checksum pools (format 1) remain readable."""
        from repro.core.persistence import _pool_payload

        models = cycles_pool.models()
        payload = _pool_payload(models)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, format_version=np.array(1), **payload)
        restored = load_models(path, space)
        probe = list(small_dataset.configs[:20])
        for original, clone in zip(models, restored):
            assert clone.program == original.program
            assert np.array_equal(
                clone.predict(probe), original.predict(probe)
            )
