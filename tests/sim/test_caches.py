"""Tests for the analytic cache hierarchy model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import effective_capacity, hierarchy_miss_ratios
from repro.sim.caches import misses_per_kilo_instruction
from repro.workloads import LocalityModel


@pytest.fixture(scope="module")
def locality() -> LocalityModel:
    return LocalityModel(
        working_sets=((64 * 1024, 0.05), (4 * 1024 * 1024, 0.10)),
        cold=0.004,
    )


class TestEffectiveCapacity:
    def test_less_than_physical(self):
        assert effective_capacity(32 * 1024, 2) < 32 * 1024

    def test_grows_with_associativity(self):
        direct = effective_capacity(32 * 1024, 1)
        eight_way = effective_capacity(32 * 1024, 8)
        assert eight_way > direct

    def test_invalid_associativity(self):
        with pytest.raises(ValueError):
            effective_capacity(1024, 0)


class TestHierarchy:
    def test_l1_miss_decreases_with_l1_size(self, locality):
        sizes = np.array([8, 16, 32, 64, 128]) * 1024.0
        ratios = hierarchy_miss_ratios(locality, sizes, 2 * 1024 * 1024)
        assert np.all(np.diff(ratios.l1) < 0)

    def test_l2_local_decreases_with_l2_size(self, locality):
        sizes = np.array([256, 512, 1024, 2048, 4096]) * 1024.0
        ratios = hierarchy_miss_ratios(locality, 32 * 1024, sizes)
        assert np.all(np.diff(ratios.l2_local) <= 1e-12)

    def test_local_ratio_is_probability(self, locality):
        ratios = hierarchy_miss_ratios(locality, 32 * 1024, 2 * 1024 * 1024)
        assert 0.0 <= float(ratios.l2_local) <= 1.0

    def test_global_is_product(self, locality):
        ratios = hierarchy_miss_ratios(locality, 32 * 1024, 2 * 1024 * 1024)
        assert float(ratios.l2_global) == pytest.approx(
            float(ratios.l1) * float(ratios.l2_local)
        )

    def test_inclusive_hierarchy_filters(self, locality):
        """References reaching memory <= references missing L1."""
        ratios = hierarchy_miss_ratios(locality, 32 * 1024, 2 * 1024 * 1024)
        assert float(ratios.l2_global) <= float(ratios.l1)

    @given(
        l1_kb=st.sampled_from([8, 16, 32, 64, 128]),
        l2_kb=st.sampled_from([256, 512, 1024, 2048, 4096]),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_outputs_are_probabilities(self, locality, l1_kb, l2_kb):
        ratios = hierarchy_miss_ratios(
            locality, l1_kb * 1024.0, l2_kb * 1024.0
        )
        for value in (ratios.l1, ratios.l2_local, ratios.l2_global):
            assert 0.0 <= float(value) <= 1.0


class TestMpki:
    def test_conversion(self):
        assert misses_per_kilo_instruction(0.05, 0.3) == pytest.approx(15.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            misses_per_kilo_instruction(0.05, -0.1)
