"""Tests for SimPoint-like phase decomposition."""

import numpy as np
import pytest

from repro.workloads import combine_phase_metrics, decompose, spec2000_profile


class TestDecompose:
    def test_single_phase_is_identity(self):
        profile = spec2000_profile("gzip")
        phases = decompose(profile, 1)
        assert len(phases) == 1
        assert phases[0].profile == profile
        assert phases[0].weight == 1.0

    def test_weights_sum_to_one(self):
        phases = decompose(spec2000_profile("gzip"), 4)
        assert sum(p.weight for p in phases) == pytest.approx(1.0)

    def test_weights_decrease(self):
        weights = [p.weight for p in decompose(spec2000_profile("applu"), 5)]
        assert weights == sorted(weights, reverse=True)

    def test_deterministic(self):
        a = decompose(spec2000_profile("gzip"), 3)
        b = decompose(spec2000_profile("gzip"), 3)
        assert [p.weight for p in a] == [p.weight for p in b]
        assert [p.profile.ilp_max for p in a] == [p.profile.ilp_max for p in b]

    def test_phases_perturb_the_profile(self):
        profile = spec2000_profile("gzip")
        phases = decompose(profile, 3)
        ilps = {round(p.profile.ilp_max, 6) for p in phases}
        assert len(ilps) > 1

    def test_phases_keep_identity(self):
        profile = spec2000_profile("gzip")
        for phase in decompose(profile, 3):
            assert phase.profile.name == "gzip"
            assert phase.profile.suite == "spec2000"

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            decompose(spec2000_profile("gzip"), 0)


class TestCombine:
    def test_weighted_sum(self):
        values = np.array([[10.0, 20.0], [30.0, 40.0]])
        weights = np.array([0.25, 0.75])
        combined = combine_phase_metrics(values, weights)
        assert combined == pytest.approx([25.0, 35.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one weight per phase"):
            combine_phase_metrics(np.ones((3, 2)), np.array([0.5, 0.5]))

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            combine_phase_metrics(np.ones((2, 2)), np.array([0.5, 0.6]))

    def test_phase_metrics_combine_through_simulator(self, simulator, space):
        """End to end: phase-weighted cycles differ from (and bracket
        reasonably around) the parent profile's cycles."""
        profile = spec2000_profile("gzip")
        phases = decompose(profile, 3)
        config = space.baseline
        per_phase = np.array(
            [simulator.simulate(p.profile, config).cycles for p in phases]
        )
        weights = np.array([p.weight for p in phases])
        combined = float(combine_phase_metrics(per_phase, weights))
        parent = simulator.simulate(profile, config).cycles
        assert 0.5 * parent < combined < 2.0 * parent
