"""End to end: fitting the predictor on genuinely noisy MC responses.

Ablation A8 injects synthetic noise; this test goes further and feeds
the predictor responses measured by the Monte Carlo statistical
simulator — a different simulator with real sampling noise *and* model
bias — and checks the architecture-centric fit still tracks the
interval-model ground truth.
"""

import numpy as np
import pytest

from repro.core import ArchitectureCentricPredictor
from repro.ml import correlation
from repro.sim import Metric, MonteCarloSimulator
from repro.sim.montecarlo import noisy_responses


class TestMonteCarloResponses:
    def test_predictor_survives_noisy_biased_responses(
        self, cycles_pool, small_dataset, small_suite, space
    ):
        models = cycles_pool.models(exclude=["applu"])
        response_idx, holdout_idx = small_dataset.split_indices(32, seed=64)
        response_configs = small_dataset.subset_configs(response_idx)

        montecarlo = MonteCarloSimulator(
            space, window_instructions=1500, replications=6
        )
        responses = noisy_responses(
            montecarlo, small_suite["applu"], response_configs, seed=1
        )
        predictor = ArchitectureCentricPredictor(models)
        predictor.fit_responses(response_configs, responses)

        predictions = predictor.predict(
            small_dataset.subset_configs(holdout_idx)
        )
        actual = small_dataset.subset_values(
            "applu", Metric.CYCLES, holdout_idx
        )
        # Correlation survives a different, noisy response simulator
        # (absolute level inherits the MC model's bias, so only the
        # shape claim is meaningful).
        assert correlation(predictions, actual) > 0.6

    def test_mc_responses_differ_from_interval_truth(
        self, small_dataset, small_suite, space
    ):
        """Sanity: the test above is non-trivial — the MC responses are
        genuinely different numbers."""
        response_idx, _ = small_dataset.split_indices(16, seed=65)
        configs = small_dataset.subset_configs(response_idx)
        montecarlo = MonteCarloSimulator(
            space, window_instructions=1500, replications=6
        )
        mc = noisy_responses(montecarlo, small_suite["applu"], configs,
                             seed=2)
        truth = small_dataset.subset_values(
            "applu", Metric.CYCLES, response_idx
        )
        assert not np.allclose(mc, truth, rtol=0.05)
