"""Append-only on-disk journal of completed campaign cells.

The journal is the campaign's source of truth for what is already done.
Each completed (program, chunk) cell appends exactly one JSON line —
cell id, result file, content checksum — and the file is flushed and
fsynced per record, so a ``kill -9`` loses at most the cell in flight.
A half-written trailing line (the signature of an interrupted append)
is detected and ignored on read, never treated as data.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterator, List, Union


class CampaignJournal:
    """One append-only JSONL file recording completed cells.

    Args:
        path: Journal file location (parent directories are created).
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """True when a journal file is already on disk."""
        return self.path.exists()

    def append(self, record: Dict) -> None:
        """Durably append one record as a single JSON line."""
        line = json.dumps(record, sort_keys=True)
        if "\n" in line:
            raise ValueError("journal records must serialise to one line")
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> List[Dict]:
        """All intact records, oldest first (torn tail lines skipped)."""
        return list(self._iter_records())

    def _iter_records(self) -> Iterator[Dict]:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn line can only be the interrupted final append;
                # corruption anywhere else means the file was tampered
                # with and the cells after it cannot be trusted either.
                remaining = [l for l in lines[index + 1 :] if l.strip()]
                if remaining:
                    raise ValueError(
                        f"corrupt journal line {index + 1} in {self.path}"
                    )
                return
            if not isinstance(record, dict):
                raise ValueError(
                    f"journal line {index + 1} in {self.path} is not an "
                    "object"
                )
            yield record
