"""Definitions of individual microarchitectural design parameters.

A :class:`Parameter` describes one axis of the design space of Table 1 in
the paper: its name, the grid of values it may take, the baseline value,
and how the value is encoded into the 13-element feature vector consumed
by the machine-learning models (the paper encodes the baseline machine as
``x_baseline = (4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2)``, i.e.
caches in KB/MB and predictor tables in K-entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Parameter:
    """One microarchitectural design parameter.

    Attributes:
        name: Machine-readable identifier (e.g. ``"rob_size"``).
        label: Human-readable label used when rendering Table 1.
        values: The ordered grid of raw values the parameter can take.
            Raw values are in natural units (entries, bytes, ports).
        baseline: The raw value used by the paper's baseline machine.
        unit: Unit of the raw values, for table rendering.
        encoding_divisor: Raw values are divided by this when building
            the model feature vector, reproducing the paper's encoding
            (e.g. a 16384-entry gshare encodes as ``16``).
    """

    name: str
    label: str
    values: Tuple[int, ...]
    baseline: int
    unit: str = ""
    encoding_divisor: int = 1

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has an empty value grid")
        if list(self.values) != sorted(set(self.values)):
            raise ValueError(
                f"parameter {self.name!r} values must be strictly increasing"
            )
        if self.baseline not in self.values:
            raise ValueError(
                f"baseline {self.baseline} of parameter {self.name!r} is not "
                f"on its value grid {self.values}"
            )
        if self.encoding_divisor <= 0:
            raise ValueError("encoding_divisor must be positive")

    @property
    def cardinality(self) -> int:
        """Number of distinct values this parameter can take."""
        return len(self.values)

    @property
    def minimum(self) -> int:
        """Smallest raw value on the grid."""
        return self.values[0]

    @property
    def maximum(self) -> int:
        """Largest raw value on the grid."""
        return self.values[-1]

    def index_of(self, value: int) -> int:
        """Return the grid index of ``value``.

        Raises:
            ValueError: if ``value`` is not on the grid.
        """
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value} is not a legal value for parameter {self.name!r}; "
                f"legal values are {self.values}"
            ) from None

    def encode(self, value: int) -> float:
        """Encode a raw value as a model feature (paper's unit convention)."""
        self.index_of(value)  # validate
        return value / self.encoding_divisor

    def decode(self, feature: float) -> int:
        """Invert :meth:`encode`, snapping to the nearest grid value."""
        raw = feature * self.encoding_divisor
        return min(self.values, key=lambda v: abs(v - raw))

    def describe_range(self) -> str:
        """Render the value range the way Table 1 does (min-max : step)."""
        if self.cardinality == 1:
            return str(self.values[0])
        steps = {b - a for a, b in zip(self.values, self.values[1:])}
        if len(steps) == 1:
            step = steps.pop()
            return f"{self.minimum}-{self.maximum} : {step}"
        ratios = {
            b / a for a, b in zip(self.values, self.values[1:]) if a != 0
        }
        if len(ratios) == 1:
            return f"{self.minimum}-{self.maximum} : x{int(ratios.pop())}"
        return ",".join(str(v) for v in self.values)


def geometric_grid(start: int, stop: int, factor: int = 2) -> Tuple[int, ...]:
    """Build a geometric value grid ``start, start*factor, ..., stop``."""
    if start <= 0 or factor <= 1:
        raise ValueError("geometric grids need start > 0 and factor > 1")
    values = []
    value = start
    while value <= stop:
        values.append(value)
        value *= factor
    if not values or values[-1] != stop:
        raise ValueError(
            f"stop {stop} is not reachable from {start} with factor {factor}"
        )
    return tuple(values)


def linear_grid(start: int, stop: int, step: int) -> Tuple[int, ...]:
    """Build a linear value grid ``start, start+step, ..., stop``."""
    if step <= 0:
        raise ValueError("step must be positive")
    if (stop - start) % step != 0:
        raise ValueError(f"stop {stop} not on grid from {start} step {step}")
    return tuple(range(start, stop + 1, step))
