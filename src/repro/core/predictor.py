"""The architecture-centric predictor — the paper's contribution.

Section 5.3: the design space of a *new* program is modelled as a linear
combination of the design spaces of previously seen programs.  Offline,
one program-specific ANN is trained per training program (T simulations
each).  Online, the new program is simulated at only R configurations
(the *responses*); a linear regressor is fitted mapping the training
models' predictions at those configurations to the new program's
responses.  Predicting any point of the 18-billion-point space is then
one forward pass through N small ANNs and a weighted sum.

The training error of the linear fit doubles as a confidence signal
(Section 7.2): a program whose responses the combination cannot fit —
art, mcf — will also predict poorly, telling the architect to fall back
to a program-specific model.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.ml.ensemble import StackedEnsemble
from repro.ml.linear import LinearRegressor
from repro.ml.metrics import correlation, rmae
from repro.obs import get_registry, span
from repro.sim.metrics import Metric

from .program_model import ProgramSpecificPredictor


class ArchitectureCentricPredictor:
    """Cross-program predictor built from offline-trained program models.

    Args:
        program_models: Trained :class:`ProgramSpecificPredictor` objects,
            one per offline training program, all for the same metric.
        ridge: Ridge penalty of the combining regressor.  The default
            of 0.05 matters: with N ~ 25 training programs and R = 32
            responses the least-squares problem sits near the
            interpolation threshold, where an unregularised fit has a
            classic variance peak (predicting *worse* at R = 32 than at
            R = 8); a modest ridge flattens it (ablation A2 sweeps this).
    """

    def __init__(
        self,
        program_models: Sequence[ProgramSpecificPredictor],
        ridge: float = 0.05,
    ) -> None:
        if not program_models:
            raise ValueError("at least one trained program model is required")
        metrics = {model.metric for model in program_models}
        if len(metrics) != 1:
            raise ValueError(
                f"all program models must target the same metric, got {metrics}"
            )
        self.metric: Metric = program_models[0].metric
        self.program_models: List[ProgramSpecificPredictor] = list(program_models)
        self._regressor = LinearRegressor(fit_intercept=True, ridge=ridge)
        self._fitted = False
        self.training_error_: float = float("nan")
        self.response_count_: int = 0
        self._ensemble: Optional[StackedEnsemble] = None
        self._ensemble_built = False

    # ------------------------------------------------------------------
    # Fitting on responses
    # ------------------------------------------------------------------
    def _model_matrix(self, configs: Sequence[Configuration]) -> np.ndarray:
        """(n, N) matrix of each program model's predictions.

        Predictions are taken in log10 space so that the combination
        weighs programs by shape rather than by sheer magnitude, and the
        final prediction is mapped back to raw units.

        The matrix is produced by a :class:`StackedEnsemble` — one
        encode and one batched forward pass instead of N per-model
        passes — whenever the pool stacks (trained models sharing one
        network shape and design space, the normal case).  The result
        is bit-identical to the per-model loop, which remains as the
        fallback for heterogeneous pools.
        """
        ensemble = self._stacked_ensemble()
        if ensemble is not None:
            return ensemble.log_model_matrix(configs)
        columns = [model.predict(configs) for model in self.program_models]
        return np.log10(np.stack(columns, axis=1))

    def _stacked_ensemble(self) -> Optional[StackedEnsemble]:
        """The stacked fast path, built lazily on first prediction."""
        if not self._ensemble_built:
            self._ensemble_built = True
            self._ensemble = StackedEnsemble.maybe_from_models(
                self.program_models
            )
        return self._ensemble

    def fit_responses(
        self,
        response_configs: Sequence[Configuration],
        response_values: np.ndarray,
    ) -> "ArchitectureCentricPredictor":
        """Fit the combining regressor on the new program's responses.

        Args:
            response_configs: The R simulated configurations.
            response_values: The new program's measured metric at those
                configurations.
        """
        response_values = np.asarray(response_values, dtype=float).reshape(-1)
        if len(response_configs) != response_values.shape[0]:
            raise ValueError(
                f"configs and values disagree on sample count: "
                f"{len(response_configs)} configurations vs "
                f"{response_values.shape[0]} values"
            )
        if len(response_configs) < 2:
            raise ValueError("at least two responses are required")
        if not np.all(np.isfinite(response_values)):
            bad = int(np.sum(~np.isfinite(response_values)))
            raise ValueError(
                f"{bad} response value(s) are NaN/Inf; refusing to fit on "
                "non-finite metrics (check the simulation backend)"
            )
        if np.any(response_values <= 0.0):
            raise ValueError("metric values must be positive")

        with span(
            "predict.fit_responses", responses=len(response_configs),
            models=len(self.program_models),
        ):
            design = self._model_matrix(response_configs)
            targets = np.log10(response_values)
            self._regressor.fit(design, targets)
        self._fitted = True
        self.response_count_ = len(response_configs)
        # Reuse the design matrix for the training error instead of
        # recomputing every model's predictions through self.predict.
        self.training_error_ = rmae(
            self._predict_from_design(design), response_values
        )
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Predict the new program's metric anywhere in the space.

        Batch timing lands in the ``predict.batch.seconds`` histogram
        and the ``predict.configs`` counter — metric bumps rather than
        spans, because tight ``predict_one`` loops would otherwise
        flood the trace.
        """
        if not self._fitted:
            raise RuntimeError(
                "the predictor has not been fitted on responses yet"
            )
        start = time.perf_counter()
        result = self._predict_from_design(self._model_matrix(configs))
        registry = get_registry()
        registry.histogram("predict.batch.seconds").observe(
            time.perf_counter() - start
        )
        registry.counter("predict.configs").inc(len(configs))
        return result

    def predict_invariant(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Batch-composition-invariant predictions (the serving path).

        Identical weights to :meth:`predict`, but every stage — the
        stacked member forward, the log10 design matrix, the combining
        regressor — uses operations whose per-row rounding is
        independent of what else shares the batch (see
        :meth:`~repro.ml.ensemble.StackedEnsemble.predict_features_invariant`).
        A configuration's prediction is therefore a pure function of
        the configuration: predicting it alone, inside any coalesced
        batch, or from a cache all yield the same bits.  The inference
        server (:mod:`repro.serve`) routes every request through this
        method, which is what makes its request coalescing and its
        per-configuration LRU cache exact rather than approximately
        right.  Agreement with :meth:`predict` is within BLAS rounding
        (last ulp), not bit-exact.

        Raises:
            RuntimeError: if unfitted, or if the pool does not stack
                (heterogeneous pools have no invariant fast path).
        """
        if not self._fitted:
            raise RuntimeError(
                "the predictor has not been fitted on responses yet"
            )
        ensemble = self._stacked_ensemble()
        if ensemble is None:
            raise RuntimeError(
                "batch-invariant prediction needs a stackable model pool "
                "(homogeneous trained networks sharing one design space)"
            )
        start = time.perf_counter()
        design = ensemble.log_model_matrix_invariant(configs)
        log_prediction = self._regressor.predict_invariant(design)
        result = np.power(10.0, np.clip(log_prediction, -30.0, 30.0))
        registry = get_registry()
        registry.histogram("predict.batch.seconds").observe(
            time.perf_counter() - start
        )
        registry.counter("predict.configs").inc(len(configs))
        return result

    def _predict_from_design(self, design: np.ndarray) -> np.ndarray:
        """Combine an already computed (n, N) design matrix."""
        log_prediction = self._regressor.predict(design)
        return np.power(10.0, np.clip(log_prediction, -30.0, 30.0))

    def predict_one(self, config: Configuration) -> float:
        """Predict a single configuration."""
        return float(self.predict([config])[0])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def training_error(self) -> float:
        """rmae (%) of the fit on the responses — the confidence signal."""
        if not self._fitted:
            raise RuntimeError(
                "the predictor has not been fitted on responses yet"
            )
        return self.training_error_

    @property
    def program_weights(self) -> Dict[str, float]:
        """Fitted combination weight per training program."""
        if not self._fitted:
            raise RuntimeError(
                "the predictor has not been fitted on responses yet"
            )
        return {
            model.program: float(weight)
            for model, weight in zip(
                self.program_models, self._regressor.coefficients
            )
        }

    def evaluate(
        self,
        configs: Sequence[Configuration],
        actual_values: np.ndarray,
    ) -> Dict[str, float]:
        """rmae and correlation against held-out simulated truth."""
        predictions = self.predict(configs)
        return {
            "rmae": rmae(predictions, actual_values),
            "correlation": correlation(predictions, actual_values),
        }
