"""Ablation A6: the related-work baseline family under equal budgets.

Section 9.4 of the paper groups the prior program-specific predictors
into linear-regression, spline-regression and ANN families and argues
all of them share the same flaw: they need many simulations *per
program*.  This ablation fits all three families at increasing budgets
and places the architecture-centric model (at its fixed 32 responses)
on the same axis.
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import (
    LinearBaselinePredictor,
    SplineBaselinePredictor,
    evaluate_on_program,
)
from repro.core.program_model import ProgramSpecificPredictor
from repro.exploration import format_series, scale_banner
from repro.ml import correlation, rmae
from repro.sim import Metric
from repro.workloads.profile import stable_seed

PROGRAMS = ("gzip", "applu", "swim", "art")
BUDGETS = (32, 128, 512)

_FAMILIES = {
    "linear (Joseph et al.)": LinearBaselinePredictor,
    "spline (Lee & Brooks)": SplineBaselinePredictor,
    "ANN (Ipek et al.)": ProgramSpecificPredictor,
}


def test_ablation_baselines(benchmark, spec_dataset, pools, record_artifact):
    pool = pools(Metric.CYCLES)
    space = spec_dataset.simulator.space

    def run():
        series = {name: [] for name in _FAMILIES}
        corr_series = {name: [] for name in _FAMILIES}
        for budget in BUDGETS:
            for name, family in _FAMILIES.items():
                errors, correlations = [], []
                for program in PROGRAMS:
                    train_idx, test_idx = spec_dataset.split_indices(
                        budget,
                        seed=stable_seed("a6", program, str(budget)),
                    )
                    kwargs = {}
                    if family is ProgramSpecificPredictor:
                        kwargs["seed"] = stable_seed("a6-net", program)
                    model = family(
                        space, Metric.CYCLES, program, **kwargs
                    ).fit(
                        spec_dataset.subset_configs(train_idx),
                        spec_dataset.subset_values(
                            program, Metric.CYCLES, train_idx
                        ),
                    )
                    predictions = model.predict(
                        spec_dataset.subset_configs(test_idx)
                    )
                    actual = spec_dataset.subset_values(
                        program, Metric.CYCLES, test_idx
                    )
                    errors.append(rmae(predictions, actual))
                    correlations.append(correlation(predictions, actual))
                series[name].append(float(np.mean(errors)))
                corr_series[name].append(float(np.mean(correlations)))

        ours = [
            evaluate_on_program(
                pool.models(exclude=[program]), spec_dataset, program,
                responses=RESPONSES,
                seed=stable_seed("a6-ours", program),
            )
            for program in PROGRAMS
        ]
        ours_rmae = float(np.mean([score.rmae for score in ours]))
        ours_corr = float(np.mean([score.correlation for score in ours]))
        return series, corr_series, ours_rmae, ours_corr

    series, corr_series, ours_rmae, ours_corr = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    text = (
        scale_banner(
            "Ablation A6 — program-specific families vs budget "
            "(architecture-centric fixed at 32 responses)",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, programs=len(PROGRAMS),
        )
        + "\n\nrmae (%)\n"
        + format_series("sims", list(BUDGETS), series)
        + "\n\ncorrelation\n"
        + format_series("sims", list(BUDGETS), corr_series)
        + f"\n\narchitecture-centric @ {RESPONSES} responses: "
        f"rmae {ours_rmae:.1f}%, corr {ours_corr:.3f}"
    )
    record_artifact("ablation_baselines", text)

    # At a 32-simulation budget every program-specific family loses to
    # the architecture-centric model.
    for name in _FAMILIES:
        assert ours_rmae < series[name][0]
        assert ours_corr > corr_series[name][0]
    # The spline family beats plain linear (as its authors report).
    assert series["spline (Lee & Brooks)"][-1] < series["linear (Joseph et al.)"][-1]
