"""The gym-style design-space environment over a predictor backend.

ArchGym's framing (PAPERS.md): a trained cost model is the cheap inner
loop of an optimizer, wrapped as an *environment* any agent can drive —
``reset()``, ``step(config)``, observation out.  Here the environment
wraps a :class:`~repro.designspace.space.DesignSpace` plus a metric
*oracle* (fitted predictors, or the interval simulator for ground-truth
oracle studies), charges every evaluation against a fixed budget, and
feeds an incremental :class:`~repro.search.pareto.ParetoArchive` so all
agents share identical frontier bookkeeping.

Batch stepping is first-class: :meth:`DesignSpaceEnv.step_batch` makes
one oracle call per objective for the whole batch, which rides the
stacked-ensemble vectorised inference path — and returns *exactly* the
numbers a direct ``predictor.predict(configs)`` call would (the tests
assert bit-identity, not closeness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.space import DesignSpace
from repro.obs import get_registry
from repro.sim.metrics import Metric

from .pareto import ParetoArchive

__all__ = [
    "DesignSpaceEnv",
    "Observation",
    "Oracle",
    "PredictorOracle",
    "SimulationOracle",
]


class Oracle(Protocol):
    """Anything that maps configuration batches to metric arrays."""

    @property
    def metrics(self) -> Tuple[Metric, ...]:
        """The metrics this oracle can evaluate."""
        ...

    def evaluate(
        self, configs: Sequence[Configuration]
    ) -> Dict[Metric, np.ndarray]:
        """Per-metric value arrays for ``configs`` (one entry each)."""
        ...


class PredictorOracle:
    """Metric oracle over fitted predictors, composing ED and EDD.

    Args:
        predictors: Mapping from metric to a fitted predictor exposing
            ``predict(configs) -> np.ndarray``.  When cycles and energy
            predictors are both present, ED and EDD are composed
            algebraically (``ed = energy * cycles``,
            ``edd = energy * cycles**2``) unless explicitly provided —
            the same composition :class:`~repro.core.multimetric.
            MultiMetricPredictor` uses, at zero extra predictor calls.
    """

    def __init__(self, predictors: Mapping[Metric, object]) -> None:
        if not predictors:
            raise ValueError("at least one metric predictor is required")
        for metric, predictor in predictors.items():
            if not isinstance(metric, Metric):
                raise ValueError(f"keys must be Metric, got {metric!r}")
            if not hasattr(predictor, "predict"):
                raise ValueError(
                    f"the {metric.value} entry has no predict() method"
                )
        self._predictors = dict(predictors)
        available = set(self._predictors)
        if Metric.CYCLES in available and Metric.ENERGY in available:
            available.update((Metric.ED, Metric.EDD))
        self._metrics = tuple(m for m in Metric.all() if m in available)

    @property
    def metrics(self) -> Tuple[Metric, ...]:
        """Directly predicted metrics plus composable ED/EDD."""
        return self._metrics

    def evaluate(
        self, configs: Sequence[Configuration]
    ) -> Dict[Metric, np.ndarray]:
        """One batched ``predict`` per base predictor; ED/EDD composed.

        The direct metrics are returned bit-identical to calling each
        predictor yourself with the same batch — the environment adds
        bookkeeping *around* the forward pass, never arithmetic inside
        it.
        """
        values: Dict[Metric, np.ndarray] = {}
        for metric in Metric.all():
            predictor = self._predictors.get(metric)
            if predictor is not None:
                values[metric] = np.asarray(
                    predictor.predict(configs), dtype=float
                )
        if Metric.CYCLES in values and Metric.ENERGY in values:
            cycles, energy = values[Metric.CYCLES], values[Metric.ENERGY]
            values.setdefault(Metric.ED, energy * cycles)
            values.setdefault(Metric.EDD, energy * cycles * cycles)
        return values


class SimulationOracle:
    """Ground-truth oracle over the interval simulator.

    For oracle studies and tiny end-to-end tests: every ``evaluate``
    runs real (vectorised batch) simulations of one program, so budgets
    here are *simulation* budgets.

    Args:
        simulator: An :class:`~repro.sim.interval.IntervalSimulator`.
        profile: The workload profile to simulate.
    """

    def __init__(self, simulator, profile) -> None:
        self._simulator = simulator
        self._profile = profile

    @property
    def metrics(self) -> Tuple[Metric, ...]:
        """All four metrics (the simulator reports every one)."""
        return Metric.all()

    def evaluate(
        self, configs: Sequence[Configuration]
    ) -> Dict[Metric, np.ndarray]:
        """Simulate the batch once and read out all four metrics."""
        batch = self._simulator.simulate_batch(self._profile, list(configs))
        return {metric: batch.metric(metric) for metric in Metric.all()}


@dataclass(frozen=True)
class Observation:
    """What one evaluated configuration looks like to an agent."""

    configuration: Configuration
    metrics: Dict[Metric, float]
    objectives: Tuple[float, ...]


class DesignSpaceEnv:
    """Budgeted design-space exploration over a design space + oracle.

    The contract is gym-shaped: :meth:`reset` evaluates the baseline
    machine and returns its observation; :meth:`step` /
    :meth:`step_batch` evaluate proposals and return
    ``(observation(s), done, info)``.  Every evaluated configuration —
    the baseline included — costs one unit of budget, and ``done``
    flips when the budget is spent.  The environment validates
    proposals against the space's legality constraints and maintains
    the Pareto archive of everything it has evaluated.

    Args:
        space: The design space proposals must be legal in.
        oracle: Metric oracle (fitted predictors or a simulator).
        objectives: Metrics forming the objective vector, all minimised.
        budget: Total evaluations allowed (>= 1).
        validate: Check proposal legality (disable only for oracles
            that handle off-grid points themselves).
    """

    def __init__(
        self,
        space: DesignSpace,
        oracle: Oracle,
        objectives: Sequence[Metric] = (Metric.CYCLES, Metric.ENERGY),
        budget: int = 256,
        validate: bool = True,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be at least 1")
        objectives = tuple(objectives)
        if not objectives:
            raise ValueError("at least one objective metric is required")
        if len(set(objectives)) != len(objectives):
            raise ValueError(f"duplicate objectives in {objectives}")
        missing = [m.value for m in objectives if m not in oracle.metrics]
        if missing:
            raise ValueError(
                f"oracle cannot evaluate objective(s) {missing}; it "
                f"offers {[m.value for m in oracle.metrics]}"
            )
        self._space = space
        self._oracle = oracle
        self._objectives = objectives
        self._budget = budget
        self._validate = validate
        self._spent = 0
        self._archive = ParetoArchive(len(objectives))
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def space(self) -> DesignSpace:
        """The design space proposals are validated against."""
        return self._space

    @property
    def objectives(self) -> Tuple[Metric, ...]:
        """The minimised objective metrics, in observation order."""
        return self._objectives

    @property
    def budget(self) -> int:
        """Total evaluations allowed per episode."""
        return self._budget

    @property
    def spent(self) -> int:
        """Evaluations consumed so far this episode."""
        return self._spent

    @property
    def remaining(self) -> int:
        """Evaluations left before ``done``."""
        return self._budget - self._spent

    @property
    def done(self) -> bool:
        """True once the evaluation budget is exhausted."""
        return self._spent >= self._budget

    @property
    def archive(self) -> ParetoArchive:
        """The Pareto archive over everything evaluated this episode."""
        return self._archive

    def observed_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-objective (min, max) over every evaluated point.

        The raw material for a hypervolume reference point; to compare
        runs, take the union of their bounds.

        Raises:
            RuntimeError: before anything has been evaluated.
        """
        if self._lo is None or self._hi is None:
            raise RuntimeError("nothing evaluated yet; call reset() first")
        return self._lo.copy(), self._hi.copy()

    # ------------------------------------------------------------------
    # The gym surface
    # ------------------------------------------------------------------
    def reset(self) -> Observation:
        """Start an episode: evaluate the baseline machine (1 budget)."""
        self._spent = 0
        self._archive = ParetoArchive(len(self._objectives))
        self._lo = None
        self._hi = None
        observations, _, _ = self.step_batch([self._space.baseline])
        return observations[0]

    def step(
        self, configuration: Configuration
    ) -> Tuple[Observation, bool, Dict]:
        """Evaluate one configuration; ``(observation, done, info)``."""
        observations, done, info = self.step_batch([configuration])
        return observations[0], done, info

    def step_batch(
        self, configurations: Sequence[Configuration]
    ) -> Tuple[List[Observation], bool, Dict]:
        """Evaluate a batch in one vectorised oracle pass.

        Args:
            configurations: Proposals; the batch must be non-empty and
                fit in the remaining budget (ask :attr:`remaining`).

        Returns:
            ``(observations, done, info)`` — per-proposal observations
            in order, the episode-over flag, and an info dict with
            ``spent``/``remaining``/``frontier_size``/``accepted``.

        Raises:
            RuntimeError: when the episode is already done.
            ValueError: on an empty or over-budget batch, an illegal
                configuration, or non-finite oracle output.
        """
        if self.done:
            raise RuntimeError(
                f"budget of {self._budget} evaluations exhausted; reset()"
            )
        configurations = list(configurations)
        if not configurations:
            raise ValueError("a step needs at least one configuration")
        if len(configurations) > self.remaining:
            raise ValueError(
                f"batch of {len(configurations)} exceeds the remaining "
                f"budget of {self.remaining}"
            )
        if self._validate:
            for config in configurations:
                self._space.validate(config)
        start = time.perf_counter()
        values = self._oracle.evaluate(configurations)
        matrix = np.stack(
            [np.asarray(values[m], dtype=float) for m in self._objectives],
            axis=1,
        )
        accepted = self._archive.update(configurations, matrix)
        lo, hi = matrix.min(axis=0), matrix.max(axis=0)
        self._lo = lo if self._lo is None else np.minimum(self._lo, lo)
        self._hi = hi if self._hi is None else np.maximum(self._hi, hi)
        self._spent += len(configurations)
        registry = get_registry()
        registry.counter("search.env.evaluations").inc(len(configurations))
        registry.histogram("search.env.batch.seconds").observe(
            time.perf_counter() - start
        )
        observations = [
            Observation(
                configuration=config,
                metrics={m: float(values[m][i]) for m in values},
                objectives=tuple(float(v) for v in matrix[i]),
            )
            for i, config in enumerate(configurations)
        ]
        info = {
            "spent": self._spent,
            "remaining": self.remaining,
            "frontier_size": len(self._archive),
            "accepted": accepted,
        }
        return observations, self.done, info
