"""Lightweight span tracing with a ``chrome://tracing`` exporter.

A *span* is one timed region of work with a name and free-form
attributes::

    from repro.obs import span

    with span("simulate.chunk", program="gzip", chunk=3):
        backend.simulate_batch(profile, configs)

Spans nest (a thread-local stack tracks depth and parent ids), cost two
``perf_counter`` reads plus a dict append, and never touch random
state, so instrumented code keeps producing bit-identical numeric
results.  The collecting :class:`Tracer` exports:

* **JSONL** — one span object per line, for grep/jq pipelines;
* **Chrome trace JSON** — complete ``"ph": "X"`` events that load
  directly into ``chrome://tracing`` / Perfetto for a flame view.

Worker processes trace into their own :class:`Tracer` (installed with
:func:`scoped_tracer`) and ship ``tracer.spans`` back to the parent,
which folds them in with :meth:`Tracer.adopt` — the exported trace then
shows every worker's cells under that worker's pid lane.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracer",
    "scoped_tracer",
    "span",
]


class Tracer:
    """Collects finished spans in memory, bounded by ``max_spans``.

    Args:
        enabled: A disabled tracer's :meth:`span` is a no-op context
            manager, for callers that want zero bookkeeping.
        max_spans: In-memory bound; spans past it are counted in
            :attr:`dropped` instead of stored, so a pathological loop
            cannot exhaust memory.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Dict] = []
        self.dropped = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Optional[Dict]]:
        """Time the ``with`` block as one span named ``name``.

        Yields the span record (or ``None`` when disabled) so callers
        can attach late attributes — e.g. an attempt count known only
        after the work ran::

            with tracer.span("simulate.chunk", cell=cell) as s:
                batch, attempts = simulate()
                if s is not None:
                    s["attrs"]["attempts"] = attempts
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        record: Dict = {
            "name": name,
            "ts": time.time(),
            "dur": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "depth": len(stack),
            "attrs": dict(attrs),
        }
        stack.append(id(record))
        start = time.perf_counter()
        try:
            yield record
        finally:
            record["dur"] = time.perf_counter() - start
            stack.pop()
            self._store(record)

    def record(self, name: str, seconds: float, **attrs) -> None:
        """Adopt an externally timed region as a completed span.

        For durations measured elsewhere — e.g. a worker process
        reports how long a fit took and the parent records it.
        """
        if not self.enabled:
            return
        self._store(
            {
                "name": name,
                "ts": time.time() - seconds,
                "dur": float(seconds),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "depth": len(self._stack()),
                "attrs": dict(attrs),
            }
        )

    def adopt(self, spans: Sequence[Dict]) -> None:
        """Fold spans shipped from another tracer (usually a worker)."""
        for record in spans:
            self._store(dict(record))

    def _store(self, record: Dict) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """Current span count — pass to :meth:`summary` to scope it."""
        return len(self.spans)

    def count(self, name: str, start: int = 0) -> int:
        """How many spans named ``name`` finished since ``start``."""
        return sum(1 for s in self.spans[start:] if s["name"] == name)

    def summary(self, start: int = 0) -> Dict[str, Dict[str, float]]:
        """Per-name timing rollup of the spans since ``start``.

        Returns:
            ``{name: {count, total_seconds, min_seconds, max_seconds}}``
            sorted by name — the shape embedded in run manifests and
            benchmark payloads.
        """
        rollup: Dict[str, Dict[str, float]] = {}
        for record in self.spans[start:]:
            entry = rollup.setdefault(
                record["name"],
                {
                    "count": 0,
                    "total_seconds": 0.0,
                    "min_seconds": float("inf"),
                    "max_seconds": 0.0,
                },
            )
            entry["count"] += 1
            entry["total_seconds"] += record["dur"]
            entry["min_seconds"] = min(entry["min_seconds"], record["dur"])
            entry["max_seconds"] = max(entry["max_seconds"], record["dur"])
        return dict(sorted(rollup.items()))

    def clear(self) -> None:
        """Drop every stored span (the drop counter too)."""
        self.spans.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_events(self) -> List[Dict]:
        """Spans as Chrome trace 'complete' (``ph: X``) events."""
        return [
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round(record["ts"] * 1e6, 3),
                "dur": round(record["dur"] * 1e6, 3),
                "pid": record["pid"],
                "tid": record["tid"],
                "args": record["attrs"],
            }
            for record in self.spans
        ]

    def write_chrome(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write a ``chrome://tracing``-loadable JSON trace.

        One event per line inside the array, so the file greps like
        JSONL while still parsing as standard JSON.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        events = self.to_chrome_events()
        body = ",\n".join(json.dumps(event, sort_keys=True) for event in events)
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text("[\n" + body + "\n]\n", encoding="utf-8")
        os.replace(scratch, path)
        return path

    def write_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the raw spans, one JSON object per line."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(path.name + ".tmp")
        with open(scratch, "w", encoding="utf-8") as handle:
            for record in self.spans:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(scratch, path)
        return path


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the global tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def scoped_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Swap in a tracer for the ``with`` block (tests, workers).

    Args:
        tracer: The tracer to install; a fresh one by default.

    Yields:
        The installed tracer.
    """
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


def span(name: str, **attrs):
    """Open a span on the *current* global tracer.

    The module-level convenience the instrumented code uses, so a
    :func:`scoped_tracer` swap (worker isolation, tests) redirects
    every span without threading a tracer through call signatures.
    """
    return get_tracer().span(name, **attrs)
