"""Ablation A8: how robust is the model to noisy responses?

The paper's responses are SimPoint *estimates*, not exact measurements
— real responses carry sampling error.  This ablation injects
controlled multiplicative (lognormal) noise into the 32 responses and
tracks how the architecture-centric accuracy degrades, answering a
practical question the paper leaves open: how accurate must the
response simulations themselves be?
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import ArchitectureCentricPredictor
from repro.exploration import format_series, scale_banner
from repro.ml import correlation, rmae
from repro.sim import Metric
from repro.workloads.profile import stable_seed

PROGRAMS = ("gzip", "applu", "swim", "art")
NOISE_LEVELS = (0.0, 0.02, 0.05, 0.10, 0.20)


def test_ablation_noise(benchmark, spec_dataset, pools, record_artifact):
    pool = pools(Metric.CYCLES)

    def run():
        series = {"rmae%": [], "corr": []}
        for noise in NOISE_LEVELS:
            errors, correlations = [], []
            for program in PROGRAMS:
                seed = stable_seed("a8", program, str(noise))
                rng = np.random.default_rng(seed)
                response_idx, holdout_idx = spec_dataset.split_indices(
                    RESPONSES, seed=seed
                )
                clean = spec_dataset.subset_values(
                    program, Metric.CYCLES, response_idx
                )
                noisy = clean * np.exp(
                    rng.normal(0.0, noise, size=clean.shape)
                )
                predictor = ArchitectureCentricPredictor(
                    pool.models(exclude=[program])
                )
                predictor.fit_responses(
                    spec_dataset.subset_configs(response_idx), noisy
                )
                predictions = predictor.predict(
                    spec_dataset.subset_configs(holdout_idx)
                )
                actual = spec_dataset.subset_values(
                    program, Metric.CYCLES, holdout_idx
                )
                errors.append(rmae(predictions, actual))
                correlations.append(correlation(predictions, actual))
            series["rmae%"].append(float(np.mean(errors)))
            series["corr"].append(float(np.mean(correlations)))
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    text = (
        scale_banner(
            "Ablation A8 — accuracy vs response measurement noise",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            programs=len(PROGRAMS),
        )
        + "\n"
        + format_series(
            "noise sigma", [f"{n * 100:.0f}%" for n in NOISE_LEVELS], series
        )
    )
    record_artifact("ablation_noise", text)

    clean_rmae = series["rmae%"][0]
    # Small measurement noise (2-5 percent, SimPoint-class) must not
    # break the predictor...
    assert series["rmae%"][1] < clean_rmae + 3.0
    assert series["corr"][2] > 0.85
    # ...while gross noise visibly degrades it (sanity that the knob
    # does something).
    assert series["rmae%"][-1] > clean_rmae
