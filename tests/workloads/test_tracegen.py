"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.workloads import (
    LINE_BYTES,
    OpClass,
    TraceGenerator,
    generate_trace,
    spec2000_profile,
)


@pytest.fixture(scope="module")
def gzip_trace():
    return generate_trace(spec2000_profile("gzip"), 12000, seed=5)


class TestTraceShape:
    def test_length(self, gzip_trace):
        assert len(gzip_trace) == 12000

    def test_indices_sequential(self, gzip_trace):
        assert [t.index for t in gzip_trace[:5]] == [0, 1, 2, 3, 4]

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(spec2000_profile("gzip"), 0)

    def test_deterministic_given_seed(self):
        profile = spec2000_profile("gzip")
        a = generate_trace(profile, 500, seed=1)
        b = generate_trace(profile, 500, seed=1)
        assert [(t.op, t.pc, t.address) for t in a] == [
            (t.op, t.pc, t.address) for t in b
        ]

    def test_default_seed_is_stable_per_program(self):
        profile = spec2000_profile("gzip")
        a = generate_trace(profile, 200)
        b = generate_trace(profile, 200)
        assert [t.pc for t in a] == [t.pc for t in b]


class TestInstructionMix:
    def test_mix_matches_profile(self, gzip_trace):
        profile = spec2000_profile("gzip")
        branches = sum(1 for t in gzip_trace if t.op is OpClass.BRANCH)
        loads = sum(1 for t in gzip_trace if t.op is OpClass.LOAD)
        n = len(gzip_trace)
        assert branches / n == pytest.approx(profile.mix.branch, abs=0.02)
        assert loads / n == pytest.approx(profile.mix.load, abs=0.02)


class TestDataflow:
    def test_memory_ops_have_addresses(self, gzip_trace):
        for t in gzip_trace:
            if t.op.is_memory:
                assert t.address is not None
                assert t.address % LINE_BYTES == 0
            else:
                assert t.address is None

    def test_stores_and_branches_have_no_dest(self, gzip_trace):
        for t in gzip_trace:
            if t.op in (OpClass.STORE, OpClass.BRANCH):
                assert t.dest is None

    def test_compute_ops_have_dest(self, gzip_trace):
        for t in gzip_trace:
            if t.op not in (OpClass.STORE, OpClass.BRANCH):
                assert t.dest is not None

    def test_sources_are_logical_registers(self, gzip_trace):
        for t in gzip_trace:
            for source in t.sources:
                assert 0 <= source < 32

    def test_every_instruction_has_sources(self, gzip_trace):
        assert all(len(t.sources) >= 1 for t in gzip_trace)


class TestBranches:
    def test_branch_fields(self, gzip_trace):
        for t in gzip_trace:
            if t.op is OpClass.BRANCH:
                assert t.branch_id is not None
                assert t.taken is not None
            else:
                assert t.branch_id is None
                assert t.taken is None

    def test_branch_id_is_a_function_of_pc(self, gzip_trace):
        """The same code location always holds the same static branch."""
        seen = {}
        for t in gzip_trace:
            if t.op is OpClass.BRANCH:
                if t.pc in seen:
                    assert seen[t.pc] == t.branch_id
                seen[t.pc] = t.branch_id
        assert seen  # some branch site repeated or at least existed

    def test_code_loops(self, gzip_trace):
        """Loop back-edges must make PCs recur (predictors rely on it)."""
        pcs = [t.pc for t in gzip_trace]
        assert len(set(pcs)) < len(pcs) / 3

    def test_biased_outcomes(self, gzip_trace):
        """Branch outcomes must be predictable on average (not 50/50)."""
        per_site = {}
        for t in gzip_trace:
            if t.op is OpClass.BRANCH:
                per_site.setdefault(t.branch_id, []).append(t.taken)
        agreement = [
            max(sum(v), len(v) - sum(v)) / len(v)
            for v in per_site.values()
            if len(v) >= 10
        ]
        assert np.mean(agreement) > 0.75


class TestLocality:
    def test_addresses_show_reuse(self, gzip_trace):
        addresses = [t.address for t in gzip_trace if t.op.is_memory]
        assert len(set(addresses)) < len(addresses) / 2

    def test_memory_bound_program_has_larger_footprint(self):
        art = generate_trace(spec2000_profile("art"), 12000, seed=5)
        gzip = generate_trace(spec2000_profile("gzip"), 12000, seed=5)
        art_lines = {t.address for t in art if t.op.is_memory}
        gzip_lines = {t.address for t in gzip if t.op.is_memory}
        assert len(art_lines) > len(gzip_lines)

    def test_pcs_word_aligned(self, gzip_trace):
        assert all(t.pc % 4 == 0 for t in gzip_trace)


class TestGenerator:
    def test_generator_reuse_continues_stream(self):
        generator = TraceGenerator(spec2000_profile("gzip"), seed=9)
        first = generator.generate(100)
        second = generator.generate(100)
        # Streams continue rather than repeat.
        assert [t.pc for t in first] != [t.pc for t in second]
