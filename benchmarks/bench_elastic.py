"""Elastic-fleet resilience: recovery time, stealing, chaos replay.

Not a paper artefact — the engineering guarantee behind running the
paper's campaigns on fleets that change shape mid-run.  Three legs,
all in-process on one event loop (real loopback TCP, real frames):

* **Kill recovery** — a seeded chaos plan kills one of three workers
  mid-campaign; the leg records how long the coordinator took to
  reclaim the orphaned lease and how much the kill stretched the
  campaign.
* **Work stealing** — the same plan makes one worker 10x slow; the leg
  runs it twice, stealing enabled and disabled, and reports the
  steal counts and the wall-clock speedup stealing buys.  Long leases
  keep expiry out of the picture: stealing alone does the rescuing.
* **Chaos replay** — a kill + spawn + partition + slowdown plan runs
  twice from the same seed; the leg asserts the injected event
  sequences are identical and that both journals match a serial run
  bit for bit (zero lost cells), then records the elapsed times.

Results land in ``results/BENCH_elastic.json``.  Scale knobs
(environment): ``REPRO_ELASTIC_SAMPLES`` (default 480),
``REPRO_ELASTIC_CHUNK`` (32) and ``REPRO_ELASTIC_DELAY`` (0.06 s per
chunk); the CI smoke run shrinks them to finish in seconds.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.designspace import sample_configurations
from repro.distrib import ChaosEvent, ChaosPlan, run_chaos_campaign_sync
from repro.distrib.chaos import journal_checksums
from repro.distrib.worker import RepeatBackend
from repro.runtime import CampaignRunner, IntervalBackend
from repro.sim import IntervalSimulator
from repro.workloads import spec2000_suite

SAMPLES = int(os.environ.get("REPRO_ELASTIC_SAMPLES", 480))
CHUNK = int(os.environ.get("REPRO_ELASTIC_CHUNK", 32))
DELAY = float(os.environ.get("REPRO_ELASTIC_DELAY", 0.06))

PROGRAM = "gzip"
SEED = 2007


def _chaos_run(tmp_path, name, suite, configs, plan, **coordinator_kwargs):
    """One chaos campaign into ``tmp_path/name``; returns (report, dir)."""
    checkpoint = tmp_path / name
    kwargs = {"lease_timeout": 1.0, "monitor_interval": 0.02}
    kwargs.update(coordinator_kwargs)
    started = time.perf_counter()
    report = run_chaos_campaign_sync(
        lambda: CampaignRunner(
            IntervalBackend(IntervalSimulator()),
            checkpoint,
            chunk_size=CHUNK,
            seed=SEED,
        ),
        suite,
        configs,
        plan,
        n_workers=3,
        backend_factory=lambda: RepeatBackend(
            IntervalBackend(IntervalSimulator()), delay=DELAY
        ),
        coordinator_kwargs=kwargs,
    )
    wall = time.perf_counter() - started
    assert report.result.complete, f"{name} leg did not complete"
    assert not report.result.failed_cells
    return report, checkpoint, wall


def test_elastic_resilience(tmp_path, record_json):
    suite = spec2000_suite().subset((PROGRAM,))
    simulator = IntervalSimulator()
    configs = sample_configurations(simulator.space, SAMPLES, seed=SEED)
    total_cells = -(-SAMPLES // CHUNK)

    serial_runner = CampaignRunner(
        IntervalBackend(simulator),
        tmp_path / "serial",
        chunk_size=CHUNK,
        seed=SEED,
    )
    serial_result = serial_runner.run(suite, configs)
    assert serial_result.complete
    baseline = journal_checksums(tmp_path / "serial")
    assert len(baseline) == total_cells

    # ------------------------------------------------------------------
    # Leg 1: kill one worker mid-campaign, time the recovery.
    # ------------------------------------------------------------------
    # Kill almost immediately so the victim still holds a lease even at
    # the smallest smoke scale.
    kill_plan = ChaosPlan(
        seed=SEED,
        events=(ChaosEvent(at=0.03, action="kill", target="w0"),),
    )
    report, checkpoint, wall = _chaos_run(
        tmp_path, "kill", suite, configs, kill_plan, lease_timeout=0.8
    )
    stats = report.stats
    assert journal_checksums(checkpoint) == baseline
    assert stats.reclaims + stats.steals >= 1, (
        "the killed worker's lease must be reclaimed or stolen"
    )
    latencies = [float(v) for v in stats.reclaim_latencies]
    kill_leg = {
        "total_cells": total_cells,
        "wall_seconds": wall,
        "reclaims": stats.reclaims,
        "steals": stats.steals,
        "reclaim_latency_mean_s": (
            float(np.mean(latencies)) if latencies else None
        ),
        "reclaim_latency_max_s": (
            float(np.max(latencies)) if latencies else None
        ),
    }

    # ------------------------------------------------------------------
    # Leg 2: one 10x straggler; stealing on vs off.
    # ------------------------------------------------------------------
    straggler_plan = ChaosPlan(
        seed=SEED,
        events=(
            ChaosEvent(at=0.0, action="slow", target="w0", factor=10.0),
        ),
    )
    # Leases stay alive (the straggler heartbeats all along), so only
    # stealing can rescue its cells; the steal window opens at
    # steal_after_fraction * lease_timeout = 0.3 s, well inside the
    # straggler's 10x chunk latency.
    steal_legs = {}
    for label, fraction in (("stealing", 0.05), ("no_stealing", 100.0)):
        report, checkpoint, wall = _chaos_run(
            tmp_path,
            f"steal_{label}",
            suite,
            configs,
            straggler_plan,
            lease_timeout=6.0,
            steal_after_fraction=fraction,
        )
        assert journal_checksums(checkpoint) == baseline
        steal_legs[label] = {
            "wall_seconds": wall,
            "steals": report.stats.steals,
            "speculative_wins": report.stats.speculative_wins,
            "stale_results": report.stats.stale_results,
        }
    assert steal_legs["stealing"]["steals"] >= 1
    assert steal_legs["no_stealing"]["steals"] == 0
    steal_speedup = (
        steal_legs["no_stealing"]["wall_seconds"]
        / steal_legs["stealing"]["wall_seconds"]
    )

    # ------------------------------------------------------------------
    # Leg 3: full chaos plan, replayed twice from the same seed.
    # ------------------------------------------------------------------
    chaos_plan = ChaosPlan(
        seed=SEED,
        events=(
            ChaosEvent(at=0.10, action="slow", factor=10.0, duration=0.5),
            ChaosEvent(at=0.15, action="kill"),
            ChaosEvent(at=0.20, action="spawn"),
            ChaosEvent(at=0.25, action="partition", duration=0.5),
        ),
    )
    replay = []
    for attempt in ("a", "b"):
        report, checkpoint, wall = _chaos_run(
            tmp_path, f"replay_{attempt}", suite, configs, chaos_plan
        )
        assert journal_checksums(checkpoint) == baseline, (
            "chaos journal diverged from serial"
        )
        replay.append({
            "wall_seconds": wall,
            "event_log": report.event_log,
            "joins": report.stats.joins,
            "leaves": report.stats.leaves,
        })
    assert replay[0]["event_log"] == replay[1]["event_log"], (
        "same plan + seed must inject the same event sequence"
    )

    payload = {
        "samples": SAMPLES,
        "chunk_size": CHUNK,
        "sim_delay_s": DELAY,
        "total_cells": total_cells,
        "kill_recovery": kill_leg,
        "work_stealing": {
            **steal_legs,
            "steal_speedup": steal_speedup,
        },
        "chaos_replay": {
            "event_log": replay[0]["event_log"],
            "runs": [
                {k: v for k, v in entry.items() if k != "event_log"}
                for entry in replay
            ],
            "deterministic": True,
            "journal_identical_to_serial": True,
        },
    }
    record_json("BENCH_elastic", payload)

    print(
        f"\nelastic: kill recovery "
        f"{kill_leg['reclaim_latency_mean_s'] or 0:.3f}s mean reclaim, "
        f"stealing {steal_legs['stealing']['steals']} steal(s), "
        f"speedup {steal_speedup:.2f}x over no stealing"
    )
