"""Distributed campaign scaling: coordinator + worker subprocesses.

Not a paper artefact — the engineering guarantee behind sharding the
paper's simulation campaigns across hosts.  One in-process coordinator
serves the same campaign to 1, 2 and 4 real ``repro worker``
subprocesses over loopback TCP; each worker adds ``--sim-delay``
latency per chunk so the interval model stands in for an expensive
cycle-accurate simulator without losing bit-exactness (latency rather
than CPU burn, because the subprocesses share this machine's cores —
scaling here measures the coordinator's ability to keep a fleet of
slow simulators busy, which is the subsystem's actual job).  A final
fault-tolerance leg SIGKILLs one of two workers mid-campaign and times
the lease reclaim.

The scaling numbers only count, because every scenario's journal is
asserted bit-identical to every other's: the speedup describes the
*correct* distributed runner.  Results land in
``results/BENCH_distributed.json``.

Scale knobs (environment): ``REPRO_DISTRIB_SAMPLES`` (default 1536),
``REPRO_DISTRIB_CHUNK`` (64) and ``REPRO_DISTRIB_DELAY`` (0.15 s per
chunk); the CI smoke run shrinks them to finish in seconds.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import numpy as np

from repro.designspace import sample_configurations
from repro.distrib import CampaignCoordinator
from repro.runtime import CampaignRunner, IntervalBackend
from repro.sim import IntervalSimulator
from repro.workloads import spec2000_suite

#: Sampled configurations (cells = samples / chunk per program).
SAMPLES = int(os.environ.get("REPRO_DISTRIB_SAMPLES", 1536))

#: Configurations per campaign cell (one lease = one cell).
CHUNK = int(os.environ.get("REPRO_DISTRIB_CHUNK", 64))

#: Seconds of emulated simulator latency per chunk, bit-identically.
DELAY = float(os.environ.get("REPRO_DISTRIB_DELAY", 0.15))

PROGRAM = "gzip"
SEED = 2007
WORKER_COUNTS = (1, 2, 4)


def _spawn_worker(port: int, sim_delay: float = DELAY) -> subprocess.Popen:
    """A real ``repro worker`` subprocess, like an operator would run."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"127.0.0.1:{port}",
            "--sim-delay", str(sim_delay),
            "--log-level", "warning",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _run_campaign(tmp_path, suite, configs, n_workers, kill_one=False):
    """One distributed campaign; returns (coordinator, runner, workers).

    The coordinator runs on a daemon thread (its blocking ``run`` owns
    an event loop); ``min_workers`` holds the first lease back until
    every worker is connected, so ``stats.elapsed`` times pure
    execution, not subprocess start-up.
    """
    runner = CampaignRunner(
        IntervalBackend(IntervalSimulator()),
        tmp_path / f"dist_{n_workers}",
        chunk_size=CHUNK,
        seed=SEED,
    )
    coordinator = CampaignCoordinator(
        runner,
        port=0,
        lease_timeout=30.0,
        min_workers=n_workers,
    )
    ready = threading.Event()
    failure: list = []

    def serve() -> None:
        try:
            coordinator.run(
                suite, configs,
                ready_callback=lambda _c: ready.set(),
            )
        except BaseException as error:  # surfaced in the main thread
            failure.append(error)
            ready.set()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=30), "coordinator never came up"
    assert not failure, failure

    workers = [_spawn_worker(coordinator.port) for _ in range(n_workers)]
    victim = None
    if kill_one:
        # Let the campaign get going, then SIGKILL one worker while it
        # holds a lease; the coordinator must reclaim and finish.
        while coordinator.stats.tasks_completed < 2 and thread.is_alive():
            time.sleep(0.02)
        victim = workers[0]
        victim.send_signal(signal.SIGKILL)

    thread.join(timeout=300)
    assert not thread.is_alive(), "campaign did not finish"
    assert not failure, failure
    for worker in workers:
        try:
            worker.wait(timeout=10)
        except subprocess.TimeoutExpired:
            worker.kill()
            worker.wait()
    return coordinator, runner


def _journal_checksums(runner) -> dict:
    return {
        record["cell"]: record["checksum"]
        for record in runner.journal.records()
        if "cell" in record
    }


def test_distributed_scaling(tmp_path, record_json):
    suite = spec2000_suite().subset((PROGRAM,))
    simulator = IntervalSimulator()
    configs = sample_configurations(simulator.space, SAMPLES, seed=SEED)
    total_cells = -(-SAMPLES // CHUNK)

    scaling = {}
    journals = {}
    for n_workers in WORKER_COUNTS:
        coordinator, runner = _run_campaign(
            tmp_path, suite, configs, n_workers
        )
        stats = coordinator.stats
        assert stats.tasks_completed == total_cells
        assert stats.elapsed and stats.elapsed > 0
        scaling[n_workers] = {
            "workers": n_workers,
            "tasks": stats.tasks_completed,
            "wall_seconds": stats.elapsed,
            "tasks_per_second": stats.tasks_completed / stats.elapsed,
            "reclaims": stats.reclaims,
        }
        journals[n_workers] = _journal_checksums(runner)

    # The speedup is only meaningful if every run produced the same
    # bits: identical journal checksums mean identical chunk files.
    baseline = journals[WORKER_COUNTS[0]]
    assert baseline and all(
        journal == baseline for journal in journals.values()
    )

    # Fault-tolerance leg: two workers, one SIGKILLed mid-campaign.
    kill_dir = tmp_path / "killleg"
    kill_dir.mkdir()
    coordinator, runner = _run_campaign(
        kill_dir, suite, configs, 2, kill_one=True
    )
    stats = coordinator.stats
    assert stats.tasks_completed == total_cells
    assert stats.reclaims >= 1, "the killed worker's lease must reclaim"
    assert _journal_checksums(runner) == baseline

    speedup = (
        scaling[4]["tasks_per_second"] / scaling[1]["tasks_per_second"]
    )
    payload = {
        "samples": SAMPLES,
        "chunk_size": CHUNK,
        "sim_delay_s": DELAY,
        "total_cells": total_cells,
        "scaling": [scaling[n] for n in WORKER_COUNTS],
        "speedup_4_vs_1": speedup,
        "kill_leg": {
            "reclaims": stats.reclaims,
            "reclaim_latency_mean_s": float(
                np.mean(stats.reclaim_latencies)
            ) if stats.reclaim_latencies else None,
            "reclaim_latency_max_s": float(
                np.max(stats.reclaim_latencies)
            ) if stats.reclaim_latencies else None,
            "wall_seconds": stats.elapsed,
        },
        "journals_bit_identical": True,
        "cpu_count": os.cpu_count(),
    }
    record_json("BENCH_distributed", payload)

    # The bar the subsystem must clear: real scaling, not just liveness.
    assert speedup > 1.5, f"4-worker speedup only {speedup:.2f}x"
