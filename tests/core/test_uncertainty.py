"""Tests for bootstrap prediction intervals."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureCentricPredictor,
    UncertainPrediction,
    bootstrap_predict,
    coverage,
)
from repro.sim import Metric


@pytest.fixture(scope="module")
def setting(cycles_pool, small_dataset):
    models = cycles_pool.models(exclude=["applu"])
    response_idx, holdout_idx = small_dataset.split_indices(32, seed=77)
    response_configs = small_dataset.subset_configs(response_idx)
    response_values = small_dataset.subset_values(
        "applu", Metric.CYCLES, response_idx
    )
    predictor = ArchitectureCentricPredictor(models)
    predictor.fit_responses(response_configs, response_values)
    holdout_configs = small_dataset.subset_configs(holdout_idx[:60])
    actual = small_dataset.subset_values(
        "applu", Metric.CYCLES, holdout_idx[:60]
    )
    return predictor, response_configs, response_values, holdout_configs, actual


@pytest.fixture(scope="module")
def prediction(setting):
    predictor, r_configs, r_values, h_configs, _ = setting
    return bootstrap_predict(
        predictor, r_configs, r_values, h_configs,
        resamples=60, seed=1,
    )


class TestIntervals:
    def test_bounds_ordered(self, prediction):
        assert np.all(prediction.lower <= prediction.mean + 1e-9)
        assert np.all(prediction.mean <= prediction.upper + 1e-9)

    def test_std_nonnegative(self, prediction):
        assert np.all(prediction.std >= 0)

    def test_mean_close_to_point_prediction(self, setting, prediction):
        predictor, _, _, h_configs, _ = setting
        point = predictor.predict(h_configs)
        relative = np.abs(prediction.mean - point) / point
        assert np.median(relative) < 0.15

    def test_interval_width_positive(self, prediction):
        assert np.all(prediction.interval_width() >= 0)

    def test_deterministic_given_seed(self, setting):
        predictor, r_configs, r_values, h_configs, _ = setting
        a = bootstrap_predict(predictor, r_configs, r_values,
                              h_configs[:10], resamples=20, seed=3)
        b = bootstrap_predict(predictor, r_configs, r_values,
                              h_configs[:10], resamples=20, seed=3)
        assert np.allclose(a.mean, b.mean)

    def test_coverage_meaningful(self, prediction, setting):
        *_, actual = setting
        observed = coverage(prediction, actual)
        # Bootstrap intervals on a (slightly biased) surrogate
        # under-cover; they must still catch a sizeable share.
        assert observed > 0.3

    def test_wider_confidence_wider_intervals(self, setting):
        predictor, r_configs, r_values, h_configs, _ = setting
        narrow = bootstrap_predict(predictor, r_configs, r_values,
                                   h_configs[:20], resamples=40,
                                   confidence=0.5, seed=5)
        wide = bootstrap_predict(predictor, r_configs, r_values,
                                 h_configs[:20], resamples=40,
                                 confidence=0.95, seed=5)
        assert np.all(wide.upper - wide.lower
                      >= narrow.upper - narrow.lower - 1e-9)


class TestValidation:
    def test_bad_resamples(self, setting):
        predictor, r_configs, r_values, h_configs, _ = setting
        with pytest.raises(ValueError):
            bootstrap_predict(predictor, r_configs, r_values,
                              h_configs[:5], resamples=1)

    def test_bad_confidence(self, setting):
        predictor, r_configs, r_values, h_configs, _ = setting
        with pytest.raises(ValueError):
            bootstrap_predict(predictor, r_configs, r_values,
                              h_configs[:5], confidence=1.5)

    def test_mismatched_responses(self, setting):
        predictor, r_configs, r_values, h_configs, _ = setting
        with pytest.raises(ValueError):
            bootstrap_predict(predictor, r_configs, r_values[:-1],
                              h_configs[:5])

    def test_coverage_shape_mismatch(self, prediction):
        with pytest.raises(ValueError):
            coverage(prediction, np.ones(3))
