"""Tests for design-space sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import (
    corner_biased_sample,
    sample_configurations,
    split_responses,
    stratified_sample,
)


class TestUniformSampling:
    def test_requested_count(self, space):
        assert len(sample_configurations(space, 25, seed=0)) == 25

    def test_zero_count(self, space):
        assert sample_configurations(space, 0, seed=0) == []

    def test_negative_count_rejected(self, space):
        with pytest.raises(ValueError):
            sample_configurations(space, -1, seed=0)

    def test_all_legal(self, space):
        for config in sample_configurations(space, 100, seed=1):
            assert space.is_legal(config)

    def test_unique_by_default(self, space):
        sample = sample_configurations(space, 200, seed=2)
        assert len(set(sample)) == 200

    def test_deterministic_given_seed(self, space):
        a = sample_configurations(space, 30, seed=3)
        b = sample_configurations(space, 30, seed=3)
        assert a == b

    def test_different_seeds_differ(self, space):
        a = sample_configurations(space, 30, seed=3)
        b = sample_configurations(space, 30, seed=4)
        assert a != b

    def test_accepts_generator(self, space):
        rng = np.random.default_rng(5)
        sample = sample_configurations(space, 10, seed=rng)
        assert len(sample) == 10

    def test_marginals_roughly_uniform_for_unconstrained_parameter(self, space):
        """rf_size is unconstrained, so its sampled marginal is uniform."""
        sample = sample_configurations(space, 3000, seed=6)
        values = np.array([c.rf_size for c in sample])
        grid = space.parameter("rf_size").values
        counts = np.array([(values == v).sum() for v in grid])
        expected = len(sample) / len(grid)
        assert np.all(counts > 0.5 * expected)
        assert np.all(counts < 1.6 * expected)


class TestSplitResponses:
    def test_disjoint_and_covering(self, space):
        sample = sample_configurations(space, 50, seed=7)
        responses, rest = split_responses(sample, 8, seed=8)
        assert len(responses) == 8
        assert len(rest) == 42
        assert set(responses).isdisjoint(rest)
        assert set(responses) | set(rest) == set(sample)

    def test_out_of_range_rejected(self, space):
        sample = sample_configurations(space, 10, seed=9)
        with pytest.raises(ValueError):
            split_responses(sample, 11)

    @given(count=st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_any_count_within_range(self, space, count):
        sample = sample_configurations(space, 20, seed=10)
        responses, rest = split_responses(sample, count, seed=count)
        assert len(responses) == count
        assert len(responses) + len(rest) == 20


class TestStratifiedSampling:
    def test_covers_every_value(self, space):
        parameter = space.parameter("width")
        sample = stratified_sample(space, 4 * parameter.cardinality,
                                   "width", seed=11)
        widths = {config.width for config in sample}
        assert widths == set(parameter.values)

    def test_all_legal(self, space):
        for config in stratified_sample(space, 12, "width", seed=12):
            assert space.is_legal(config)


class TestCornerBiasedSampling:
    def test_all_legal(self, space):
        for config in corner_biased_sample(space, 40, seed=13):
            assert space.is_legal(config)

    def test_corners_over_represented(self, space):
        sample = corner_biased_sample(
            space, 400, seed=14, corner_fraction=0.8
        )
        parameter = space.parameter("rf_size")
        extremes = sum(
            1
            for config in sample
            if config.rf_size in (parameter.minimum, parameter.maximum)
        )
        # Under uniform sampling the two extremes would be ~2/16 = 12.5%.
        assert extremes / len(sample) > 0.4

    def test_bad_fraction_rejected(self, space):
        with pytest.raises(ValueError):
            corner_biased_sample(space, 5, corner_fraction=1.5)
