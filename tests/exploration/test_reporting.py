"""Tests for the ASCII reporting helpers."""

import pytest

from repro.exploration import (
    ascii_bar_chart,
    format_series,
    format_table,
    scale_banner,
)
from repro.exploration.reporting import format_five_number


class TestFormatTable:
    def test_aligned_columns(self):
        table = format_table(
            ("name", "value"), [("gzip", 1.5), ("apsi", 20.25)]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_header_present(self):
        table = format_table(("a", "b"), [(1, 2)])
        assert table.splitlines()[0].startswith("a")

    def test_empty_rows(self):
        table = format_table(("a", "b"), [])
        assert "a" in table

    def test_float_formatting(self):
        table = format_table(("x",), [(0.123456,), (1234567.0,), (0.0,)])
        assert "0.123" in table
        assert "1.23e+06" in table


class TestFormatSeries:
    def test_series_rows(self):
        text = format_series(
            "T", [16, 32], {"rmae": [20.0, 10.0], "corr": [0.5, 0.9]}
        )
        assert "T" in text and "rmae" in text and "corr" in text
        assert "16" in text and "0.9" in text

    def test_five_number_row(self):
        row = format_five_number("gzip", 1, 2, 3, 4, 5, 2.5)
        assert row[0] == "gzip"
        assert len(row) == 7


class TestBanner:
    def test_scale_settings_shown(self):
        banner = scale_banner("Fig 9", samples=1000, repeats=3)
        assert "Fig 9" in banner
        assert "samples=1000" in banner
        assert "repeats=3" in banner


class TestBarChart:
    def test_bars_scale(self):
        chart = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert ascii_bar_chart([], []) == "(empty)"

    def test_zero_values(self):
        chart = ascii_bar_chart(["a"], [0.0])
        assert "#" not in chart
