"""Textual reports over detailed pipeline runs.

Turns a :class:`~repro.sim.pipeline.core.PipelineResult` into the
summary an architect reads: throughput, front-end quality, memory
behaviour, the energy bill and a stall-cause breakdown — the library
form of what ``examples/pipeline_deep_dive.py`` prints.
"""

from __future__ import annotations

from typing import List

from repro.designspace.configuration import Configuration

from .core import PipelineResult


def describe_machine(config: Configuration) -> str:
    """One-line machine summary for report headers."""
    return (
        f"width={config.width} rob={config.rob_size} iq={config.iq_size} "
        f"lsq={config.lsq_size} rf={config.rf_size} "
        f"ports={config.rf_read_ports}r/{config.rf_write_ports}w "
        f"gshare={config.gshare_size} "
        f"L1={config.icache_kb}/{config.dcache_kb}KB "
        f"L2={config.l2cache_kb}KB"
    )


def describe_run(result: PipelineResult, config: Configuration) -> str:
    """Multi-line report of one pipeline simulation."""
    stats = result.stats
    lines: List[str] = [
        f"machine : {describe_machine(config)}",
        f"IPC     : {result.ipc:.2f}  "
        f"({result.cycles} cycles, {stats.committed} instructions)",
    ]
    if stats.branches:
        lines.append(
            f"branches: {stats.mispredict_ratio * 100:.1f}% mispredicted "
            f"({stats.mispredicts}/{stats.branches}), "
            f"{stats.btb_misses} BTB misses"
        )
    if stats.dcache_accesses:
        l1 = stats.dcache_misses / stats.dcache_accesses
        l2 = stats.l2_misses / max(1, stats.l2_accesses)
        lines.append(
            f"caches  : L1D {l1 * 100:.1f}% miss, "
            f"L2 {l2 * 100:.1f}% local miss "
            f"({stats.l2_accesses} L2 accesses)"
        )
    per_instruction = result.energy / max(1, stats.committed)
    lines.append(
        f"energy  : {result.energy:.3e} nJ "
        f"({per_instruction:.3f} nJ/instruction)"
    )
    if stats.wrong_path_fetched:
        lines.append(
            f"spec.   : {stats.wrong_path_fetched} wrong-path "
            f"instructions fetched and squashed"
        )
    lines.append(stall_breakdown(result))
    return "\n".join(lines)


def stall_breakdown(result: PipelineResult) -> str:
    """One-line stall-cause shares, largest first."""
    stats = result.stats
    total = sum(stats.stall_cycles.values())
    if total == 0 or result.cycles == 0:
        return "stalls  : none recorded"
    ranked = sorted(
        stats.stall_cycles.items(), key=lambda item: -item[1]
    )
    shares = ", ".join(
        f"{reason} {count / result.cycles * 100:.0f}%"
        for reason, count in ranked
        if count > 0
    )
    return f"stalls  : {shares}"


def compare_runs(
    labels: List[str],
    results: List[PipelineResult],
) -> str:
    """Side-by-side comparison table of several runs."""
    if len(labels) != len(results):
        raise ValueError("one label per result is required")
    if not results:
        raise ValueError("at least one result is required")
    header = (
        f"{'machine':<16} {'IPC':>6} {'cycles':>10} {'energy':>12} "
        f"{'nJ/instr':>9} {'mispred':>8}"
    )
    rows = [header, "-" * len(header)]
    for label, result in zip(labels, results):
        stats = result.stats
        rows.append(
            f"{label:<16} {result.ipc:>6.2f} {result.cycles:>10} "
            f"{result.energy:>12.3e} "
            f"{result.energy / max(1, stats.committed):>9.3f} "
            f"{stats.mispredict_ratio * 100:>7.1f}%"
        )
    return "\n".join(rows)
