"""Plan a simulation budget before burning any cycles on it.

An architecture team gets S simulations of cluster time and must decide
how to split them between offline pool training (N programs x T
simulations, paid once) and online responses (R per future program).
This example:

1. asks the planner for the best splits under several budgets,
2. shows the amortisation effect — the more programs the pool will
   serve, the more the per-program online share gets squeezed,
3. calibrates the planner's accuracy surrogate against real measured
   sweeps on this machine and compares its predictions.

Run:  python examples/budget_planning.py
"""

from repro import DesignSpaceDataset, Metric, spec2000_suite
from repro.exploration import (
    amortisation_curve,
    fit_accuracy_model,
    plan_budget,
)


def main() -> None:
    print("== best (N, T, R) splits by total budget, one new program ==")
    print(f"{'budget':>7} | {'N':>3} {'T':>5} {'R':>4} | expected rmae")
    for budget in (500, 2000, 8000, 20000):
        plans = plan_budget(budget, new_programs=1, top=1)
        if not plans:
            print(f"{budget:>7} | (no admissible split)")
            continue
        plan = plans[0]
        print(f"{budget:>7} | {plan.pool_size:>3} {plan.training_size:>5} "
              f"{plan.responses:>4} | {plan.expected_rmae:.1f}%")

    print("\n== amortisation: 4,000-simulation budget, varying programs ==")
    print(f"{'programs':>8} | {'N':>3} {'T':>5} {'R':>4} | "
          f"{'offline':>7} {'online':>7}")
    for count, plan in amortisation_curve(4000):
        if plan is None:
            continue
        print(f"{count:>8} | {plan.pool_size:>3} {plan.training_size:>5} "
              f"{plan.responses:>4} | {plan.offline_simulations:>7} "
              f"{plan.online_simulations:>7}")

    print("\n== calibrating the accuracy surrogate from measurements ==")
    suite = spec2000_suite().subset(
        ["gzip", "crafty", "applu", "swim", "mesa", "galgel", "vpr", "ammp"]
    )
    dataset = DesignSpaceDataset.sampled(suite, sample_size=800, seed=31)
    model = fit_accuracy_model(
        dataset,
        Metric.CYCLES,
        points=((64, 4, 8), (64, 6, 32), (256, 4, 32), (256, 6, 8),
                (512, 5, 16)),
        seed=2,
    )
    print(f"fitted: base {model.base:.1f}  +{model.training_coefficient:.0f}/sqrt(T)"
          f"  +{model.pool_coefficient:.0f}/N"
          f"  +{model.response_coefficient:.0f}/R^0.7"
          f"  (residual {model.residual_rmse:.1f} points)")
    print(f"prediction at the paper's operating point (T=512, N=25, R=32): "
          f"{model.expected_rmae(512, 25, 32):.1f}% rmae")
    print("(extrapolating a surrogate fitted on an 8-program subset is "
          "optimistic — fit on the operating range you care about "
          "before trusting absolute values)")


if __name__ == "__main__":
    main()
