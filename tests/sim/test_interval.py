"""Behavioural tests for the interval simulator.

These encode the paper's Section 3.4 observations as invariants: the
register file is the critical bottleneck, wide machines burn energy,
memory-bound programs live and die by the L2, and so on.
"""

import numpy as np
import pytest

from repro.sim import IntervalSimulator, Metric
from repro.workloads import spec2000_profile


@pytest.fixture(scope="module")
def sim():
    return IntervalSimulator()


@pytest.fixture(scope="module")
def baseline(sim):
    return sim.space.baseline


class TestBasics:
    def test_result_metrics_consistent(self, sim, baseline):
        result = sim.simulate(spec2000_profile("gzip"), baseline)
        assert result.ed == pytest.approx(result.cycles * result.energy)
        assert result.edd == pytest.approx(result.ed * result.cycles)

    def test_metric_lookup(self, sim, baseline):
        result = sim.simulate(spec2000_profile("gzip"), baseline)
        assert result.metric(Metric.CYCLES) == result.cycles
        assert result.metric(Metric.EDD) == result.edd

    def test_batch_matches_scalar(self, sim, baseline, configs):
        profile = spec2000_profile("applu")
        subset = list(configs[:20])
        batch = sim.simulate_batch(profile, subset)
        for i, config in enumerate(subset):
            single = sim.simulate(profile, config)
            assert batch.cycles[i] == pytest.approx(single.cycles)
            assert batch.energy[i] == pytest.approx(single.energy)

    def test_empty_batch(self, sim):
        batch = sim.simulate_batch(spec2000_profile("gzip"), [])
        assert len(batch) == 0

    def test_illegal_configuration_rejected(self, sim, baseline):
        config = baseline.replace(rob_size=32, iq_size=80)
        with pytest.raises(ValueError):
            sim.simulate(spec2000_profile("gzip"), config)

    def test_deterministic(self, sim, baseline):
        profile = spec2000_profile("gzip")
        a = sim.simulate(profile, baseline)
        b = sim.simulate(profile, baseline)
        assert a.cycles == b.cycles and a.energy == b.energy

    def test_breakdown_fields(self, sim, baseline):
        result = sim.simulate(spec2000_profile("gzip"), baseline)
        assert {"window", "ipc_base", "cpi", "mlp"} <= set(result.breakdown)
        assert result.breakdown["ipc_base"] <= baseline.width

    def test_cycles_scale_with_instructions(self, sim, baseline):
        short = spec2000_profile("gzip")
        long = short.with_overrides(instructions=short.instructions * 2)
        assert sim.simulate(long, baseline).cycles == pytest.approx(
            2 * sim.simulate(short, baseline).cycles
        )


class TestRegisterFileBottleneck:
    """Section 3.4: a small RF dominates the worst-cycles tail."""

    def test_tiny_rf_is_a_cliff(self, sim, baseline):
        profile = spec2000_profile("gzip")
        tiny = sim.simulate(profile, baseline.replace(rf_size=40)).cycles
        base = sim.simulate(profile, baseline).cycles
        assert tiny > 1.5 * base

    def test_big_rf_beyond_rob_does_not_help(self, sim, baseline):
        """Large RF is not sufficient for high performance (Fig 2c)."""
        profile = spec2000_profile("gzip")
        big = sim.simulate(profile, baseline.replace(rf_size=160)).cycles
        base = sim.simulate(profile, baseline).cycles
        assert big == pytest.approx(base, rel=0.12)

    def test_rf_cliff_shrinks_the_window(self, sim, baseline):
        profile = spec2000_profile("gzip")
        result = sim.simulate(profile, baseline.replace(rf_size=40))
        assert result.breakdown["window"] < 20


class TestMemoryHierarchy:
    def test_l2_matters_for_memory_bound_art(self, sim, baseline):
        art = spec2000_profile("art")
        small = sim.simulate(art, baseline.replace(l2cache_kb=256)).cycles
        large = sim.simulate(art, baseline.replace(l2cache_kb=4096)).cycles
        assert small > 1.25 * large

    def test_l2_barely_matters_for_cache_friendly_gzip(self, sim, baseline):
        gzip = spec2000_profile("gzip")
        small = sim.simulate(gzip, baseline.replace(l2cache_kb=1024)).cycles
        large = sim.simulate(gzip, baseline.replace(l2cache_kb=4096)).cycles
        assert small < 1.15 * large

    def test_mcf_is_slowest(self, sim, baseline):
        mcf = sim.simulate(spec2000_profile("mcf"), baseline).cycles
        gzip = sim.simulate(spec2000_profile("gzip"), baseline).cycles
        assert mcf > 3 * gzip

    def test_bigger_dcache_reduces_cycles(self, sim, baseline):
        profile = spec2000_profile("equake")
        small = sim.simulate(profile, baseline.replace(dcache_kb=8)).cycles
        large = sim.simulate(profile, baseline.replace(dcache_kb=128)).cycles
        assert large < small


class TestFrontEnd:
    def test_bigger_gshare_reduces_cycles_for_branchy_code(self, sim, baseline):
        profile = spec2000_profile("gcc")
        small = sim.simulate(profile, baseline.replace(gshare_size=1024)).cycles
        large = sim.simulate(profile, baseline.replace(gshare_size=32768)).cycles
        assert large < small

    def test_width_helps_high_ilp_fp_code(self, sim, baseline):
        profile = spec2000_profile("galgel")
        narrow = sim.simulate(
            profile, baseline.replace(width=2, rf_read_ports=4,
                                      rf_write_ports=2)
        ).cycles
        wide = sim.simulate(
            profile, baseline.replace(width=8)
        ).cycles
        assert wide < narrow

    def test_few_read_ports_throttle_issue(self, sim, baseline):
        profile = spec2000_profile("galgel")
        starved = sim.simulate(profile, baseline.replace(rf_read_ports=2)).cycles
        fed = sim.simulate(profile, baseline.replace(rf_read_ports=8)).cycles
        assert starved > fed


class TestEnergyBehaviour:
    """Section 3.4's energy structure."""

    def test_wide_machine_burns_more_energy(self, sim, baseline):
        profile = spec2000_profile("gzip")
        narrow = sim.simulate(
            profile,
            baseline.replace(width=2, rf_read_ports=4, rf_write_ports=2),
        ).energy
        wide = sim.simulate(profile, baseline.replace(width=8)).energy
        assert wide > narrow

    def test_big_l2_leaks(self, sim, baseline):
        profile = spec2000_profile("gzip")
        small = sim.simulate(profile, baseline.replace(l2cache_kb=1024)).energy
        large = sim.simulate(profile, baseline.replace(l2cache_kb=4096)).energy
        assert large > small

    def test_tiny_rf_wastes_energy_through_leakage(self, sim, baseline):
        """Slow configurations pay static energy for longer (Fig 3i)."""
        profile = spec2000_profile("gzip")
        tiny = sim.simulate(profile, baseline.replace(rf_size=40)).energy
        base = sim.simulate(profile, baseline).energy
        assert tiny > base

    def test_fewer_read_ports_save_energy(self, sim, baseline):
        profile = spec2000_profile("gzip")
        few = sim.simulate(profile, baseline.replace(rf_read_ports=4)).energy
        many = sim.simulate(profile, baseline.replace(rf_read_ports=16,
                                                      width=8)).energy
        assert few < many


class TestProgramDifferences:
    def test_programs_have_distinct_spaces(self, sim, configs):
        a = sim.simulate_batch(spec2000_profile("gzip"), list(configs[:50]))
        b = sim.simulate_batch(spec2000_profile("applu"), list(configs[:50]))
        assert not np.allclose(a.cycles, b.cycles)

    def test_idiosyncrasy_changes_the_space_shape(self, sim, configs):
        """Two profiles differing only in idiosyncrasy seed disagree."""
        base = spec2000_profile("gzip")
        twisted = base.with_overrides(
            idiosyncrasy_performance=base.idiosyncrasy_performance.__class__(
                amplitude=base.idiosyncrasy_performance.amplitude,
                seed=base.idiosyncrasy_performance.seed + 1,
            )
        )
        a = sim.simulate_batch(base, list(configs[:50])).cycles
        b = sim.simulate_batch(twisted, list(configs[:50])).cycles
        assert not np.allclose(a, b)
        # But only by the idiosyncrasy amplitude.
        assert np.max(np.abs(a - b) / a) < 3 * base.idiosyncrasy_performance.amplitude
