"""Deterministic fault injection — the resilience test substrate.

Real campaigns fail in three characteristic ways: a backend call raises
(a crashed simulator process, a dropped connection), a call returns
corrupted values (NaN/Inf from an overflowed model or a truncated
read), or a call stalls far beyond its deadline.
:class:`FaultInjectingBackend` reproduces all three on demand, *deterministically*:
whether attempt ``k`` of a given (program, batch) cell fails is a pure
function of the seed, so a test run is exactly repeatable, and — because
faults only ever discard or corrupt a *copy* of the inner backend's
answer — a campaign that retries through the faults produces metric
matrices bit-identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.obs import get_logger, get_registry
from repro.sim.interval import BatchResult
from repro.workloads.profile import WorkloadProfile

from .backend import SimulationBackend, SimulationError

_log = get_logger(__name__)


def derive_rng(*parts) -> np.random.Generator:
    """A deterministic generator derived from a tuple of identifiers.

    Hashes the ``str()`` of every part (joined by ``/``) through
    sha256 and seeds numpy from the first eight digest bytes — the same
    derivation :class:`FaultInjectingBackend` uses per (cell, attempt),
    exposed so other fault machinery (notably
    :mod:`repro.distrib.chaos`) draws from streams that are pure
    functions of their identifiers: same plan, same seed, same faults.
    """
    digest = hashlib.sha256(
        b"/".join(str(part).encode("utf-8") for part in parts)
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class TransientSimulationError(SimulationError):
    """An injected failure that a retry is expected to clear."""


class PermanentSimulationError(SimulationError):
    """An injected failure that persists across every retry."""


class VirtualClock:
    """A deterministic clock/sleep pair for testing time-outs and backoff.

    ``clock()`` reads the current virtual time; ``sleep(s)`` advances it
    instantly.  Handing the same instance to a
    :class:`FaultInjectingBackend` (which sleeps through injected
    stalls) and to :func:`~repro.runtime.retry.call_with_retry` (which
    measures elapsed time against the timeout and sleeps between
    attempts) exercises the whole timeout path without any real waiting.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` without really waiting."""
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.now += seconds


def _no_sleep(seconds: float) -> None:
    """Default stall hook: don't actually sleep (tests inject a clock)."""


def _batch_fingerprint(
    profile: WorkloadProfile, configs: Sequence[Configuration]
) -> str:
    """Stable identity of one (program, batch) cell."""
    digest = hashlib.sha256(profile.name.encode("utf-8"))
    for config in configs:
        digest.update(repr(tuple(config.values())).encode("utf-8"))
    return digest.hexdigest()


class FaultInjectingBackend:
    """Wrap a backend with seeded transient/corruption/stall faults.

    Deliberately suite-less: the wrapper exposes only
    ``simulate_batch``, so :func:`repro.runtime.backend.supports_suite`
    reports ``False`` and campaigns degrade to per-cell batches.  Fault
    decisions are pure functions of the per-*cell* fingerprint and
    attempt number; a program-major suite call would collapse many
    cells into one decision point and change which faults fire, so the
    resilience tests keep the per-cell schedule instead.

    Args:
        inner: The real backend supplying correct answers.
        seed: Master seed; every fault decision derives from it, the
            cell fingerprint and the attempt number, so runs are exactly
            repeatable.
        transient_rate: Probability that one call raises
            :class:`TransientSimulationError` (independently per
            attempt — retries eventually get through).
        corrupt_rate: Probability that one call's result comes back with
            NaN/Inf poisoning (on a copy; the inner result is untouched).
        stall_rate: Probability that one call stalls ``stall_seconds``
            on the injected ``sleep`` before returning.
        stall_seconds: Length of an injected stall.
        permanent_rate: Probability that a *cell* fails on every attempt
            (models a configuration the backend simply cannot simulate).
        sleep: Sleep hook for stalls; pass a
            :class:`VirtualClock` ``.sleep`` in tests.  Defaults to a
            no-op so accidental construction never blocks.
    """

    def __init__(
        self,
        inner: SimulationBackend,
        seed: int = 0,
        transient_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_seconds: float = 30.0,
        permanent_rate: float = 0.0,
        sleep=None,
    ) -> None:
        for name, rate in (
            ("transient_rate", transient_rate),
            ("corrupt_rate", corrupt_rate),
            ("stall_rate", stall_rate),
            ("permanent_rate", permanent_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.inner = inner
        self.seed = seed
        self.transient_rate = transient_rate
        self.corrupt_rate = corrupt_rate
        self.stall_rate = stall_rate
        self.stall_seconds = stall_seconds
        self.permanent_rate = permanent_rate
        # A module-level no-op rather than a lambda keeps the backend
        # picklable, which parallel campaigns require.
        self._sleep = sleep if sleep is not None else _no_sleep
        self._attempts: Dict[str, int] = {}
        self.calls = 0
        self.injected_transients = 0
        self.injected_corruptions = 0
        self.injected_stalls = 0
        self.injected_permanents = 0

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------
    @property
    def space(self):
        """Design space of the wrapped backend (when it exposes one)."""
        return self.inner.space

    def simulate_batch(
        self, profile: WorkloadProfile, configs: Sequence[Configuration]
    ) -> BatchResult:
        """Simulate via the inner backend, injecting scheduled faults."""
        self.calls += 1
        cell = _batch_fingerprint(profile, configs)
        attempt = self._attempts.get(cell, 0)
        self._attempts[cell] = attempt + 1

        cell_rng = self._rng(cell)
        if cell_rng.random() < self.permanent_rate:
            self.injected_permanents += 1
            self._count("permanent", profile, attempt)
            raise PermanentSimulationError(
                f"injected permanent failure for {profile.name!r}"
            )

        rng = self._rng(cell, attempt)
        if rng.random() < self.transient_rate:
            self.injected_transients += 1
            self._count("transient", profile, attempt)
            raise TransientSimulationError(
                f"injected transient failure for {profile.name!r} "
                f"(attempt {attempt})"
            )

        result = self.inner.simulate_batch(profile, configs)

        if rng.random() < self.stall_rate:
            self.injected_stalls += 1
            self._count("stall", profile, attempt)
            self._sleep(self.stall_seconds)

        if rng.random() < self.corrupt_rate and len(result) > 0:
            self.injected_corruptions += 1
            self._count("corrupt", profile, attempt)
            result = self._corrupt(result, rng)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _count(kind: str, profile: WorkloadProfile, attempt: int) -> None:
        """Record one injected fault in the metrics and the debug log."""
        get_registry().counter("faults.injected", kind=kind).inc()
        _log.debug(
            "injected %s fault for %r (attempt %d)",
            kind, profile.name, attempt,
            extra={"event": "fault.injected", "kind": kind,
                   "program": profile.name, "attempt": attempt},
        )

    def _rng(self, cell: str, attempt: Optional[int] = None):
        parts = ["fault", self.seed, cell]
        if attempt is not None:
            parts.append(attempt)
        return derive_rng(*parts)

    def _corrupt(self, result: BatchResult, rng) -> BatchResult:
        """Poison a few positions of copied metric arrays with NaN/Inf."""
        arrays: Tuple[np.ndarray, ...] = tuple(
            np.array(values, copy=True)
            for values in (result.cycles, result.energy, result.ed, result.edd)
        )
        count = int(rng.integers(1, max(2, len(result) // 4 + 1)))
        for _ in range(count):
            which = int(rng.integers(0, len(arrays)))
            index = int(rng.integers(0, len(result)))
            arrays[which][index] = np.nan if rng.random() < 0.5 else np.inf
        return BatchResult(*arrays)

    def reset(self) -> None:
        """Forget attempt counters and statistics (fresh injection run)."""
        self._attempts.clear()
        self.calls = 0
        self.injected_transients = 0
        self.injected_corruptions = 0
        self.injected_stalls = 0
        self.injected_permanents = 0
