"""Elastic fleets end to end: membership, stealing, status, chaos.

Everything here runs the real coordinator/worker stack over loopback
TCP on one event loop, and every campaign is held to the same bar as
the plain distributed tests: **bit-identical journal checksums against
a serial run**, however violently the fleet churns underneath it.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.distrib import (
    CampaignCoordinator,
    CampaignWorker,
    ChaosEvent,
    ChaosPlan,
    WorkerCapabilities,
    fetch_status_async,
    run_chaos_campaign,
)
from repro.distrib.chaos import journal_checksums as chaos_journal_checksums
from repro.distrib.worker import RepeatBackend
from repro.runtime import CampaignRunner, RetryPolicy

FAST_POLICY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def make_runner(backend, path, seed=5):
    return CampaignRunner(
        backend, path, chunk_size=16, retry_policy=FAST_POLICY, seed=seed
    )


def serial_result(backend, suite, configs, tmp_path):
    runner = make_runner(backend, tmp_path / "serial")
    return runner, runner.run(suite, configs)


def journal_checksums(runner):
    return {
        record["cell"]: record["checksum"]
        for record in runner.journal.records()
        if "cell" in record
    }


def run_fleet(
    runner,
    suite,
    configs,
    worker_specs,
    coordinator_kwargs=None,
    late_specs=(),
    late_after=0.0,
    status_probe=False,
):
    """One campaign; each worker spec is a kwargs dict for the worker.

    ``late_specs`` workers are started ``late_after`` seconds after the
    initial fleet, exercising mid-campaign admission.  With
    ``status_probe`` the read-only status endpoint is polled mid-run
    and its last payload returned.
    """

    async def scenario():
        coordinator = CampaignCoordinator(
            runner,
            port=0,
            monitor_interval=0.02,
            **(coordinator_kwargs or {}),
        )
        ready = asyncio.Event()
        campaign = asyncio.create_task(
            coordinator.run_async(
                suite, configs, ready_callback=lambda _: ready.set()
            )
        )
        await ready.wait()

        def start(spec):
            kwargs = dict(spec)
            return asyncio.create_task(
                CampaignWorker(
                    "127.0.0.1", coordinator.port, **kwargs
                ).run_async()
            )

        runs = [start(spec) for spec in worker_specs]
        status = None

        async def late_and_probe():
            nonlocal status
            if late_after:
                await asyncio.sleep(late_after)
            runs.extend(start(spec) for spec in late_specs)
            if status_probe:
                while not campaign.done():
                    try:
                        status = await fetch_status_async(
                            "127.0.0.1", coordinator.port, timeout=2.0
                        )
                    except (ConnectionError, OSError):
                        break
                    await asyncio.sleep(0.05)

        side = asyncio.create_task(late_and_probe())
        result = await campaign
        await asyncio.gather(*runs, return_exceptions=True)
        side.cancel()
        await asyncio.gather(side, return_exceptions=True)
        return coordinator, result, status

    return asyncio.run(scenario())


class TestElasticMembership:
    def test_capabilities_reach_the_roster(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, _ = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        runner = make_runner(backend, tmp_path / "caps")
        coordinator, result, _ = run_fleet(
            runner,
            tiny_suite,
            tiny_configs,
            worker_specs=[
                {
                    "worker_id": "big",
                    "backend_factory": lambda: backend,
                    "capabilities": WorkerCapabilities(
                        cores=8, memory_mb=4096, throughput=400.0
                    ),
                },
                {
                    "worker_id": "small",
                    "backend_factory": lambda: backend,
                    "capabilities": WorkerCapabilities(
                        cores=2, memory_mb=1024, throughput=100.0
                    ),
                },
            ],
        )
        assert result.complete
        big = coordinator.membership.get("big")
        assert big.capabilities.cores == 8
        assert big.capabilities.throughput == 400.0
        roster = {
            entry["worker"]: entry
            for entry in coordinator.membership.roster()
        }
        assert roster["big"]["throughput"] == 400.0
        assert roster["big"]["cores"] == 8
        assert roster["small"]["throughput"] == 100.0
        assert coordinator.stats.joins == 2
        assert coordinator.stats.leaves == 2
        assert journal_checksums(runner) == journal_checksums(serial_runner)

    def test_late_joiner_is_admitted_and_contributes(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, _ = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        runner = make_runner(backend, tmp_path / "late")
        slowish = lambda: RepeatBackend(backend, delay=0.05)
        coordinator, result, _ = run_fleet(
            runner,
            tiny_suite,
            tiny_configs,
            worker_specs=[
                {"worker_id": "w0", "backend_factory": slowish},
            ],
            late_specs=[
                {"worker_id": "late", "backend_factory": lambda: backend},
            ],
            late_after=0.15,
        )
        assert result.complete
        late = coordinator.membership.get("late")
        assert late is not None
        assert late.tasks_completed > 0, "late joiner never got work"
        join_events = [
            e for e in coordinator.membership.events if e["event"] == "join"
        ]
        assert {e["worker"] for e in join_events} == {"w0", "late"}
        assert journal_checksums(runner) == journal_checksums(serial_runner)

    def test_draining_worker_releases_unstarted_bundle_cells(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, _ = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        runner = make_runner(backend, tmp_path / "release")
        # Three advertised throughputs make "burst" weight 2x the
        # median, so it is leased 2-cell bundles; max_tasks=1 forces it
        # to drain mid-bundle and hand the unstarted cell back.
        coordinator, result, _ = run_fleet(
            runner,
            tiny_suite,
            tiny_configs,
            worker_specs=[
                {
                    "worker_id": "burst",
                    "backend_factory": lambda: backend,
                    "max_tasks": 1,
                    "capabilities": WorkerCapabilities(throughput=400.0),
                },
                {
                    "worker_id": "peer0",
                    "backend_factory": lambda: backend,
                    "capabilities": WorkerCapabilities(throughput=100.0),
                },
                {
                    "worker_id": "peer1",
                    "backend_factory": lambda: backend,
                    "capabilities": WorkerCapabilities(throughput=100.0),
                },
            ],
        )
        assert result.complete
        assert not result.failed_cells
        assert coordinator.stats.releases >= 1
        assert journal_checksums(runner) == journal_checksums(serial_runner)

    def test_reconnecting_worker_exits_cleanly_after_completion(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """End-of-campaign hang-up must not look like a lost coordinator.

        A worker with reconnects enabled treats a bare EOF as "re-dial";
        the coordinator therefore sends an explicit drain frame before
        closing, or the worker would burn its whole reconnect budget
        against a dead port and exit nonzero after a *successful* run.
        """
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        runner = make_runner(backend, tmp_path / "drain")

        async def scenario():
            coordinator = CampaignCoordinator(
                runner, port=0, monitor_interval=0.02
            )
            ready = asyncio.Event()
            campaign = asyncio.create_task(
                coordinator.run_async(
                    tiny_suite,
                    tiny_configs,
                    ready_callback=lambda _: ready.set(),
                )
            )
            await ready.wait()
            worker = CampaignWorker(
                "127.0.0.1",
                coordinator.port,
                worker_id="sticky",
                backend_factory=lambda: backend,
                reconnect_attempts=4,
                reconnect_delay=5.0,  # a single re-dial would blow the
            )                         # wait_for budget below
            run = asyncio.create_task(worker.run_async())
            result = await campaign
            tasks_done = await asyncio.wait_for(run, timeout=2.0)
            return result, tasks_done

        result, tasks_done = asyncio.run(scenario())
        assert result.complete
        assert tasks_done == serial.total_cells
        assert journal_checksums(runner) == journal_checksums(serial_runner)


class TestWorkStealing:
    def test_idle_worker_steals_from_straggler(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, _ = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        runner = make_runner(backend, tmp_path / "steal")
        coordinator, result, _ = run_fleet(
            runner,
            tiny_suite,
            tiny_configs,
            worker_specs=[
                {
                    "worker_id": "tar",
                    "backend_factory": lambda: RepeatBackend(
                        backend, delay=0.8
                    ),
                },
                {"worker_id": "quick", "backend_factory": lambda: backend},
            ],
            # Long leases so expiry cannot recover the cells first;
            # stealing has to.
            coordinator_kwargs={
                "lease_timeout": 30.0,
                "steal_after_fraction": 0.01,
            },
        )
        assert result.complete
        assert not result.failed_cells
        assert coordinator.stats.steals >= 1
        assert coordinator.stats.speculative_wins >= 1
        assert journal_checksums(runner) == journal_checksums(serial_runner)

    def test_losing_duplicate_is_discarded_not_double_journalled(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, _ = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        runner = make_runner(backend, tmp_path / "dup")
        coordinator, result, _ = run_fleet(
            runner,
            tiny_suite,
            tiny_configs,
            worker_specs=[
                {
                    "worker_id": "tar",
                    "backend_factory": lambda: RepeatBackend(
                        backend, delay=0.4
                    ),
                },
                {"worker_id": "quick", "backend_factory": lambda: backend},
            ],
            coordinator_kwargs={
                "lease_timeout": 30.0,
                "steal_after_fraction": 0.01,
            },
        )
        assert result.complete
        checksums = journal_checksums(runner)
        assert checksums == journal_checksums(serial_runner)
        # Exactly one journal record per cell even though some cells
        # ran twice (speculative duplicate + original).
        records = [
            r for r in runner.journal.records() if "cell" in r
        ]
        assert len(records) == len(checksums)


class TestStatusEndpoint:
    def test_status_snapshot_mid_campaign(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        runner = make_runner(backend, tmp_path / "status")
        coordinator, result, status = run_fleet(
            runner,
            tiny_suite,
            tiny_configs,
            worker_specs=[
                {
                    "worker_id": "w0",
                    "backend_factory": lambda: RepeatBackend(
                        backend, delay=0.02
                    ),
                },
            ],
            status_probe=True,
        )
        assert result.complete
        assert status is not None, "status probe never landed"
        assert status["type"] == "status"
        assert status["campaign"]["total_cells"] == status["progress"]["total"]
        assert {"journalled", "failed", "queued", "leased", "total"} <= set(
            status["progress"]
        )
        workers = {entry["worker"] for entry in status["fleet"]}
        assert "w0" in workers
        assert "tasks_completed" in status["stats"]
        # The probe connection must not count as a worker join.
        assert coordinator.stats.joins == 1


class TestChaosHarness:
    def _plan(self):
        return ChaosPlan(
            seed=11,
            events=(
                ChaosEvent(at=0.10, action="slow", target="w2",
                           factor=10.0),
                ChaosEvent(at=0.15, action="kill", target="w0"),
                ChaosEvent(at=0.20, action="spawn", target="late"),
                ChaosEvent(at=0.25, action="partition", target="w1",
                           duration=0.4),
                ChaosEvent(at=0.30, action="drop"),
            ),
        )

    def _chaos_kwargs(self, backend, tmp_path, name):
        checkpoint = tmp_path / name
        return {
            "runner_factory": lambda: make_runner(backend, checkpoint),
            "n_workers": 3,
            "backend_factory": lambda: RepeatBackend(backend, delay=0.03),
            "coordinator_kwargs": {
                "lease_timeout": 0.6,
                "monitor_interval": 0.02,
            },
        }, checkpoint

    def test_chaos_campaign_loses_nothing_and_matches_serial(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        kwargs, checkpoint = self._chaos_kwargs(backend, tmp_path, "chaos")
        report = asyncio.run(
            run_chaos_campaign(
                profiles=tiny_suite,
                configs=tiny_configs,
                plan=self._plan(),
                **kwargs,
            )
        )
        assert report.result.complete
        assert not report.result.failed_cells
        serial_sums = journal_checksums(serial_runner)
        chaos_sums = chaos_journal_checksums(checkpoint)
        assert chaos_sums == serial_sums, "journal diverged under chaos"
        assert len(chaos_sums) == serial.total_cells
        # The fleet really churned: w0 died, "late" joined.
        actions = [entry["action"] for entry in report.event_log]
        assert actions == ["slow", "kill", "spawn", "partition", "drop"]
        assert "late" in report.worker_tasks

    def test_same_plan_and_seed_reproduce_the_event_sequence(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        # Unpinned targets force the seeded chooser to do the picking.
        plan = ChaosPlan(
            seed=23,
            events=(
                ChaosEvent(at=0.05, action="drop"),
                ChaosEvent(at=0.10, action="slow", factor=5.0,
                           duration=0.2),
                ChaosEvent(at=0.15, action="kill"),
                ChaosEvent(at=0.20, action="spawn"),
            ),
        )
        logs = []
        for name in ("rep-a", "rep-b"):
            kwargs, _ = self._chaos_kwargs(backend, tmp_path, name)
            report = asyncio.run(
                run_chaos_campaign(
                    profiles=tiny_suite,
                    configs=tiny_configs,
                    plan=plan,
                    **kwargs,
                )
            )
            assert report.result.complete
            logs.append(report.event_log)
        assert logs[0] == logs[1], "chaos replay diverged"

    def test_coordinator_restart_resumes_the_campaign(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, _ = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        plan = ChaosPlan(
            seed=3,
            events=(
                ChaosEvent(at=0.25, action="restart_coordinator"),
            ),
        )
        kwargs, checkpoint = self._chaos_kwargs(
            backend, tmp_path, "restart"
        )
        report = asyncio.run(
            run_chaos_campaign(
                profiles=tiny_suite,
                configs=tiny_configs,
                plan=plan,
                **kwargs,
            )
        )
        assert report.result.complete
        assert not report.result.failed_cells
        assert chaos_journal_checksums(checkpoint) == journal_checksums(
            serial_runner
        )

    def test_plan_round_trips_through_json(self):
        plan = self._plan()
        assert ChaosPlan.from_json(
            __import__("json").dumps(plan.to_dict())
        ) == plan

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosEvent(at=0.0, action="meteor")
        with pytest.raises(ValueError, match="negative"):
            ChaosEvent(at=-1.0, action="kill")
        with pytest.raises(ValueError, match="not JSON"):
            ChaosPlan.from_json("{nope")
        with pytest.raises(ValueError, match="unknown chaos event field"):
            ChaosEvent.from_dict({"at": 0, "action": "kill", "speed": 1})
