"""Tests for the machine specification (Table 2)."""

import pytest

from repro.sim import FixedParameters, MachineSpec, functional_units
from repro.sim.machine import width_scaling_rows


class TestFunctionalUnits:
    def test_papers_four_way_example(self):
        """Table 2(b): 4-way = 4 int ALUs, 2 int mul, 2 FP ALUs, 1 FP mul."""
        units = functional_units(4)
        assert units["int_alu"] == 4
        assert units["int_mul"] == 2
        assert units["fp_alu"] == 2
        assert units["fp_mul"] == 1

    def test_two_way(self):
        units = functional_units(2)
        assert units["int_alu"] == 2
        assert units["fp_mul"] == 1

    def test_eight_way(self):
        units = functional_units(8)
        assert units["int_alu"] == 8
        assert units["int_mul"] == 4
        assert units["fp_mul"] == 2

    def test_monotone_in_width(self):
        for unit in ("int_alu", "int_mul", "fp_alu", "fp_mul", "dcache_ports"):
            counts = [functional_units(w)[unit] for w in (2, 4, 6, 8)]
            assert counts == sorted(counts)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            functional_units(0)


class TestMachineSpec:
    def test_rename_registers(self, space):
        spec = MachineSpec(space.baseline)
        assert spec.rename_registers == 96 - 32

    def test_rename_registers_never_negative(self, space):
        config = space.baseline.replace(rf_size=40)
        assert MachineSpec(config).rename_registers == 8

    def test_units_follow_width(self, space):
        spec = MachineSpec(space.baseline.replace(width=8, rf_read_ports=16,
                                                  rf_write_ports=8))
        assert spec.units["int_alu"] == 8

    def test_mispredict_penalty(self, space):
        spec = MachineSpec(space.baseline)
        penalty = spec.mispredict_penalty(resolve_cycles=10.0)
        assert penalty == (
            spec.fixed.frontend_depth
            + spec.fixed.branch_redirect_penalty
            + 10.0
        )


class TestFixedParameters:
    def test_table2a_rows_cover_the_core(self):
        rows = dict(FixedParameters().as_rows())
        assert "MSHR entries" in rows
        assert "Front-end pipeline depth" in rows

    def test_table2b_rows(self):
        rows = dict(width_scaling_rows())
        assert rows["Integer ALUs"] == "width"

    def test_defaults_are_sane(self):
        fixed = FixedParameters()
        assert fixed.l1_latency < fixed.l2_latency < fixed.memory_latency
        assert fixed.l1_line_bytes <= fixed.l2_line_bytes
