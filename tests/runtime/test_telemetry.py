"""Telemetry of the fault-tolerant runtime.

The observability acceptance bar: metrics must count what actually
happened (retries, breaker trips, injected faults), a parallel campaign
must merge worker telemetry into the same deterministic totals as a
serial one, and the manifest/trace a faulted resumed campaign leaves
behind must agree with its journal — all without perturbing a single
output bit.
"""

import json

import numpy as np
import pytest

from repro.obs import scoped_registry, scoped_tracer
from repro.runtime import (
    CampaignRunner,
    CircuitBreaker,
    FaultInjectingBackend,
    RetryPolicy,
    VirtualClock,
)
from repro.sim import Metric

#: Counters whose totals are deterministic for a seeded fault profile —
#: the ``n_jobs`` parity set (latency histograms are excluded: their
#: sums are wall-clock, only their counts are deterministic).
DETERMINISTIC_COUNTERS = (
    "retry.attempts",
    "retry.failures",
    "retry.retries",
    "campaign.attempts",
    "campaign.cells.simulated",
    "campaign.cells.resumed",
    "campaign.cells.failed",
    "campaign.cells.pending",
)


class TestRetryMetrics:
    def test_retry_counters_match_injected_faults(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        clock = VirtualClock()
        faulty = FaultInjectingBackend(
            backend, seed=11, transient_rate=0.2, sleep=clock.sleep
        )
        runner = CampaignRunner(
            faulty, tmp_path / "faulted", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=6, base_delay=0.1),
            sleep=clock.sleep, clock=clock,
        )
        with scoped_registry() as registry:
            result = runner.run(tiny_suite, tiny_configs)
        assert result.complete
        assert registry.value("retry.attempts") == result.attempts
        assert registry.value("retry.failures") == faulty.injected_transients
        assert registry.value("retry.retries") == faulty.injected_transients
        assert (
            registry.value("faults.injected", kind="transient")
            == faulty.injected_transients
        )
        assert faulty.injected_transients > 0  # the faults did fire
        assert registry.value("retry.exhausted") == 0
        assert (
            registry.histogram("campaign.chunk.seconds").count
            == result.simulated_cells
        )

    def test_exhausted_retries_counted(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        faulty = FaultInjectingBackend(backend, seed=29, permanent_rate=0.3)
        runner = CampaignRunner(
            faulty, tmp_path / "perm", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            breaker_threshold=100,
        )
        with scoped_registry() as registry:
            result = runner.run(tiny_suite, tiny_configs)
        assert result.failed_cells
        assert registry.value("retry.exhausted") == len(result.failed_cells)
        assert registry.value("campaign.cells.failed") == len(
            result.failed_cells
        )


class TestBreakerMetrics:
    def test_campaign_breaker_trip_is_counted(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        faulty = FaultInjectingBackend(backend, seed=0, transient_rate=1.0)
        runner = CampaignRunner(
            faulty, tmp_path / "down", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            breaker_threshold=4,
        )
        with scoped_registry() as registry:
            result = runner.run(tiny_suite, tiny_configs)
        assert not result.complete
        assert registry.value("breaker.trips") == 1
        assert registry.value("breaker.open") == 1
        assert registry.value("campaign.cells.pending") == len(
            result.pending_cells
        )

    def test_breaker_state_and_reset(self):
        with scoped_registry() as registry:
            breaker = CircuitBreaker(failure_threshold=2)
            assert breaker.state == "closed"
            assert breaker.trips == 0
            breaker.record_failure()
            assert breaker.state == "closed"
            breaker.record_failure()
            assert breaker.state == "open"
            assert breaker.trips == 1
            assert registry.value("breaker.trips") == 1
            breaker.reset()
            assert breaker.state == "closed"
            assert breaker.trips == 1  # trip history survives the reset
            assert registry.value("breaker.resets") == 1
            assert registry.value("breaker.open") == 0

    def test_reset_of_closed_breaker_is_silent(self):
        with scoped_registry() as registry:
            breaker = CircuitBreaker()
            breaker.record_failure()
            breaker.reset()
            assert registry.value("breaker.resets") == 0

    def test_success_closes_the_window_without_reset_metric(self):
        with scoped_registry() as registry:
            breaker = CircuitBreaker(failure_threshold=3)
            breaker.record_failure()
            breaker.record_success()
            assert breaker.consecutive_failures == 0
            assert registry.value("breaker.trips") == 0


class TestParallelParity:
    def test_serial_and_parallel_counters_identical(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """n_jobs must not change any deterministic counter: worker
        snapshots merged into the parent reproduce the serial totals."""
        totals = {}
        matrices = {}
        for label, n_jobs in (("serial", 1), ("parallel", 2)):
            faulty = FaultInjectingBackend(
                backend, seed=13, transient_rate=0.2
            )
            runner = CampaignRunner(
                faulty, tmp_path / label, chunk_size=16, n_jobs=n_jobs,
                retry_policy=RetryPolicy(max_attempts=6, base_delay=0.0),
            )
            with scoped_registry() as registry, scoped_tracer() as tracer:
                result = runner.run(tiny_suite, tiny_configs)
                assert result.complete
                totals[label] = {
                    name: registry.value(name)
                    for name in DETERMINISTIC_COUNTERS
                }
                totals[label]["faults.injected{transient}"] = registry.value(
                    "faults.injected", kind="transient"
                )
                totals[label]["chunk.count"] = registry.histogram(
                    "campaign.chunk.seconds"
                ).count
                totals[label]["simulate.spans"] = tracer.count(
                    "simulate.chunk"
                )
            matrices[label] = result.matrix(Metric.CYCLES)
        assert totals["serial"] == totals["parallel"]
        assert totals["serial"]["retry.failures"] > 0  # faults did fire
        assert np.array_equal(matrices["serial"], matrices["parallel"])

    def test_parallel_spans_carry_worker_attrs(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """A suite-capable backend gets one program-major task per
        chunk, so the workers emit one ``simulate.suite`` span each."""
        runner = CampaignRunner(
            backend, tmp_path / "par", chunk_size=16, n_jobs=2
        )
        with scoped_tracer() as tracer:
            result = runner.run(tiny_suite, tiny_configs)
        suite_spans = [
            s for s in tracer.spans if s["name"] == "simulate.suite"
        ]
        chunks = result.total_cells // len(result.programs)
        assert len(suite_spans) == chunks
        for record in suite_spans:
            assert record["attrs"]["outcome"] == "ok"
            assert record["attrs"]["attempts"] == 1
            assert record["attrs"]["programs"] == len(result.programs)

    def test_parallel_cell_spans_for_batch_only_backends(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """Suite-less backends keep the per-cell task shape and spans."""
        faulty = FaultInjectingBackend(backend, seed=3)
        runner = CampaignRunner(
            faulty, tmp_path / "cells", chunk_size=16, n_jobs=2
        )
        with scoped_tracer() as tracer:
            result = runner.run(tiny_suite, tiny_configs)
        chunk_spans = [
            s for s in tracer.spans if s["name"] == "simulate.chunk"
        ]
        assert len(chunk_spans) == result.total_cells
        for record in chunk_spans:
            assert record["attrs"]["outcome"] == "ok"
            assert record["attrs"]["attempts"] == 1


class TestManifestAndTrace:
    def test_faulted_resume_manifest_matches_journal(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """The acceptance scenario: a faulted, interrupted, resumed
        parallel campaign leaves a manifest and trace whose span counts
        agree with the journal."""
        clock = VirtualClock()

        def make_runner():
            faulty = FaultInjectingBackend(
                backend, seed=17, transient_rate=0.1, sleep=clock.sleep
            )
            return CampaignRunner(
                faulty, tmp_path / "resume", chunk_size=16, n_jobs=2,
                retry_policy=RetryPolicy(max_attempts=6, base_delay=0.1),
                sleep=clock.sleep, clock=clock,
            )

        first_runner = make_runner()
        first = first_runner.run(tiny_suite, tiny_configs, max_cells=5)
        assert not first.complete

        runner = make_runner()
        with scoped_registry() as registry, scoped_tracer() as tracer:
            second = runner.run(tiny_suite, tiny_configs, resume=True)
        assert second.complete
        assert second.resumed_cells == 5

        # spans agree with the result accounting...
        assert tracer.count("simulate.chunk") == second.simulated_cells
        assert tracer.count("resume.chunk") == second.resumed_cells
        assert tracer.count("campaign.run") == 1

        # ...and with the journal: every completed cell is journalled
        journal_cells = {
            record["cell"] for record in runner.journal.records()
        }
        assert len(journal_cells) == second.total_cells
        assert (
            tracer.count("simulate.chunk") + tracer.count("resume.chunk")
            == second.total_cells
        )

        # the manifest documents the same run
        manifest = json.loads(runner.run_manifest_path.read_text())
        assert manifest["schema"] == 1
        assert manifest["seed"] == runner.seed
        assert manifest["config_checksum"] == runner._config_checksum(
            second.configs
        )
        assert manifest["run"]["kind"] == "campaign"
        assert manifest["run"]["simulated_cells"] == second.simulated_cells
        assert manifest["run"]["resumed_cells"] == second.resumed_cells
        assert manifest["run"]["journal_records"] == len(
            runner.journal.records()
        )
        assert (
            manifest["timing"]["simulate.chunk"]["count"]
            == second.simulated_cells
        )
        assert (
            manifest["timing"]["resume.chunk"]["count"]
            == second.resumed_cells
        )
        # metrics exported into the manifest agree with the registry
        assert (
            manifest["metrics"]["campaign.cells.simulated"]["value"]
            == registry.value("campaign.cells.simulated")
        )

    def test_manifest_written_even_for_incomplete_runs(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        runner = CampaignRunner(backend, tmp_path / "part", chunk_size=16)
        runner.run(tiny_suite, tiny_configs, max_cells=2)
        manifest = json.loads(runner.run_manifest_path.read_text())
        assert manifest["run"]["simulated_cells"] == 2
        assert manifest["run"]["pending_cells"]

    def test_no_scratch_files_survive(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        runner = CampaignRunner(backend, tmp_path / "clean", chunk_size=16)
        runner.run(tiny_suite, tiny_configs)
        leftovers = [
            path
            for path in (tmp_path / "clean").rglob("*.tmp*")
            if path.is_file()
        ]
        assert leftovers == []

    def test_telemetry_does_not_perturb_results(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """Matrices from an instrumented run equal a plain run's —
        telemetry records around the computation, never inside it."""
        plain = CampaignRunner(
            backend, tmp_path / "plain", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        with scoped_registry(), scoped_tracer():
            traced = CampaignRunner(
                backend, tmp_path / "traced", chunk_size=16
            ).run(tiny_suite, tiny_configs)
        for metric in Metric.all():
            assert np.array_equal(
                traced.matrix(metric), plain.matrix(metric)
            )
