"""Tests for the related-work baseline predictors."""

import numpy as np
import pytest

from repro.core import LinearBaselinePredictor, SplineBaselinePredictor
from repro.ml import correlation, rmae
from repro.sim import Metric


@pytest.fixture(scope="module")
def training(small_dataset):
    idx, rest = small_dataset.split_indices(300, seed=66)
    return (
        small_dataset.subset_configs(idx),
        small_dataset.subset_values("applu", Metric.CYCLES, idx),
        small_dataset.subset_configs(rest),
        small_dataset.subset_values("applu", Metric.CYCLES, rest),
    )


class TestBaselines:
    def test_linear_baseline_learns_the_trend(self, space, training):
        configs, values, test_configs, actual = training
        model = LinearBaselinePredictor(space, Metric.CYCLES, "applu")
        model.fit(configs, values)
        assert correlation(model.predict(test_configs), actual) > 0.5

    def test_spline_beats_plain_linear(self, space, training):
        configs, values, test_configs, actual = training
        linear = LinearBaselinePredictor(space, Metric.CYCLES, "applu")
        linear.fit(configs, values)
        spline = SplineBaselinePredictor(space, Metric.CYCLES, "applu")
        spline.fit(configs, values)
        assert rmae(spline.predict(test_configs), actual) < rmae(
            linear.predict(test_configs), actual
        )

    def test_predictions_positive(self, space, training):
        configs, values, test_configs, _ = training
        for cls in (LinearBaselinePredictor, SplineBaselinePredictor):
            model = cls(space, Metric.CYCLES, "applu").fit(configs, values)
            assert np.all(model.predict(test_configs) > 0)

    def test_predict_one(self, space, training):
        configs, values, *_ = training
        model = SplineBaselinePredictor(space, Metric.CYCLES, "applu")
        model.fit(configs, values)
        assert model.predict_one(space.baseline) > 0

    def test_untrained_rejected(self, space):
        model = LinearBaselinePredictor(space, Metric.CYCLES, "x")
        with pytest.raises(RuntimeError):
            model.predict([space.baseline])

    def test_non_positive_values_rejected(self, space):
        model = LinearBaselinePredictor(space, Metric.CYCLES, "x")
        with pytest.raises(ValueError):
            model.fit(
                [space.baseline, space.baseline.replace(width=8)],
                np.array([1.0, 0.0]),
            )
