"""Exact round trips for everything that crosses the wire."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distrib.wire import (
    batch_checksum,
    batch_from_wire,
    batch_to_wire,
    configs_from_wire,
    configs_to_wire,
    policy_from_wire,
    policy_to_wire,
    profile_from_wire,
    profile_to_wire,
)
from repro.runtime import RetryPolicy
from repro.sim.interval import BatchResult


def _through_json(value):
    """Round a value through actual JSON text, like the protocol does."""
    return json.loads(
        json.dumps(value, sort_keys=True, allow_nan=False)
    )


class TestConfigs:
    def test_round_trip(self, tiny_configs):
        wire = _through_json(configs_to_wire(tiny_configs))
        assert configs_from_wire(wire) == list(tiny_configs)

    def test_wire_form_is_integer_lists(self, tiny_configs):
        wire = configs_to_wire(tiny_configs[:2])
        assert all(isinstance(v, int) for row in wire for v in row)


class TestProfiles:
    def test_round_trip(self, tiny_suite):
        for profile in tiny_suite.profiles:
            wire = _through_json(profile_to_wire(profile))
            assert profile_from_wire(wire) == profile

    def test_missing_field_rejected(self, tiny_suite):
        wire = profile_to_wire(tiny_suite.profiles[0])
        del wire["ilp_max"]
        with pytest.raises(ValueError, match="ilp_max"):
            profile_from_wire(wire)

    def test_tampered_profile_fails_validation(self, tiny_suite):
        wire = profile_to_wire(tiny_suite.profiles[0])
        wire["mix"]["load"] = 5.0  # the mix must still sum to 1
        with pytest.raises(ValueError):
            profile_from_wire(wire)


class TestBatches:
    def _batch(self, n=7, seed=3):
        rng = np.random.default_rng(seed)
        # Awkward floats on purpose: exactness must not depend on
        # round decimal values.
        base = rng.random(n) * 1e9 + rng.random(n)
        return BatchResult(
            cycles=base,
            energy=base * 0.3331,
            ed=base * 1.77e-7,
            edd=base * 2.031e-16,
        )

    def test_bit_identical_round_trip(self):
        batch = self._batch()
        wire = _through_json(batch_to_wire(batch))
        back = batch_from_wire(wire)
        for field in ("cycles", "energy", "ed", "edd"):
            original = getattr(batch, field)
            decoded = getattr(back, field)
            # Bitwise equality, not approximate: the distributed
            # guarantee is exact.
            assert original.tobytes() == decoded.tobytes()

    def test_checksum_survives_the_wire(self):
        batch = self._batch(seed=11)
        wire = _through_json(batch_to_wire(batch))
        assert batch_checksum(batch_from_wire(wire)) == batch_checksum(batch)

    def test_checksum_detects_a_changed_value(self):
        batch = self._batch(seed=4)
        wire = batch_to_wire(batch)
        # One ulp: even the smallest representable change must be caught.
        wire["energy"][2] = float(np.nextafter(wire["energy"][2], np.inf))
        assert batch_checksum(batch_from_wire(wire)) != batch_checksum(batch)

    def test_missing_metric_rejected(self):
        wire = batch_to_wire(self._batch())
        del wire["ed"]
        with pytest.raises(ValueError, match="ed"):
            batch_from_wire(wire)

    def test_ragged_arrays_rejected(self):
        wire = batch_to_wire(self._batch())
        wire["edd"] = wire["edd"][:-1]
        with pytest.raises(ValueError, match="length"):
            batch_from_wire(wire)


class TestPolicies:
    def test_round_trip(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.125, multiplier=3.0,
            jitter=0.5, timeout=12.5,
        )
        assert policy_from_wire(_through_json(policy_to_wire(policy))) == policy

    def test_none_timeout_survives(self):
        policy = RetryPolicy(timeout=None)
        assert policy_from_wire(policy_to_wire(policy)).timeout is None

    def test_identical_backoff_stream(self):
        policy = RetryPolicy(base_delay=0.2, jitter=0.25)
        clone = policy_from_wire(policy_to_wire(policy))
        a, b = np.random.default_rng(9), np.random.default_rng(9)
        for attempt in range(1, 5):
            assert policy.delay(attempt, a) == clone.delay(attempt, b)
