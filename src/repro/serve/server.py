"""The stdlib-only asyncio HTTP inference server.

``repro serve`` turns a published predictor into a long-running
service: a minimal HTTP/1.1 server (``asyncio.start_server``; no
framework, no dependencies) that answers prediction requests through
the :class:`~repro.serve.batching.PredictionBatcher`, so concurrent
clients are coalesced into vectorised batch-invariant forward passes
and repeated configurations are served from the LRU cache — with
responses bit-identical to calling the predictor directly.

Endpoints:

* ``POST /predict`` — body ``{"configs": [...]}`` where each entry is
  either a 13-integer list in Table 1 order or a ``{parameter: value}``
  mapping (missing parameters take the baseline value).  A single
  ``{"config": ...}`` object is accepted as shorthand.  Response:
  ``{"metric": ..., "predictions": [...], "model": {...}}``.
* ``POST /search`` — body ``{"agent": ..., "budget": ..., "seed": ...}``
  runs a bounded closed-loop search (:mod:`repro.search`) over the
  served model's metric and returns the best configuration found plus
  the search trace summary.  CPU-bound, so it runs on the executor and
  is capped to a small in-flight count (excess requests get ``503``).
* ``GET /healthz`` — liveness plus the served model's identity.
* ``GET /metrics`` — the process metrics registry in Prometheus text
  exposition format (the same exporter behind ``--metrics-out``).

Overload and shutdown are first-class: a full request queue returns
``503`` with ``Retry-After`` instead of buffering without bound, and
:meth:`PredictionServer.drain` stops accepting, answers everything
already queued, and only then tears the sockets down — the SIGTERM
story a supervisor expects.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import signal
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.designspace.configuration import PARAMETER_ORDER, Configuration
from repro.designspace.space import DesignSpace
from repro.obs import get_logger, get_registry, span
from repro.obs.http import (
    PROMETHEUS_CONTENT_TYPE,
    dump_json as _dump,
    json_error as _json_error,
    read_request as _read_request,
    write_response as _write_response,
)

from .admission import AdmissionController
from .batching import PredictionBatcher, ServerSaturated

__all__ = ["PredictionServer", "serve_forever"]

_log = get_logger("serve.server")

#: Most configurations accepted in one /predict call.
_MAX_CONFIGS = 10_000

#: /search request bounds: budget and batch caps plus the most
#: concurrently running searches (each occupies an executor thread).
_MAX_SEARCH_BUDGET = 4096
_MAX_SEARCH_BATCH = 256
_MAX_SEARCHES_INFLIGHT = 2


class _BadRequest(ValueError):
    """A client error that should become a 400 with this message."""


class PredictionServer:
    """The asyncio HTTP service wrapping a fitted predictor.

    Args:
        predictor: A fitted architecture-centric predictor (its pool
            must stack; serving uses the batch-invariant path).
        host: Bind address.
        port: Bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
        model_info: Identity dict echoed in ``/healthz`` and
            ``/predict`` responses (name, version, checksum...).
        space: Design space for validating request configurations.
        max_batch / batch_window / cache_size / queue_limit: Forwarded
            to the :class:`PredictionBatcher`.
        admission: Optional :class:`AdmissionController` gating
            ``/predict`` and ``/search`` (never ``/healthz`` or
            ``/metrics``); refused requests get ``503`` with a
            ``Retry-After`` hint.
        service_delay: Extra seconds per forward pass (executor-side);
            emulates an expensive model for saturation and scaling
            studies (``--service-delay-ms``).
        sock: A pre-bound listening socket to serve on instead of
            binding ``host:port`` — how the shared-socket fleet
            fallback hands one accept queue to every worker.
        reuse_port: Bind with ``SO_REUSEPORT`` so multiple server
            processes can share ``host:port`` and let the kernel
            balance connections across them.
    """

    def __init__(
        self,
        predictor,
        host: str = "127.0.0.1",
        port: int = 0,
        model_info: Optional[Dict] = None,
        space: Optional[DesignSpace] = None,
        max_batch: int = 64,
        batch_window: float = 0.002,
        cache_size: int = 4096,
        queue_limit: int = 1024,
        admission: Optional[AdmissionController] = None,
        service_delay: float = 0.0,
        sock: Optional[socket.socket] = None,
        reuse_port: bool = False,
    ) -> None:
        self._predictor = predictor
        self.host = host
        self.port = port
        self.model_info = dict(model_info or {})
        self.model_info.setdefault("metric", predictor.metric.value)
        self._space = space if space is not None else DesignSpace()
        self.batcher = PredictionBatcher(
            predictor,
            max_batch=max_batch,
            batch_window=batch_window,
            cache_size=cache_size,
            queue_limit=queue_limit,
            forward_delay=service_delay,
        )
        self.admission = admission
        self._sock = sock
        self._reuse_port = bool(reuse_port)
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._draining = False
        self._started = 0.0
        self._searches_inflight = 0
        self._active_requests = 0
        # Request ids are unique per process and cheap to mint: the
        # pid anchors which fleet worker answered, the counter orders
        # requests within it.
        self._request_seq = itertools.count()
        self._rid_prefix = f"{os.getpid():x}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm the model up, start the batcher, bind the socket."""
        with span("serve.start"):
            # Warmup: the first forward pass pays lazy ensemble
            # stacking and ufunc loop setup; pay it before the first
            # client does.
            await asyncio.get_running_loop().run_in_executor(
                None,
                self._predictor.predict_invariant,
                [self._space.baseline],
            )
            await self.batcher.start()
            if self._sock is not None:
                self._server = await asyncio.start_server(
                    self._handle_connection, sock=self._sock
                )
            elif self._reuse_port:
                self._server = await asyncio.start_server(
                    self._handle_connection, self.host, self.port,
                    reuse_port=True,
                )
            else:
                self._server = await asyncio.start_server(
                    self._handle_connection, self.host, self.port
                )
            self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.time()
        get_registry().gauge("serve.up").set(1)
        _log.info("serving %s on http://%s:%d",
                  self.model_info.get("metric"), self.host, self.port)

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish queued work, stop.

        Idempotent; callable from a signal handler via
        ``asyncio.create_task``.
        """
        if self._draining:
            return
        self._draining = True
        with span("serve.drain"):
            if self._server is not None:
                # Stop accepting new connections; established ones get
                # 503s for predictions from here on.
                self._server.close()
            await self.batcher.stop()
            # Searches run on the executor outside the batcher, and a
            # just-resolved prediction still has its response write
            # pending — wait for every in-flight request to finish its
            # whole handler pass before tearing connections down.
            while self._active_requests > 0:
                await asyncio.sleep(0.01)
            # Idle keep-alive connections would otherwise pin
            # wait_closed() forever (Python >= 3.12 waits for handler
            # completion); in-flight responses finished above.
            for writer in list(self._connections):
                writer.close()
            if self._server is not None:
                await self._server.wait_closed()
        get_registry().gauge("serve.up").set(0)
        _log.info("drained and stopped")

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun."""
        return self._draining

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = get_registry()
        self._connections.add(writer)
        peer = writer.get_extra_info("peername")
        peer_ip = peer[0] if isinstance(peer, tuple) and peer else "unknown"
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                request_id = self._next_request_id()
                client_id = headers.get("x-client-id") or peer_ip
                registry.gauge("serve.inflight").inc()
                self._active_requests += 1
                start = time.perf_counter()
                try:
                    try:
                        status, payload, content_type, extra = (
                            await self._dispatch(
                                method, target, body,
                                client_id=client_id,
                                request_id=request_id,
                            )
                        )
                    finally:
                        registry.gauge("serve.inflight").inc(-1)
                    extra = dict(extra)
                    extra.setdefault("X-Request-Id", request_id)
                    registry.histogram("serve.request.seconds").observe(
                        time.perf_counter() - start
                    )
                    registry.counter(
                        "serve.requests", status=str(status)
                    ).inc()
                    keep_alive = (
                        headers.get("connection", "keep-alive") != "close"
                        and not self._draining
                    )
                    _write_response(
                        writer, status, payload, content_type,
                        keep_alive=keep_alive, extra=extra,
                    )
                    await writer.drain()
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _next_request_id(self) -> str:
        return f"{self._rid_prefix}-{next(self._request_seq):06x}"

    async def _dispatch(
        self,
        method: str,
        target: str,
        body: bytes,
        client_id: str = "unknown",
        request_id: str = "-",
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        """Route one request; returns (status, body, content-type, headers)."""
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return _json_error(405, "use GET", request_id=request_id)
            return self._handle_healthz()
        if path == "/metrics":
            if method != "GET":
                return _json_error(405, "use GET", request_id=request_id)
            text = get_registry().to_prometheus()
            return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE, {}
        if path == "/predict":
            if method != "POST":
                return _json_error(405, "use POST", request_id=request_id)
            return await self._admitted(
                self._handle_predict, body, client_id, request_id
            )
        if path == "/search":
            if method != "POST":
                return _json_error(405, "use POST", request_id=request_id)
            return await self._admitted(
                self._handle_search, body, client_id, request_id
            )
        return _json_error(
            404, f"unknown path {path!r}", request_id=request_id
        )

    async def _admitted(
        self, handler, body: bytes, client_id: str, request_id: str
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        """Run a work-bearing handler through admission control."""
        if self.admission is None:
            return await handler(body, request_id)
        decision = self.admission.try_admit(client_id)
        if not decision.admitted:
            get_registry().counter(
                "serve.rejected", reason=decision.reason
            ).inc()
            _log.warning(
                "request %s from %s shed: %s (retry in %.2fs)",
                request_id, client_id, decision.reason,
                decision.retry_after,
            )
            return _json_error(
                503,
                f"admission refused: {decision.reason}",
                {"Retry-After": f"{max(decision.retry_after, 0.01):.2f}"},
                request_id=request_id,
            )
        try:
            return await handler(body, request_id)
        finally:
            self.admission.release()

    def _handle_healthz(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        status = "draining" if self._draining else "ok"
        payload = {
            "status": status,
            "model": self.model_info,
            "pid": os.getpid(),
            "uptime_seconds": (
                time.time() - self._started if self._started else 0.0
            ),
            "cache_entries": len(self.batcher.cache),
        }
        code = 503 if self._draining else 200
        return code, _dump(payload), "application/json", {}

    async def _handle_predict(
        self, body: bytes, request_id: str = "-"
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        if self._draining:
            get_registry().counter("serve.rejected", reason="draining").inc()
            _log.warning("request %s shed: draining", request_id)
            return _json_error(
                503, "the server is draining", {"Retry-After": "1"},
                request_id=request_id,
            )
        try:
            configs = self._parse_configs(body)
        except _BadRequest as error:
            return _json_error(400, str(error), request_id=request_id)
        try:
            values = await asyncio.gather(
                *(self.batcher.predict_one(config) for config in configs)
            )
        except ServerSaturated as error:
            _log.warning("request %s shed: %s", request_id, error)
            return _json_error(
                503, str(error), {"Retry-After": "1"},
                request_id=request_id,
            )
        except RuntimeError as error:
            _log.error("request %s: prediction failed: %s",
                       request_id, error)
            return _json_error(
                500, f"prediction failed: {error}", request_id=request_id
            )
        payload = {
            "metric": self._predictor.metric.value,
            "predictions": [float(v) for v in values],
            "model": self.model_info,
        }
        return 200, _dump(payload), "application/json", {}

    async def _handle_search(
        self, body: bytes, request_id: str = "-"
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        from repro.search import (
            DesignSpaceEnv,
            PredictorOracle,
            make_agent,
            run_search,
        )

        registry = get_registry()
        if self._draining:
            registry.counter("serve.rejected", reason="draining").inc()
            _log.warning("request %s shed: draining", request_id)
            return _json_error(
                503, "the server is draining", {"Retry-After": "1"},
                request_id=request_id,
            )
        try:
            agent_name, budget, batch, seed = self._parse_search(body)
        except _BadRequest as error:
            return _json_error(400, str(error), request_id=request_id)
        if self._searches_inflight >= _MAX_SEARCHES_INFLIGHT:
            registry.counter("serve.rejected", reason="search_busy").inc()
            _log.warning("request %s shed: search_busy", request_id)
            return _json_error(
                503,
                f"at most {_MAX_SEARCHES_INFLIGHT} concurrent searches",
                {"Retry-After": "1"},
                request_id=request_id,
            )

        metric = self._predictor.metric

        def _run_bounded_search():
            env = DesignSpaceEnv(
                self._space,
                PredictorOracle({metric: self._predictor}),
                objectives=(metric,),
                budget=budget,
            )
            agent = make_agent(agent_name, self._space, objectives=1,
                               seed=seed)
            return run_search(env, agent, batch_size=batch, seed=seed)

        self._searches_inflight += 1
        registry.gauge("serve.search.inflight").inc()
        start = time.perf_counter()
        try:
            with span("serve.search", agent=agent_name, budget=budget):
                outcome = await asyncio.get_running_loop().run_in_executor(
                    None, _run_bounded_search
                )
        except (RuntimeError, ValueError) as error:
            _log.error("request %s: search failed: %s", request_id, error)
            return _json_error(
                500, f"search failed: {error}", request_id=request_id
            )
        finally:
            self._searches_inflight -= 1
            registry.gauge("serve.search.inflight").inc(-1)
            registry.histogram("serve.search.seconds").observe(
                time.perf_counter() - start
            )
        registry.counter("serve.search.requests", agent=agent_name).inc()
        payload = outcome.to_payload()
        payload["metric"] = metric.value
        payload["model"] = self.model_info
        return 200, _dump(payload), "application/json", {}

    def _parse_search(self, body: bytes) -> Tuple[str, int, int, int]:
        from repro.search import AGENT_NAMES

        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"request body is not JSON: {error}") from error
        if not isinstance(request, dict):
            raise _BadRequest("request body must be a JSON object")
        unknown = set(request) - {"agent", "budget", "batch", "seed",
                                  "objective"}
        if unknown:
            raise _BadRequest(f"unknown search options: {sorted(unknown)}")
        agent = request.get("agent", "hill")
        if agent not in AGENT_NAMES:
            raise _BadRequest(
                f"unknown agent {agent!r}; known: {', '.join(AGENT_NAMES)}"
            )
        objective = request.get("objective", self._predictor.metric.value)
        if objective != self._predictor.metric.value:
            raise _BadRequest(
                f"this server predicts {self._predictor.metric.value!r}, "
                f"not {objective!r}"
            )

        def _bounded_int(key: str, default: int, lo: int, hi: int) -> int:
            value = request.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool):
                raise _BadRequest(f'"{key}" must be an integer')
            if not lo <= value <= hi:
                raise _BadRequest(f'"{key}" must be in [{lo}, {hi}]')
            return value

        budget = _bounded_int("budget", 128, 2, _MAX_SEARCH_BUDGET)
        batch = _bounded_int("batch", 16, 1, _MAX_SEARCH_BATCH)
        seed = _bounded_int("seed", 0, 0, 2**31 - 1)
        return agent, budget, batch, seed

    def _parse_configs(self, body: bytes) -> List[Configuration]:
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"request body is not JSON: {error}") from error
        if not isinstance(request, dict):
            raise _BadRequest("request body must be a JSON object")
        if "configs" in request:
            raw_list = request["configs"]
            if not isinstance(raw_list, list):
                raise _BadRequest('"configs" must be a list')
        elif "config" in request:
            raw_list = [request["config"]]
        else:
            raise _BadRequest('request needs a "configs" or "config" key')
        if not raw_list:
            raise _BadRequest("at least one configuration is required")
        if len(raw_list) > _MAX_CONFIGS:
            raise _BadRequest(
                f"at most {_MAX_CONFIGS} configurations per request"
            )
        return [self._parse_config(raw) for raw in raw_list]

    def _parse_config(self, raw) -> Configuration:
        if isinstance(raw, dict):
            unknown = set(raw) - set(PARAMETER_ORDER)
            if unknown:
                raise _BadRequest(
                    f"unknown parameters: {sorted(unknown)}"
                )
            try:
                overrides = {name: int(value) for name, value in raw.items()}
                config = self._space.baseline.replace(**overrides)
            except (TypeError, ValueError) as error:
                raise _BadRequest(
                    f"bad configuration values: {error}"
                ) from error
        elif isinstance(raw, list):
            if len(raw) != len(PARAMETER_ORDER):
                raise _BadRequest(
                    f"a configuration list needs "
                    f"{len(PARAMETER_ORDER)} values, got {len(raw)}"
                )
            try:
                config = Configuration.from_values(
                    tuple(int(v) for v in raw)
                )
            except (TypeError, ValueError) as error:
                raise _BadRequest(
                    f"bad configuration values: {error}"
                ) from error
        else:
            raise _BadRequest(
                "each configuration must be a parameter mapping or a "
                f"{len(PARAMETER_ORDER)}-integer list"
            )
        try:
            self._space.validate(config)
        except ValueError as error:
            raise _BadRequest(f"illegal configuration: {error}") from error
        return config


# ----------------------------------------------------------------------
# The blocking entry point the CLI uses
# ----------------------------------------------------------------------
def serve_forever(
    predictor,
    host: str = "127.0.0.1",
    port: int = 8100,
    model_info: Optional[Dict] = None,
    max_batch: int = 64,
    batch_window: float = 0.002,
    cache_size: int = 4096,
    queue_limit: int = 1024,
    max_inflight: int = 0,
    client_rate: float = 0.0,
    client_burst: int = 0,
    service_delay: float = 0.0,
    ready_callback=None,
) -> None:
    """Run a prediction server until SIGTERM/SIGINT, then drain.

    Args:
        predictor: A fitted architecture-centric predictor.
        max_inflight / client_rate / client_burst: Admission-control
            limits (an :class:`AdmissionController` is installed when
            any is set; see :mod:`repro.serve.admission`).
        service_delay: Extra seconds per forward pass for scaling
            studies.
        ready_callback: Called with the started
            :class:`PredictionServer` once the socket is bound (tests
            and the CLI use it to report the actual port).

    The signal handlers trigger a graceful drain — queued requests are
    answered before the loop exits — and the function then *returns*,
    so the caller's ``finally`` blocks (telemetry export, manifest
    writing) always run.
    """
    admission = None
    if max_inflight > 0 or client_rate > 0:
        admission = AdmissionController(
            max_inflight=max_inflight,
            client_rate=client_rate,
            client_burst=client_burst,
        )
    server = PredictionServer(
        predictor,
        host=host,
        port=port,
        model_info=model_info,
        max_batch=max_batch,
        batch_window=batch_window,
        cache_size=cache_size,
        queue_limit=queue_limit,
        admission=admission,
        service_delay=service_delay,
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loops; Ctrl-C still raises
        await server.start()
        if ready_callback is not None:
            ready_callback(server)
        try:
            await stop.wait()
        finally:
            await server.drain()

    asyncio.run(_run())
