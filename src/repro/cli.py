"""Command-line interface: ``python -m repro <command>``.

Lets a user poke the reproduction without writing code:

* ``table1`` / ``table2`` — print the design-space tables.
* ``simulate --program applu [--width 8 ...]`` — simulate one machine.
* ``predict --program applu`` — run the full architecture-centric
  workflow (offline pool, 32 responses, held-out accuracy report).
* ``analyze --metric cycles`` — space statistics, outliers and the most
  influential parameters.
* ``plan --budget 2000 --new-programs 5`` — how to split a simulation
  budget between offline training and per-program responses.
* ``search --objectives cycles,energy --agent genetic --budget 256`` —
  closed-loop design-space search: drive a seeded agent against the
  fitted predictors and report the Pareto frontier (``--frontier-out``
  writes it as JSON; ``--compare-random`` scores the agent against the
  random baseline at equal budget).
* ``publish --registry DIR --program applu`` — train, fit and freeze a
  predictor into the model registry as an immutable version.
* ``serve --registry DIR --model applu-cycles`` — run the batched
  asyncio inference server over a published model until SIGTERM;
  ``--workers N`` preforks a fleet behind one port, and
  ``--max-inflight``/``--client-rate`` add admission control.
* ``load --plan FILE --target HOST:PORT`` — replay a seeded open-loop
  load plan against a running server and report per-stage latency,
  goodput and shed counts (``--slo`` gates the run on objectives).
* ``coordinator --checkpoint-dir DIR`` / ``worker --connect HOST:PORT``
  — shard a campaign across hosts: the coordinator owns the journal and
  hands out leased chunks, workers simulate them.  ``simulate`` and
  ``explore`` accept ``--distributed HOST:PORT`` to serve their own
  campaign the same way.
* ``status HOST:PORT`` — read-only snapshot of a running coordinator:
  progress, fleet roster, lease table, steal/reclaim counters.
* ``chaos --plan FILE --checkpoint-dir DIR`` — replay a seeded fault
  plan (kills, partitions, slowdowns, restarts) against an in-process
  fleet and verify the journal stays bit-identical to a serial run.

Every command accepts ``--samples`` and ``--seed`` to control scale and
reproducibility.  The compute-heavy commands (``simulate``,
``predict``, ``explore``, ``publish``, ``serve``) also take the
telemetry trio: ``--log-level`` (or ``REPRO_LOG``) turns on structured
logging, ``--metrics-out FILE`` exports the run's counters and latency
histograms (Prometheus text for ``.prom``/``.txt``, JSON otherwise),
and ``--trace-out FILE`` writes a ``chrome://tracing``-loadable span
trace.  Telemetry is flushed on *every* exit path — clean return,
Ctrl-C (exit 130) and SIGTERM (exit 143) included — so a supervisor
stopping a server or campaign still gets its metrics and manifest.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis import (
    distance_matrix,
    outlier_scores,
    suite_main_effects,
    suite_statistics,
)
from repro.core import ArchitectureCentricPredictor, TrainingPool
from repro.designspace import DesignSpace, render_table1, render_table2
from repro.exploration import DesignSpaceDataset, format_table
from repro.ml import correlation, rmae
from repro.obs import (
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
    git_sha,
)
from repro.search import AGENT_NAMES, RESPONSE_STRATEGIES
from repro.sim import FixedParameters, Metric
from repro.sim.machine import width_scaling_rows
from repro.workloads import mibench_suite, spec2000_suite

_log = get_logger(__name__)


def _version_string() -> str:
    sha = git_sha()
    return f"repro {__version__} (git {sha or 'unknown'})"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Architecture-centric design space exploration "
        "(Dubach, Jones, O'Boyle — MICRO 2007).",
    )
    parser.add_argument(
        "--version", action="version", version=_version_string()
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (the design space)")
    sub.add_parser("table2", help="print Table 2 (fixed parameters)")

    simulate = sub.add_parser("simulate", help="simulate one machine")
    _common(simulate)
    _checkpoint_options(simulate)
    _jobs_option(simulate)
    _telemetry_options(simulate)
    simulate.add_argument("--program", default="gzip")
    for name in DesignSpace().parameters:
        simulate.add_argument(
            f"--{name.name.replace('_', '-')}", type=int, default=None,
            dest=name.name,
        )

    predict = sub.add_parser(
        "predict", help="predict a new program from 32 responses"
    )
    _common(predict)
    predict.add_argument("--program", default="applu")
    predict.add_argument("--metric", default="cycles")
    predict.add_argument("--responses", type=int, default=32)
    predict.add_argument("--training-size", type=int, default=512)
    _jobs_option(predict)
    _telemetry_options(predict)

    analyze = sub.add_parser("analyze", help="characterise the space")
    _common(analyze)
    analyze.add_argument("--metric", default="cycles")
    analyze.add_argument(
        "--suite", default="spec2000", choices=("spec2000", "mibench")
    )
    analyze.add_argument(
        "--full", action="store_true",
        help="print the complete characterisation report",
    )

    plan = sub.add_parser(
        "plan", help="split a simulation budget between offline/online"
    )
    plan.add_argument("--budget", type=int, required=True)
    plan.add_argument("--new-programs", type=int, default=1)
    plan.add_argument("--top", type=int, default=5)

    explore = sub.add_parser(
        "explore",
        help="full workflow: characterise a program and scan for sweet "
        "spots",
    )
    _common(explore)
    explore.add_argument("--program", default="applu")
    explore.add_argument("--metric", default="ed")
    explore.add_argument("--responses", type=int, default=32)
    explore.add_argument("--training-size", type=int, default=512)
    explore.add_argument("--candidates", type=int, default=5000)
    _checkpoint_options(explore)
    _jobs_option(explore)
    _telemetry_options(explore)

    search = sub.add_parser(
        "search",
        help="closed-loop design-space search: drive an agent against "
        "fitted predictors toward the Pareto frontier",
    )
    _common(search)
    search.add_argument("--program", default="applu")
    search.add_argument(
        "--objectives", default="cycles,energy",
        help="comma-separated metrics to minimise (cycles, energy, ed, "
        "edd); two or more trace a Pareto frontier",
    )
    search.add_argument(
        "--agent", default="genetic", choices=AGENT_NAMES,
        help="search policy (default: genetic)",
    )
    search.add_argument("--budget", type=int, default=256,
                        help="total predictor evaluations allowed")
    search.add_argument("--batch", type=int, default=16,
                        help="proposals evaluated per round")
    search.add_argument("--responses", type=int, default=32)
    search.add_argument("--training-size", type=int, default=512)
    search.add_argument(
        "--response-strategy", default="disagreement",
        choices=RESPONSE_STRATEGIES,
        help="how the R response configurations are chosen when fitting "
        "the predictors (default: ensemble disagreement)",
    )
    search.add_argument(
        "--frontier-out", default=None, metavar="FILE",
        help="write the frontier/outcome JSON here",
    )
    search.add_argument(
        "--compare-random", action="store_true",
        help="also run the random agent at equal budget and score both "
        "against a shared hypervolume reference",
    )
    _jobs_option(search)
    _telemetry_options(search)

    publish = sub.add_parser(
        "publish",
        help="train a predictor and freeze it into the model registry",
    )
    _common(publish)
    publish.add_argument("--registry", required=True, metavar="DIR",
                         help="model registry root directory")
    publish.add_argument("--program", default="applu")
    publish.add_argument("--metric", default="cycles")
    publish.add_argument("--responses", type=int, default=32)
    publish.add_argument("--training-size", type=int, default=512)
    publish.add_argument(
        "--name", default=None,
        help="registry model name (default: <program>-<metric>)",
    )
    publish.add_argument("--notes", default="",
                         help="free-form annotation stored in the record")
    _jobs_option(publish)
    _telemetry_options(publish)

    serve = sub.add_parser(
        "serve",
        help="run the batched HTTP inference server over a published "
        "model (SIGTERM drains gracefully)",
    )
    serve.add_argument("--registry", default=None, metavar="DIR",
                       help="model registry root directory")
    serve.add_argument("--model", default=None,
                       help="registry model name to serve")
    serve.add_argument(
        "--model-version", type=int, default=None,
        help="registry version to serve (default: latest)",
    )
    serve.add_argument(
        "--artifact", default=None, metavar="FILE",
        help="serve a raw predictor artifact instead of a registry entry",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="most configurations per forward pass")
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="milliseconds to wait for more requests before a partial "
        "batch dispatches",
    )
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="LRU prediction-cache entries (0 disables)")
    serve.add_argument(
        "--queue-limit", type=int, default=1024,
        help="parked requests beyond which /predict returns 503",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="serving processes behind the port (>1 preforks a fleet "
        "sharing the socket via SO_REUSEPORT, with coordinated drain "
        "and merged metrics)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=0,
        help="per-worker cap on concurrently admitted requests; past "
        "it /predict and /search shed with 503 + Retry-After "
        "(0 disables)",
    )
    serve.add_argument(
        "--client-rate", type=float, default=0.0,
        help="per-client token-bucket quota in requests/second, keyed "
        "by X-Client-Id or peer address (0 disables)",
    )
    serve.add_argument(
        "--client-burst", type=int, default=0,
        help="token-bucket burst capacity (default: ceil(client rate))",
    )
    serve.add_argument(
        "--service-delay-ms", type=float, default=0.0,
        help="extra milliseconds per forward pass — emulates an "
        "expensive model so saturation benchmarks behave on a shared "
        "machine (the serving twin of 'repro worker --sim-delay')",
    )
    serve.add_argument(
        "--manifest-out", default=None, metavar="FILE",
        help="write a run manifest here on shutdown (any exit path)",
    )
    _telemetry_options(serve)

    load = sub.add_parser(
        "load",
        help="replay a seeded open-loop load plan against a running "
        "prediction server or fleet",
    )
    load.add_argument(
        "--plan", required=True, metavar="FILE",
        help="load plan JSON (see docs/serving.md for the syntax)",
    )
    load.add_argument(
        "--target", required=True, metavar="HOST:PORT",
        type=_host_port_arg, help="server address to drive",
    )
    load.add_argument(
        "--seed", type=int, default=None,
        help="override the plan's seed (same plan + seed replays the "
        "same arrivals, mixes and payloads)",
    )
    load.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request socket timeout in seconds",
    )
    load.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write the full per-stage report JSON here",
    )
    load.add_argument(
        "--slo", default=None, metavar="FILE", dest="slo_config",
        help="SLO objectives JSON checked against the run's own "
        "metrics after the plan finishes; violations fail the command",
    )
    load.add_argument(
        "--fail-on-drops", action="store_true",
        help="exit non-zero when any request was shed or errored",
    )
    _telemetry_options(load)

    coordinator = sub.add_parser(
        "coordinator",
        help="serve a simulation campaign to remote 'repro worker' "
        "processes (SIGTERM drains gracefully)",
    )
    _common(coordinator)
    _checkpoint_options(coordinator, distributed=False)
    _telemetry_options(coordinator)
    coordinator.add_argument("--host", default="127.0.0.1",
                             help="bind address (0.0.0.0 for remote "
                             "workers)")
    coordinator.add_argument("--port", type=int, default=7600,
                             help="bind port (0 picks a free one)")
    coordinator.add_argument(
        "--program", default=None,
        help="campaign over one program instead of a whole suite",
    )
    coordinator.add_argument(
        "--suite", default="spec2000", choices=("spec2000", "mibench"),
        help="suite to simulate when --program is not given",
    )
    coordinator.add_argument(
        "--lease-timeout", type=float, default=60.0,
        help="seconds a worker may hold a chunk without heartbeating "
        "before it is reclaimed",
    )
    coordinator.add_argument(
        "--min-workers", type=int, default=0,
        help="hold task hand-out until this many workers connected",
    )
    coordinator.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="also serve read-only /metrics, /healthz and /status over "
        "HTTP on this port (0 picks a free one)",
    )
    coordinator.add_argument(
        "--slo", default=None, metavar="FILE", dest="slo_config",
        help="SLO objectives JSON, evaluated live against the "
        "campaign's time series (see docs/observability.md)",
    )
    coordinator.add_argument(
        "--sample-interval", type=float, default=1.0,
        help="seconds between time-series samples feeding the status "
        "series and SLO burn rates",
    )

    top = sub.add_parser(
        "top",
        help="live fleet dashboard over a running coordinator "
        "(read-only; never counts as a worker)",
    )
    top.add_argument(
        "address", metavar="HOST:PORT", type=_host_port_arg,
        help="coordinator address (the worker port, not --http-port)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one plain-text frame and exit (CI/scripting mode)",
    )
    top.add_argument(
        "--frames", type=int, default=None,
        help="exit after this many live refreshes (default: until the "
        "coordinator goes away or Ctrl-C)",
    )
    top.add_argument(
        "--timeout", type=float, default=5.0,
        help="seconds to wait for each snapshot",
    )

    slo = sub.add_parser(
        "slo",
        help="evaluate declarative SLOs; 'slo check' exits non-zero on "
        "any violated objective",
    )
    slo.add_argument("action", choices=("check",),
                     help="what to do with the objectives")
    slo.add_argument(
        "--objectives", required=True, metavar="FILE",
        help="SLO objectives JSON",
    )
    slo.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="evaluate against a Prometheus text export "
        "(e.g. a --metrics-out artifact)",
    )
    slo.add_argument(
        "--status", default=None, metavar="HOST:PORT", dest="status_addr",
        type=_host_port_arg,
        help="evaluate a live coordinator's already-computed SLO state",
    )
    slo.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full status list as JSON",
    )
    slo.add_argument(
        "--timeout", type=float, default=10.0,
        help="seconds to wait for a live snapshot (--status)",
    )

    worker = sub.add_parser(
        "worker",
        help="execute leased campaign chunks for a coordinator "
        "(SIGTERM finishes the current chunk, then exits)",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        type=_host_port_arg, help="coordinator address",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after completing this many chunks (default: run "
        "until the coordinator drains us)",
    )
    worker.add_argument(
        "--sim-repeat", type=int, default=1,
        help="simulate each chunk N times, keeping the last result — "
        "deterministic, bit-identical, and N times slower; emulates an "
        "expensive simulator for scaling studies",
    )
    worker.add_argument(
        "--sim-delay", type=float, default=0.0,
        help="add this many seconds of latency to each chunk — "
        "emulates an expensive off-host simulator so scaling "
        "benchmarks can overlap workers on a shared test machine",
    )
    worker.add_argument(
        "--connect-timeout", type=float, default=10.0,
        help="seconds to keep retrying the initial connection",
    )
    worker.add_argument(
        "--reconnect-attempts", type=int, default=0,
        help="times to re-dial a lost coordinator (full-jitter "
        "exponential backoff; 0 exits on the first loss)",
    )
    worker.add_argument(
        "--reconnect-delay", type=float, default=0.5,
        help="base delay in seconds between reconnect attempts",
    )
    _telemetry_options(worker)

    status = sub.add_parser(
        "status",
        help="print a running coordinator's progress and fleet roster "
        "(read-only; never counts as a worker)",
    )
    status.add_argument(
        "address", metavar="HOST:PORT", type=_host_port_arg,
        help="coordinator address",
    )
    status.add_argument(
        "--json", action="store_true", dest="as_json",
        help="dump the raw status JSON instead of a summary",
    )
    status.add_argument(
        "--timeout", type=float, default=10.0,
        help="seconds to wait for the snapshot",
    )

    chaos = sub.add_parser(
        "chaos",
        help="replay a seeded fault plan against an in-process fleet "
        "and verify the journal stays bit-identical to serial",
    )
    _common(chaos)
    _telemetry_options(chaos)
    chaos.add_argument(
        "--plan", required=True, metavar="FILE",
        help="chaos plan JSON (see docs/chaos.md for the syntax)",
    )
    chaos.add_argument(
        "--checkpoint-dir", required=True,
        help="parent directory for the serial/ and chaos/ checkpoints",
    )
    chaos.add_argument(
        "--program", default=None,
        help="campaign over one program instead of a whole suite",
    )
    chaos.add_argument(
        "--suite", default="spec2000", choices=("spec2000", "mibench"),
        help="suite to simulate when --program is not given",
    )
    chaos.add_argument(
        "--workers", type=int, default=3,
        help="initial fleet size before the plan starts meddling",
    )
    chaos.add_argument(
        "--chunk-size", type=int, default=128,
        help="configurations per checkpointed chunk (default 128)",
    )
    chaos.add_argument(
        "--sim-delay", type=float, default=0.05,
        help="seconds of latency per chunk, so the campaign overlaps "
        "the plan's event timeline instead of finishing before it",
    )
    chaos.add_argument(
        "--lease-timeout", type=float, default=2.0,
        help="coordinator lease timeout during the chaos run",
    )
    chaos.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write the machine-readable run report JSON here",
    )
    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)


def _checkpoint_options(
    parser: argparse.ArgumentParser, distributed: bool = True
) -> None:
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="journal simulation chunks here so an interrupted run can "
        "be resumed",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue the campaign already checkpointed in "
        "--checkpoint-dir",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=128,
        help="configurations per checkpointed chunk (default 128)",
    )
    if distributed:
        parser.add_argument(
            "--distributed", default=None, metavar="HOST:PORT",
            type=_host_port_arg,
            help="serve this campaign's simulations to remote "
            "'repro worker' processes instead of running them locally "
            "(requires --checkpoint-dir; results are bit-identical)",
        )


def _host_port_arg(text: str):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host, int(port)


def _jobs_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value != -1 and value < 1:
        raise argparse.ArgumentTypeError(
            "must be a positive integer or -1 (all CPUs)"
        )
    return value


def _jobs_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=None,
        help="worker processes for model training and campaign "
        "simulation (default serial; -1 uses every CPU); results are "
        "identical for any worker count",
    )


def _telemetry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="structured-log level on stderr (default: the REPRO_LOG "
        "environment variable, then warning)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the run's metrics here on exit (.prom/.txt gets "
        "Prometheus text, anything else JSON)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a chrome://tracing-compatible span trace here on "
        "exit",
    )


def _configure_telemetry(args: argparse.Namespace) -> None:
    """Install logging when the command carries the telemetry options."""
    if hasattr(args, "log_level"):
        configure_logging(level=args.log_level)


def _export_telemetry(args: argparse.Namespace) -> None:
    """Flush --metrics-out / --trace-out after the command ran."""
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        path = get_registry().write(metrics_out)
        print(f"metrics   : {path}", file=sys.stderr)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        path = get_tracer().write_chrome(trace_out)
        print(f"trace     : {path}", file=sys.stderr)


def _suite(name: str):
    return spec2000_suite() if name == "spec2000" else mibench_suite()


def _run_campaign(args: argparse.Namespace, profiles, simulator):
    """Run a checkpointed campaign; returns the result or None on error.

    Prints the journal accounting so the user can see how much work a
    resume actually skipped.
    """
    from repro.designspace import sample_configurations
    from repro.runtime import CampaignRunner, IntervalBackend

    configs = sample_configurations(
        simulator.space, args.samples, seed=args.seed
    )
    runner = CampaignRunner(
        IntervalBackend(simulator),
        args.checkpoint_dir,
        chunk_size=args.chunk_size,
        seed=args.seed,
        n_jobs=getattr(args, "jobs", None),
    )
    try:
        if getattr(args, "distributed", None):
            result = _coordinate(args, runner, profiles, configs)
        else:
            result = runner.run(profiles, configs, resume=args.resume)
    except ValueError as error:
        hint = "" if args.resume else " (pass --resume to continue it)"
        print(f"checkpoint error: {error}{hint}", file=sys.stderr)
        return None
    print(f"campaign  : {result.simulated_cells} chunk(s) simulated, "
          f"{result.resumed_cells} resumed from "
          f"{args.checkpoint_dir}")
    if not result.complete:
        unfinished = len(result.failed_cells) + len(result.pending_cells)
        print(f"campaign left {unfinished} chunk(s) unfinished; "
              "rerun with --resume to continue", file=sys.stderr)
        return None
    return result


def _coordinate(args: argparse.Namespace, runner, profiles, configs):
    """Serve a campaign to remote workers instead of simulating locally."""
    from repro.distrib import CampaignCoordinator

    host, port = (
        args.distributed
        if getattr(args, "distributed", None)
        else (args.host, args.port)
    )
    slo = None
    slo_config = getattr(args, "slo_config", None)
    if slo_config:
        from repro.obs import SLOTracker

        slo = SLOTracker.from_config(slo_config)
    coordinator = CampaignCoordinator(
        runner,
        host=host,
        port=port,
        lease_timeout=getattr(args, "lease_timeout", 60.0),
        min_workers=getattr(args, "min_workers", 0),
        http_port=getattr(args, "http_port", None),
        slo=slo,
        sample_interval=getattr(args, "sample_interval", 1.0),
    )

    def _ready(c) -> None:
        print(f"coordinating on {c.host}:{c.port}; start workers with: "
              f"repro worker --connect {c.host}:{c.port}", file=sys.stderr)
        if c.http_port is not None:
            print(f"observability on http://{c.host}:{c.http_port} "
                  "(/metrics /healthz /status); watch live with: "
                  f"repro top {c.host}:{c.port}", file=sys.stderr)

    result = coordinator.run(
        profiles, configs, resume=args.resume, ready_callback=_ready
    )
    stats = coordinator.stats
    throughput = (
        f"{stats.tasks_completed / stats.elapsed:.2f} tasks/s"
        if stats.elapsed
        else "n/a"
    )
    print(f"workers   : {stats.workers_seen} seen, "
          f"{stats.tasks_completed} task(s) completed ({throughput}), "
          f"{stats.reclaims} lease(s) reclaimed, "
          f"{stats.stale_results} stale result(s) dropped")
    return result


def _cmd_table1() -> int:
    print(render_table1(DesignSpace()))
    return 0


def _cmd_table2() -> int:
    print(render_table2(FixedParameters().as_rows(), width_scaling_rows()))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    suite = spec2000_suite()
    if args.program not in suite:
        suite = mibench_suite()
    if args.program not in suite:
        print(f"unknown program {args.program!r}", file=sys.stderr)
        return 2
    if args.distributed and not args.checkpoint_dir:
        print("--distributed needs --checkpoint-dir (the coordinator "
              "journals results there)", file=sys.stderr)
        return 2
    if args.checkpoint_dir:
        return _cmd_simulate_campaign(args, suite)
    space = DesignSpace()
    overrides = {
        p.name: getattr(args, p.name)
        for p in space.parameters
        if getattr(args, p.name) is not None
    }
    config = space.baseline.replace(**overrides)
    try:
        space.validate(config)
    except ValueError as error:
        print(f"illegal configuration: {error}", file=sys.stderr)
        return 2
    from repro.sim import IntervalSimulator

    result = IntervalSimulator(space).simulate(suite[args.program], config)
    print(f"program : {args.program}")
    print(f"machine : {config}")
    print(f"cycles  : {result.cycles:.4e}")
    print(f"energy  : {result.energy:.4e} nJ")
    print(f"ED      : {result.ed:.4e}")
    print(f"EDD     : {result.edd:.4e}")
    print(f"IPC     : {1.0 / result.breakdown['cpi']:.2f} "
          f"(window {result.breakdown['window']:.0f})")
    return 0


def _cmd_simulate_campaign(args: argparse.Namespace, suite) -> int:
    """Checkpointed batch simulation of one program over --samples configs."""
    import numpy as np

    from repro.sim import IntervalSimulator

    result = _run_campaign(
        args, [suite[args.program]], IntervalSimulator()
    )
    if result is None:
        return 2
    print(f"program   : {args.program} over {args.samples} configurations")
    for metric in Metric.all():
        values = result.values(args.program, metric)
        print(f"{metric.value:<10}: median {np.median(values):.4e}  "
              f"min {values.min():.4e}  max {values.max():.4e}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    metric = Metric.from_name(args.metric)
    fitted = _fit_new_program_predictor(args, metric)
    if fitted is None:
        return 2
    predictor, dataset = fitted
    _, holdout_idx = dataset.split_indices(args.responses, seed=args.seed)
    predictions = predictor.predict(dataset.subset_configs(holdout_idx))
    actual = dataset.subset_values(args.program, metric, holdout_idx)
    print(f"new program    : {args.program} ({metric.value})")
    print(f"responses      : {args.responses} simulations")
    print(f"training error : {predictor.training_error:.1f}%")
    print(f"held-out rmae  : {rmae(predictions, actual):.1f}% "
          f"over {len(holdout_idx)} configurations")
    print(f"correlation    : {correlation(predictions, actual):.3f}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    metric = Metric.from_name(args.metric)
    dataset = DesignSpaceDataset.sampled(
        _suite(args.suite), sample_size=args.samples, seed=args.seed
    )
    if args.full:
        from repro.analysis import suite_report

        print(suite_report(dataset, metric))
        return 0
    stats = suite_statistics(dataset, metric)
    rows = [
        (s.program, f"{s.median:.3e}", f"{s.spread:.1f}x")
        for s in stats.values()
    ]
    print(f"== per-program {metric.value} over {args.samples} sampled "
          f"configurations ==")
    print(format_table(("program", "median", "spread"), rows))

    distances, programs = distance_matrix(dataset, metric)
    scores = outlier_scores(distances, programs)
    ranked = sorted(scores.items(), key=lambda kv: -kv[1])[:5]
    print("\noutliers:", ", ".join(f"{p} ({v:.1f})" for p, v in ranked))

    effects = suite_main_effects(dataset, metric)
    top = sorted(effects.items(), key=lambda kv: -kv[1])[:5]
    print("most influential parameters:",
          ", ".join(f"{name} ({value * 100:.0f}%)" for name, value in top))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.exploration import plan_budget

    plans = plan_budget(
        args.budget, new_programs=args.new_programs, top=args.top
    )
    if not plans:
        print("no admissible split fits that budget", file=sys.stderr)
        return 1
    print(f"== best splits for {args.budget} simulations serving "
          f"{args.new_programs} new program(s) ==")
    rows = [
        (plan.pool_size, plan.training_size, plan.responses,
         plan.offline_simulations, plan.online_simulations,
         f"{plan.expected_rmae:.1f}%")
        for plan in plans
    ]
    print(format_table(
        ("N (pool)", "T (train)", "R (resp)", "offline", "online",
         "expected rmae"),
        rows,
    ))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core import explore_new_program
    from repro.sim import IntervalSimulator

    metric = Metric.from_name(args.metric)
    suite = spec2000_suite()
    if args.program not in suite:
        suite = mibench_suite()
    if args.program not in suite:
        print(f"unknown program {args.program!r}", file=sys.stderr)
        return 2
    if args.distributed and not args.checkpoint_dir:
        print("--distributed needs --checkpoint-dir (the coordinator "
              "journals results there)", file=sys.stderr)
        return 2
    spec = spec2000_suite()
    if args.checkpoint_dir:
        # The offline build is the expensive part: run it as a
        # journalled campaign so an interrupted run resumes for free.
        simulator = IntervalSimulator()
        result = _run_campaign(args, spec, simulator)
        if result is None:
            return 2
        dataset = result.to_dataset(spec, simulator)
    else:
        dataset = DesignSpaceDataset.sampled(
            spec, sample_size=args.samples, seed=args.seed
        )
    print(f"offline: training the SPEC pool (T={args.training_size}) ...")
    pool = TrainingPool(
        dataset, metric, training_size=args.training_size, seed=args.seed,
        n_jobs=args.jobs,
    )
    models = pool.models(
        exclude=[args.program] if args.program in spec else None
    )
    report = explore_new_program(
        models,
        suite[args.program],
        simulator=IntervalSimulator(dataset.simulator.space),
        responses=args.responses,
        sweet_spot_candidates=args.candidates,
        seed=args.seed,
    )
    print(f"program        : {report.program} ({metric.value})")
    print(f"simulations    : {report.simulations_spent}")
    print(f"training error : {report.training_error:.1f}% "
          f"-> verdict: {report.verdict}")
    if report.sweet_spots:
        print(f"\npredicted sweet spots (of {args.candidates:,} candidates):")
        for rank, (config, value) in enumerate(report.sweet_spots, start=1):
            print(f"  {rank}. {value:.4e}  width={config.width} "
                  f"rob={config.rob_size} rf={config.rf_size} "
                  f"L2={config.l2cache_kb}KB")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    import numpy as np

    from repro.search import (
        DesignSpaceEnv,
        PredictorOracle,
        make_agent,
        pick_response_indices,
        run_search,
        suggest_reference,
    )

    try:
        objectives = tuple(
            Metric.from_name(name.strip())
            for name in args.objectives.split(",")
            if name.strip()
        )
    except (KeyError, ValueError) as error:
        print(f"bad --objectives: {error}", file=sys.stderr)
        return 2
    if not objectives:
        print("--objectives needs at least one metric", file=sys.stderr)
        return 2
    # ED/EDD compose from cycles x energy: two base predictors cover
    # every objective combination.
    base_metrics = set(objectives) & {Metric.CYCLES, Metric.ENERGY}
    if {Metric.ED, Metric.EDD} & set(objectives):
        base_metrics |= {Metric.CYCLES, Metric.ENERGY}

    suite = spec2000_suite()
    if args.program not in suite:
        print(f"unknown SPEC program {args.program!r}", file=sys.stderr)
        return 2
    dataset = DesignSpaceDataset.sampled(
        suite, sample_size=args.samples, seed=args.seed
    )
    space = dataset.simulator.space
    predictors = {}
    for metric in sorted(base_metrics, key=lambda m: m.value):
        print(f"offline: fitting the {metric.value} predictor "
              f"(T={args.training_size}, R={args.responses}, "
              f"{args.response_strategy} responses) ...")
        pool = TrainingPool(
            dataset, metric, training_size=args.training_size,
            seed=args.seed, n_jobs=args.jobs,
        )
        models = pool.models(exclude=[args.program])
        predictor = ArchitectureCentricPredictor(models)
        if args.response_strategy == "random":
            indices, _ = dataset.split_indices(args.responses, seed=args.seed)
        else:
            indices = pick_response_indices(
                models, dataset.configs, args.responses,
                strategy=args.response_strategy, seed=args.seed,
            )
        predictor.fit_responses(
            dataset.subset_configs(indices),
            dataset.subset_values(args.program, metric, indices),
        )
        predictors[metric] = predictor

    oracle = PredictorOracle(predictors)

    def _run(agent_name: str):
        env = DesignSpaceEnv(
            space, oracle, objectives=objectives, budget=args.budget
        )
        agent = make_agent(
            agent_name, space, objectives=len(objectives), seed=args.seed
        )
        return run_search(env, agent, batch_size=args.batch, seed=args.seed)

    print(f"search: agent={args.agent} budget={args.budget} "
          f"objectives={','.join(m.value for m in objectives)}")
    outcome = _run(args.agent)
    payload = outcome.to_payload()

    print(f"frontier     : {len(outcome.frontier)} points")
    print(f"hypervolume  : {outcome.hypervolume:.6e}")
    for metric_name, winner in outcome.best.items():
        print(f"best {metric_name:7}: {winner['value']:.6e}")

    if args.compare_random and args.agent != "random":
        baseline = _run("random")
        # Hypervolumes only compare against one shared reference: derive
        # it from the union of both runs' observed bounds.
        union = np.stack([
            np.asarray(outcome.observed_lo), np.asarray(outcome.observed_hi),
            np.asarray(baseline.observed_lo),
            np.asarray(baseline.observed_hi),
        ])
        shared_ref = suggest_reference(union)
        agent_hv = outcome.hypervolume_at(shared_ref)
        random_hv = baseline.hypervolume_at(shared_ref)
        verdict = "beats" if agent_hv > random_hv else "does not beat"
        print(f"vs random    : {agent_hv:.6e} vs {random_hv:.6e} "
              f"({args.agent} {verdict} random at budget {args.budget})")
        payload["shared_reference"] = [float(v) for v in shared_ref]
        payload["hypervolume_shared"] = agent_hv
        payload["random_baseline"] = {
            "hypervolume_shared": random_hv,
            "frontier_size": len(baseline.frontier),
            "spent": baseline.spent,
        }

    if args.frontier_out:
        target = Path(args.frontier_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            _json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"frontier-out : {target}")
    return 0


def _fit_new_program_predictor(args: argparse.Namespace, metric: Metric):
    """Train the pool and fit responses — the predict/publish shared core.

    Returns ``(predictor, dataset)`` or ``None`` when the program is
    unknown (the caller already printed the error).
    """
    suite = spec2000_suite()
    if args.program not in suite:
        print(f"unknown SPEC program {args.program!r}", file=sys.stderr)
        return None
    dataset = DesignSpaceDataset.sampled(
        suite, sample_size=args.samples, seed=args.seed
    )
    print(f"offline: training {len(suite) - 1} program models "
          f"(T={args.training_size}) ...")
    pool = TrainingPool(
        dataset, metric, training_size=args.training_size, seed=args.seed,
        n_jobs=args.jobs,
    )
    predictor = ArchitectureCentricPredictor(
        pool.models(exclude=[args.program])
    )
    response_idx, _ = dataset.split_indices(args.responses, seed=args.seed)
    predictor.fit_responses(
        dataset.subset_configs(response_idx),
        dataset.subset_values(args.program, metric, response_idx),
    )
    return predictor, dataset


def _cmd_publish(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.runtime import array_checksum
    from repro.serve import ModelRegistry

    metric = Metric.from_name(args.metric)
    fitted = _fit_new_program_predictor(args, metric)
    if fitted is None:
        return 2
    predictor, dataset = fitted
    config_matrix = np.array(
        [list(config.values()) for config in dataset.configs],
        dtype=np.int64,
    )
    registry = ModelRegistry(args.registry)
    name = args.name or f"{args.program}-{metric.value}"
    try:
        record = registry.publish(
            predictor,
            name,
            seed=args.seed,
            config_checksum=array_checksum(config_matrix),
            notes=args.notes,
        )
    except ValueError as error:
        print(f"cannot publish: {error}", file=sys.stderr)
        return 2
    print(f"published      : {record.name} v{record.version}")
    print(f"metric         : {record.metric}")
    print(f"training error : {record.training_error:.1f}%")
    print(f"artifact sha256: {record.artifact_checksum}")
    print(f"registry       : {registry.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs import build_manifest, get_tracer, write_manifest
    from repro.serve import ModelRegistry, serve_fleet_forever, serve_forever

    if args.workers < 1:
        print("serve needs at least one worker", file=sys.stderr)
        return 2

    started = time.time()
    trace_start = get_tracer().mark()
    if args.artifact:
        from repro.core import load_predictor

        try:
            predictor = load_predictor(args.artifact)
        except ValueError as error:
            print(f"cannot load artifact: {error}", file=sys.stderr)
            return 2
        model_info = {"artifact": str(args.artifact)}
    else:
        if not args.registry or not args.model:
            print("serve needs --registry and --model (or --artifact)",
                  file=sys.stderr)
            return 2
        try:
            predictor, record = ModelRegistry(args.registry).load(
                args.model, args.model_version
            )
        except (KeyError, ValueError) as error:
            print(f"cannot load model: {error}", file=sys.stderr)
            return 2
        model_info = {
            "name": record.name,
            "version": record.version,
            "checksum": record.artifact_checksum,
            "run_id": record.run.get("run_id"),
        }

    def _ready(server) -> None:
        print(f"serving on http://{server.host}:{server.port} "
              f"(metric {server.model_info['metric']}); "
              "SIGTERM/Ctrl-C drains and stops", file=sys.stderr)

    def _fleet_ready(fleet) -> None:
        print(f"serving {fleet.workers} workers on "
              f"http://{fleet.host}:{fleet.port} ({fleet.mode}); "
              "SIGTERM/Ctrl-C drains and stops", file=sys.stderr)

    exit_code = 0
    try:
        if args.workers > 1:
            report = serve_fleet_forever(
                predictor,
                args.workers,
                host=args.host,
                port=args.port,
                model_info=model_info,
                server_options={
                    "max_batch": args.max_batch,
                    "batch_window": args.batch_window_ms / 1000.0,
                    "cache_size": args.cache_size,
                    "queue_limit": args.queue_limit,
                    "service_delay": args.service_delay_ms / 1000.0,
                    "max_inflight": args.max_inflight,
                    "client_rate": args.client_rate,
                    "client_burst": args.client_burst,
                },
                ready_callback=_fleet_ready,
            )
            print(f"fleet exit: {report.exit_codes}", file=sys.stderr)
            exit_code = 0 if report.clean else 1
        else:
            serve_forever(
                predictor,
                host=args.host,
                port=args.port,
                model_info=model_info,
                max_batch=args.max_batch,
                batch_window=args.batch_window_ms / 1000.0,
                cache_size=args.cache_size,
                queue_limit=args.queue_limit,
                max_inflight=args.max_inflight,
                client_rate=args.client_rate,
                client_burst=args.client_burst,
                service_delay=args.service_delay_ms / 1000.0,
                ready_callback=_ready,
            )
    finally:
        # Written on every exit path — the server's lifetime metrics
        # and model identity survive a SIGTERM'd pod.
        if args.manifest_out:
            manifest = build_manifest(
                extra={"kind": "serve", "model": model_info},
                trace_start=trace_start,
                started=started,
            )
            path = write_manifest(args.manifest_out, manifest)
            print(f"manifest  : {path}", file=sys.stderr)
    return exit_code


def _cmd_load(args: argparse.Namespace) -> int:
    import json

    from repro.load import LoadGenerator, LoadPlan
    from repro.serve import PredictionClient, ServerError

    try:
        plan = LoadPlan.load(args.plan)
    except (OSError, ValueError) as error:
        print(f"load plan error: {error}", file=sys.stderr)
        return 2
    if args.seed is not None:
        plan = plan.with_seed(args.seed)
    host, port = args.target

    # Preflight: fail fast with a clear message when nothing is
    # listening, instead of burning the whole plan on timeouts.
    try:
        with PredictionClient(host, port, timeout=args.timeout) as probe:
            health = probe.healthz()
    except (ServerError, OSError) as error:
        print(f"load target error: {host}:{port} is not healthy "
              f"({error})", file=sys.stderr)
        return 2
    print(f"target    : http://{host}:{port} "
          f"(model {health.get('model', {}).get('name', '?')})",
          file=sys.stderr)

    report = LoadGenerator(
        plan, host, port, timeout=args.timeout
    ).run()

    for stage in report.stages:
        raw_p99 = stage.latency_percentiles_ms.get("p99", float("nan"))
        p99 = f"{raw_p99:8.1f}ms" if raw_p99 == raw_p99 else "       -"
        print(f"stage     : {stage.name:<16} "
              f"offered {stage.offered_rps:7.1f}/s "
              f"goodput {stage.goodput_rps:7.1f}/s p99 {p99} "
              f"shed {stage.shed:4d} errors {stage.errors:4d}")
    print(f"totals    : {report.scheduled} scheduled, {report.ok} ok, "
          f"{report.shed} shed, {report.errors} errors in "
          f"{report.wall_seconds:.1f}s")

    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
        print(f"report    : {args.report_out}", file=sys.stderr)

    failed = False
    if args.slo_config:
        from repro.obs import SLOTracker

        try:
            tracker = SLOTracker.from_config(args.slo_config)
        except (OSError, ValueError) as error:
            print(f"slo config error: {error}", file=sys.stderr)
            return 2
        ok, statuses = tracker.check(get_registry())
        for status in statuses:
            verdict = "ok      " if status.ok else "VIOLATED"
            print(f"slo       : {status.objective.name:<24} {verdict}")
        if not ok:
            print("verdict   : SLO violation", file=sys.stderr)
            failed = True
    if args.fail_on_drops and (report.shed or report.errors):
        print(f"verdict   : {report.shed} shed + {report.errors} errors "
              "with --fail-on-drops", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_coordinator(args: argparse.Namespace) -> int:
    from repro.designspace import sample_configurations
    from repro.runtime import CampaignRunner, IntervalBackend
    from repro.sim import IntervalSimulator

    if not args.checkpoint_dir:
        print("coordinator needs --checkpoint-dir (the journal is the "
              "campaign's source of truth)", file=sys.stderr)
        return 2
    if args.program is not None:
        suite = spec2000_suite()
        if args.program not in suite:
            suite = mibench_suite()
        if args.program not in suite:
            print(f"unknown program {args.program!r}", file=sys.stderr)
            return 2
        profiles = [suite[args.program]]
    else:
        profiles = _suite(args.suite)
    simulator = IntervalSimulator()
    configs = sample_configurations(
        simulator.space, args.samples, seed=args.seed
    )
    runner = CampaignRunner(
        IntervalBackend(simulator),
        args.checkpoint_dir,
        chunk_size=args.chunk_size,
        seed=args.seed,
    )
    try:
        result = _coordinate(args, runner, profiles, configs)
    except ValueError as error:
        hint = "" if args.resume else " (pass --resume to continue it)"
        print(f"checkpoint error: {error}{hint}", file=sys.stderr)
        return 2
    print(f"campaign  : {result.simulated_cells} chunk(s) simulated, "
          f"{result.resumed_cells} resumed from {args.checkpoint_dir}")
    if not result.complete:
        unfinished = len(result.failed_cells) + len(result.pending_cells)
        print(f"campaign left {unfinished} chunk(s) unfinished; rerun "
              "with --resume to continue", file=sys.stderr)
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distrib import CampaignWorker, ProtocolError

    host, port = args.connect
    worker = CampaignWorker(
        host,
        port,
        max_tasks=args.max_tasks,
        sim_repeat=args.sim_repeat,
        sim_delay=args.sim_delay,
        connect_timeout=args.connect_timeout,
        reconnect_attempts=args.reconnect_attempts,
        reconnect_delay=args.reconnect_delay,
    )
    try:
        completed = worker.run()
    except (ConnectionError, ProtocolError, OSError) as error:
        print(f"worker error: {error}", file=sys.stderr)
        return 1
    print(f"worker    : {completed} chunk(s) completed")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.distrib import ProtocolError, fetch_status

    host, port = args.address
    try:
        status = fetch_status(host, port, timeout=args.timeout)
    except (ConnectionError, ProtocolError, OSError, TimeoutError) as error:
        print(f"status error: {error}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    campaign = status.get("campaign") or {}
    progress = status.get("progress") or {}
    print(f"campaign  : {len(campaign.get('programs', []))} program(s) "
          f"x {campaign.get('config_count', 0)} config(s), "
          f"{campaign.get('total_cells', 0)} cell(s), "
          f"seed {campaign.get('seed')}")
    print(f"progress  : {progress.get('journalled', 0)}/"
          f"{progress.get('total', 0)} journalled, "
          f"{progress.get('leased', 0)} leased, "
          f"{progress.get('queued', 0)} queued, "
          f"{progress.get('failed', 0)} failed"
          + (" [draining]" if status.get("draining") else ""))
    for entry in status.get("fleet", ()):
        state = "active" if entry.get("active") else "gone"
        if entry.get("slow"):
            state += ", slow"
        if entry.get("simulate_suite"):
            state += ", suite"
        print(f"worker    : {entry.get('worker')} [{state}] "
              f"rate {entry.get('rate')}/s "
              f"weight {entry.get('weight')} "
              f"bundle {entry.get('bundle_size')} "
              f"done {entry.get('tasks_completed')}")
    stats = status.get("stats") or {}
    print("stats     : " + ", ".join(
        f"{key}={value}" for key, value in sorted(stats.items())
    ))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.distrib import ProtocolError
    from repro.distrib.top import TopSession

    host, port = args.address
    session = TopSession(host, port, timeout=args.timeout)
    try:
        if args.once:
            return session.run_once(sys.stdout)
        return session.run(
            sys.stdout, interval=args.interval, max_frames=args.frames
        )
    except (ConnectionError, ProtocolError, OSError, TimeoutError) as error:
        print(f"top error: {error}", file=sys.stderr)
        return 1


def _cmd_slo(args: argparse.Namespace) -> int:
    import json
    import math

    from repro.obs import MetricsView, SLOTracker

    try:
        tracker = SLOTracker.from_config(args.objectives)
    except (OSError, ValueError) as error:
        print(f"slo config error: {error}", file=sys.stderr)
        return 2
    if args.metrics and args.status_addr:
        print("pass --metrics or --status, not both", file=sys.stderr)
        return 2
    if args.status_addr:
        # A live coordinator already evaluates its objectives against
        # its own time series; trust its verdicts so the check agrees
        # with what /metrics and `repro top` show.
        from repro.distrib import ProtocolError, fetch_status

        host, port = args.status_addr
        try:
            status = fetch_status(host, port, timeout=args.timeout)
        except (ConnectionError, ProtocolError, OSError,
                TimeoutError) as error:
            print(f"slo status error: {error}", file=sys.stderr)
            return 1
        known = {entry.get("name"): entry for entry in status.get("slo", ())}
        payloads = []
        for objective in tracker.objectives:
            entry = known.get(objective.name)
            if entry is None:
                entry = {"name": objective.name, "kind": objective.kind,
                         "threshold": objective.threshold, "value": None,
                         "burn": None, "ok": True, "no_data": True,
                         "description": objective.description}
            payloads.append(entry)
    else:
        if args.metrics:
            try:
                text = open(args.metrics, encoding="utf-8").read()
            except OSError as error:
                print(f"slo metrics error: {error}", file=sys.stderr)
                return 2
            source = MetricsView.from_prometheus(text)
        else:
            source = get_registry()  # in-process (mostly for tests)
        _, statuses = tracker.check(source)
        payloads = [status.to_payload() for status in statuses]
    ok = all(entry.get("ok", False) for entry in payloads)
    if args.as_json:
        print(json.dumps(
            {"ok": ok, "objectives": payloads}, indent=2, sort_keys=True
        ))
    else:
        for entry in payloads:
            if entry.get("no_data"):
                verdict, burn = "no-data ", "-"
            else:
                verdict = "ok      " if entry.get("ok") else "VIOLATED"
                raw_burn = entry.get("burn")
                burn = (
                    f"{raw_burn:.2f}x"
                    if isinstance(raw_burn, (int, float))
                    and not math.isnan(raw_burn)
                    else "-"
                )
            print(f"slo       : {entry.get('name', '?'):<24} {verdict} "
                  f"burn {burn} (threshold "
                  f"{entry.get('threshold', '?')})")
        print(f"verdict   : {'all objectives ok' if ok else 'SLO violation'}")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    import pathlib

    from repro.designspace import sample_configurations
    from repro.distrib import ChaosPlan, RepeatBackend
    from repro.distrib.chaos import (
        journal_checksums,
        run_chaos_campaign_sync,
    )
    from repro.runtime import CampaignRunner, IntervalBackend
    from repro.sim import IntervalSimulator

    try:
        plan = ChaosPlan.load(args.plan)
    except (OSError, ValueError) as error:
        print(f"chaos plan error: {error}", file=sys.stderr)
        return 2
    if args.program is not None:
        suite = spec2000_suite()
        if args.program not in suite:
            suite = mibench_suite()
        if args.program not in suite:
            print(f"unknown program {args.program!r}", file=sys.stderr)
            return 2
        profiles = [suite[args.program]]
    else:
        profiles = _suite(args.suite)
    simulator = IntervalSimulator()
    configs = sample_configurations(
        simulator.space, args.samples, seed=args.seed
    )
    base = pathlib.Path(args.checkpoint_dir)
    serial_dir = base / "serial"
    chaos_dir = base / "chaos"

    print(f"baseline  : serial campaign -> {serial_dir}", file=sys.stderr)
    serial_runner = CampaignRunner(
        IntervalBackend(simulator),
        serial_dir,
        chunk_size=args.chunk_size,
        seed=args.seed,
    )
    serial_result = serial_runner.run(profiles, configs)
    if not serial_result.complete:
        print("serial baseline did not complete; aborting",
              file=sys.stderr)
        return 1

    print(f"chaos     : {len(plan.events)} event(s), seed {plan.seed}, "
          f"{args.workers} worker(s) -> {chaos_dir}", file=sys.stderr)
    report = run_chaos_campaign_sync(
        lambda: CampaignRunner(
            IntervalBackend(IntervalSimulator()),
            chaos_dir,
            chunk_size=args.chunk_size,
            seed=args.seed,
        ),
        profiles,
        configs,
        plan,
        n_workers=args.workers,
        backend_factory=lambda: RepeatBackend(
            IntervalBackend(IntervalSimulator()), delay=args.sim_delay
        ),
        coordinator_kwargs={
            "lease_timeout": args.lease_timeout,
            "monitor_interval": 0.02,
        },
    )
    for entry in report.event_log:
        print(f"event     : t+{entry['at']:.2f}s {entry['action']} "
              f"-> {entry['target'] or '-'}")
    stats = report.stats
    print(f"fleet     : {stats.joins} join(s), {stats.leaves} leave(s), "
          f"{stats.steals} steal(s), {stats.reclaims} reclaim(s), "
          f"{stats.speculative_wins} speculative win(s)")

    serial_sums = journal_checksums(serial_dir)
    chaos_sums = journal_checksums(chaos_dir)
    lost = sorted(set(serial_sums) - set(chaos_sums))
    diverged = sorted(
        cell for cell in chaos_sums
        if cell in serial_sums and serial_sums[cell] != chaos_sums[cell]
    )
    identical = (
        report.result.complete
        and not lost
        and not diverged
        and chaos_sums == serial_sums
    )
    if args.report_out:
        payload = {
            "plan": plan.to_dict(),
            "identical": identical,
            "lost_cells": lost,
            "diverged_cells": diverged,
            "event_log": report.event_log,
            "fleet_events": report.fleet_events,
            "worker_tasks": report.worker_tasks,
            "stats": dataclasses.asdict(stats),
        }
        path = pathlib.Path(args.report_out)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"report    : {path}", file=sys.stderr)
    if not report.result.complete:
        print("verdict   : chaos campaign did not complete",
              file=sys.stderr)
        return 1
    if not identical:
        print(f"verdict   : journal diverged ({len(lost)} lost, "
              f"{len(diverged)} mismatched)", file=sys.stderr)
        return 1
    print(f"verdict   : journal bit-identical to serial across "
          f"{len(chaos_sums)} cell(s)")
    return 0


def _raise_exit(signum, _frame) -> None:
    """Turn SIGTERM into SystemExit so ``finally`` blocks run."""
    raise SystemExit(128 + signum)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _configure_telemetry(args)
    # Every subcommand stamps its provenance first: the package version
    # and git sha tie any log stream or bug report to exact code.
    _log.info(
        "%s: %s", _version_string(), args.command,
        extra={"event": "cli.start", "command": args.command,
               "version": __version__, "git_sha": git_sha()},
    )
    try:
        # A supervisor's SIGTERM must flush telemetry like any other
        # exit: route it through SystemExit (exit code 143) so the
        # finally below runs.  (The serve command's asyncio loop
        # installs its own graceful-drain handler while it runs.)
        signal.signal(signal.SIGTERM, _raise_exit)
    except (ValueError, OSError):
        pass  # not the main thread (embedded use); signals stay as-is
    try:
        if args.command == "table1":
            return _cmd_table1()
        if args.command == "table2":
            return _cmd_table2()
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "predict":
            return _cmd_predict(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "explore":
            return _cmd_explore(args)
        if args.command == "search":
            return _cmd_search(args)
        if args.command == "publish":
            return _cmd_publish(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "load":
            return _cmd_load(args)
        if args.command == "coordinator":
            return _cmd_coordinator(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "slo":
            return _cmd_slo(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        # Exported even when the command failed or was signalled: a
        # crashed campaign's partial metrics and trace are exactly what
        # debugging needs.
        _export_telemetry(args)


if __name__ == "__main__":
    sys.exit(main())
