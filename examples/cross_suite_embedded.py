"""Cross-suite prediction: size an embedded core with a SPEC-trained model.

Section 7.3's scenario: the offline pool was trained on general-purpose
SPEC CPU 2000 workloads, but the program we must design for is an
embedded MiBench kernel from a different application domain.  The model
still only needs 32 simulations of the new kernel — and its own training
error tells us whether to trust it.

Run:  python examples/cross_suite_embedded.py
"""

from repro import (
    ArchitectureCentricPredictor,
    DesignSpaceDataset,
    Metric,
    TrainingPool,
    mibench_suite,
    spec2000_suite,
)
from repro.analysis import nearest_pool_programs

KERNELS = ("rijndael", "fft", "dijkstra", "tiff2rgba")


def main() -> None:
    spec = spec2000_suite()
    mibench = mibench_suite()

    spec_dataset = DesignSpaceDataset.sampled(spec, sample_size=1000, seed=5)
    mibench_dataset = DesignSpaceDataset(
        mibench, spec_dataset.configs, spec_dataset.simulator
    )

    pool = TrainingPool(spec_dataset, Metric.EDD, training_size=512, seed=0)
    models = pool.models()  # the full SPEC pool — MiBench is all unseen
    print(f"Offline pool: {len(models)} SPEC-trained models (metric: EDD)\n")

    print(f"{'kernel':<12} {'train err':>9} {'test rmae':>9} "
          f"{'corr':>6}  verdict")
    for kernel in KERNELS:
        response_idx, holdout_idx = mibench_dataset.split_indices(
            32, seed=hash(kernel) % 2**32
        )
        predictor = ArchitectureCentricPredictor(models)
        predictor.fit_responses(
            mibench_dataset.subset_configs(response_idx),
            mibench_dataset.subset_values(kernel, Metric.EDD, response_idx),
        )
        scores = predictor.evaluate(
            mibench_dataset.subset_configs(holdout_idx),
            mibench_dataset.subset_values(kernel, Metric.EDD, holdout_idx),
        )
        # Section 7.2/7.3: a high training error flags a program unlike
        # anything in the pool — build a program-specific model instead.
        verdict = (
            "trust the cross-suite model"
            if predictor.training_error < 15.0
            else "unlike SPEC; consider a program-specific model"
        )
        neighbours = nearest_pool_programs(
            models,
            mibench_dataset.subset_configs(response_idx),
            mibench_dataset.subset_values(kernel, Metric.EDD, response_idx),
            count=2,
        )
        resembles = "/".join(name for name, _ in neighbours)
        print(f"{kernel:<12} {predictor.training_error:>8.1f}% "
              f"{scores['rmae']:>8.1f}% {scores['correlation']:>6.3f}  "
              f"{verdict}  (behaves like: {resembles})")


if __name__ == "__main__":
    main()
