"""Per-parameter sensitivity analysis of the design space.

A quantitative companion to the paper's Section 3.4 frequency plots:
how much of a program's metric variation does each parameter explain?
Two complementary measures over the shared configuration sample:

* :func:`main_effects` — the variance of the per-value conditional means
  (a one-way ANOVA main effect), normalised by the total variance;
* :func:`parameter_correlations` — the rank correlation between each
  (encoded) parameter and the metric, signed, so "bigger L2 helps" and
  "more width costs energy" are readable directly.

Both operate on log-metric values so heavy-tailed metrics (EDD) do not
let a few extreme configurations dominate.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.sim.metrics import Metric

from repro.exploration.dataset import DesignSpaceDataset


def _log_values(dataset: DesignSpaceDataset, program: str,
                metric: Metric) -> np.ndarray:
    return np.log10(dataset.values(program, metric))


def _raw_columns(dataset: DesignSpaceDataset) -> Dict[str, np.ndarray]:
    names = [p.name for p in dataset.simulator.space.parameters]
    raw = np.array([list(config.values()) for config in dataset.configs])
    return {name: raw[:, i] for i, name in enumerate(names)}


def main_effects(
    dataset: DesignSpaceDataset, program: str, metric: Metric
) -> Dict[str, float]:
    """Fraction of metric variance explained by each parameter alone.

    For each parameter, group the sample by parameter value and compute
    ``Var(E[y | value]) / Var(y)`` — the classic main-effect (first-order
    Sobol) index estimated on the random sample.  Values sum to at most
    ~1 plus interaction effects.

    Caveat: the sample is uniform over the *legal* space, whose
    constraints correlate parameters (e.g. a small L2 forces small L1s),
    so a main effect here measures association under realistic designs,
    not a causal one-factor sweep — use the interval simulator directly
    for causal what-if questions.
    """
    y = _log_values(dataset, program, metric)
    total = y.var()
    if total == 0.0:
        return {
            p.name: 0.0 for p in dataset.simulator.space.parameters
        }
    effects = {}
    for name, column in _raw_columns(dataset).items():
        means = []
        weights = []
        for value in np.unique(column):
            mask = column == value
            means.append(y[mask].mean())
            weights.append(mask.sum())
        means = np.array(means)
        weights = np.array(weights, dtype=float)
        weights /= weights.sum()
        grand = float((weights * means).sum())
        between = float((weights * (means - grand) ** 2).sum())
        effects[name] = between / total
    return effects


def parameter_correlations(
    dataset: DesignSpaceDataset, program: str, metric: Metric
) -> Dict[str, float]:
    """Signed Spearman correlation of each parameter with the metric.

    Negative means growing the parameter lowers (improves) the metric.
    """
    y = _log_values(dataset, program, metric)
    y_ranks = np.argsort(np.argsort(y)).astype(float)
    correlations = {}
    for name, column in _raw_columns(dataset).items():
        x_ranks = np.argsort(np.argsort(column)).astype(float)
        x_std = x_ranks.std()
        y_std = y_ranks.std()
        if x_std == 0.0 or y_std == 0.0:
            correlations[name] = 0.0
            continue
        covariance = np.mean(
            (x_ranks - x_ranks.mean()) * (y_ranks - y_ranks.mean())
        )
        correlations[name] = float(covariance / (x_std * y_std))
    return correlations


def ranked_sensitivities(
    dataset: DesignSpaceDataset, program: str, metric: Metric
) -> Tuple[Tuple[str, float, float], ...]:
    """(parameter, main effect, signed rank correlation), most
    influential first — the one-call summary used in reports."""
    effects = main_effects(dataset, program, metric)
    correlations = parameter_correlations(dataset, program, metric)
    rows = [
        (name, effects[name], correlations[name]) for name in effects
    ]
    rows.sort(key=lambda row: -row[1])
    return tuple(rows)


def suite_main_effects(
    dataset: DesignSpaceDataset, metric: Metric
) -> Dict[str, float]:
    """Main effects averaged across the suite's programs."""
    accumulator: Dict[str, float] = {}
    for program in dataset.programs:
        for name, effect in main_effects(dataset, program, metric).items():
            accumulator[name] = accumulator.get(name, 0.0) + effect
    return {
        name: value / len(dataset.programs)
        for name, value in accumulator.items()
    }
