"""Shared fixtures for the benchmark harnesses.

Every bench regenerates one table or figure of the paper.  The shared
dataset here uses a reduced default scale (1,500 sampled configurations,
1 repeat) so the whole harness finishes in minutes; the experiment
runners accept paper-scale arguments (3,000 samples, 20 repeats) for a
full run.  Each bench prints the artefact it regenerates and writes it
under ``benchmarks/results/`` so the numbers survive pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.training import TrainingPool
from repro.exploration import DesignSpaceDataset
from repro.sim import Metric
from repro.workloads import mibench_suite, spec2000_suite

from scale import REPEATS, RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def spec_dataset() -> DesignSpaceDataset:
    return DesignSpaceDataset.sampled(
        spec2000_suite(), sample_size=SAMPLE_SIZE, seed=2007
    )


@pytest.fixture(scope="session")
def mibench_dataset(spec_dataset) -> DesignSpaceDataset:
    # Share the configuration sample (the paper simulates the same
    # sampled architectures for every benchmark).
    return DesignSpaceDataset(
        mibench_suite(), spec_dataset.configs, spec_dataset.simulator
    )


@pytest.fixture(scope="session")
def pools(spec_dataset):
    """Lazily trained per-metric offline pools, shared across benches."""
    cache = {}

    def get(metric: Metric) -> TrainingPool:
        if metric not in cache:
            cache[metric] = TrainingPool(
                spec_dataset, metric, training_size=TRAINING_SIZE, seed=40
            )
        return cache[metric]

    return get


@pytest.fixture(scope="session")
def record_artifact():
    """Print an artefact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write


@pytest.fixture(scope="session")
def record_json():
    """Persist a machine-readable artefact under benchmarks/results/."""
    import json

    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, payload: dict) -> None:
        text = json.dumps(payload, indent=2, sort_keys=True)
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.json").write_text(text + "\n")

    return write
