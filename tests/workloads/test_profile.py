"""Tests for the workload profile component models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    BranchBehaviour,
    Idiosyncrasy,
    InstructionMix,
    LocalityModel,
    spec2000_profile,
    stable_seed,
)


def _mix(**overrides) -> InstructionMix:
    values = dict(
        int_alu=0.40, int_mul=0.05, fp_alu=0.05, fp_mul=0.02,
        load=0.22, store=0.10, branch=0.16,
    )
    values.update(overrides)
    return InstructionMix(**values)


class TestInstructionMix:
    def test_fractions_sum_to_one(self):
        assert abs(sum(_mix().as_tuple()) - 1.0) < 1e-9

    def test_bad_sum_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            _mix(int_alu=0.9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            InstructionMix(-0.1, 0.2, 0.2, 0.2, 0.2, 0.2, 0.1)

    def test_memory_fraction(self):
        assert _mix().memory == pytest.approx(0.32)

    def test_fp_fraction(self):
        assert _mix().fp == pytest.approx(0.07)

    def test_normalised(self):
        raw = InstructionMix(0.8, 0.1, 0.1, 0.2, 0.4, 0.2, 0.2).normalised() \
            if False else _mix().normalised()
        assert abs(sum(raw.as_tuple()) - 1.0) < 1e-12


class TestBranchBehaviour:
    def _behaviour(self) -> BranchBehaviour:
        return BranchBehaviour(
            floor=0.04, scale=0.05, alpha=0.5, btb_floor=0.01,
            btb_scale=0.02, taken_fraction=0.6, static_branches=128,
        )

    def test_mispredict_decreases_with_size(self):
        behaviour = self._behaviour()
        sizes = np.array([1024, 4096, 16384, 32768])
        rates = behaviour.mispredict_rate(sizes)
        assert np.all(np.diff(rates) < 0)

    def test_mispredict_approaches_floor(self):
        behaviour = self._behaviour()
        assert behaviour.mispredict_rate(2**30) == pytest.approx(
            behaviour.floor, abs=1e-3
        )

    def test_mispredict_is_probability(self):
        behaviour = self._behaviour()
        rate = behaviour.mispredict_rate(1)
        assert 0.0 <= rate <= 0.5

    def test_btb_miss_decreases_with_size(self):
        behaviour = self._behaviour()
        assert behaviour.btb_miss_rate(4096) < behaviour.btb_miss_rate(1024)

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValueError):
            BranchBehaviour(1.5, 0.05, 0.5, 0.01, 0.02, 0.6, 128)

    def test_invalid_taken_fraction_rejected(self):
        with pytest.raises(ValueError):
            BranchBehaviour(0.04, 0.05, 0.5, 0.01, 0.02, 1.0, 128)


class TestLocalityModel:
    def _locality(self) -> LocalityModel:
        return LocalityModel(
            working_sets=((32 * 1024, 0.05), (2 * 1024 * 1024, 0.08)),
            cold=0.003,
        )

    def test_monotone_in_capacity(self):
        locality = self._locality()
        capacities = np.array([4, 16, 64, 256, 1024, 8192]) * 1024.0
        misses = locality.miss_ratio(capacities)
        assert np.all(np.diff(misses) <= 1e-12)

    def test_approaches_cold_floor(self):
        locality = self._locality()
        assert locality.miss_ratio(2.0**40) == pytest.approx(0.003, abs=1e-6)

    def test_small_cache_misses_most(self):
        locality = self._locality()
        assert locality.miss_ratio(64.0) > 0.1

    def test_footprint_is_largest_working_set(self):
        assert self._locality().footprint == 2 * 1024 * 1024

    def test_weights_exceeding_one_rejected(self):
        with pytest.raises(ValueError):
            LocalityModel(working_sets=((1024, 0.9),), cold=0.2)

    def test_empty_working_sets_rejected(self):
        with pytest.raises(ValueError):
            LocalityModel(working_sets=(), cold=0.01)

    @given(
        capacity=st.floats(min_value=1.0, max_value=1e9),
    )
    @settings(max_examples=50, deadline=None)
    def test_miss_ratio_is_probability(self, capacity):
        assert 0.0 <= float(self._locality().miss_ratio(capacity)) <= 1.0


class TestIdiosyncrasy:
    def test_deterministic_given_seed(self):
        idio = Idiosyncrasy(amplitude=0.1, seed=42)
        x = np.random.default_rng(0).random((5, 13))
        assert np.allclose(idio.factor(x), idio.factor(x))

    def test_bounded_by_amplitude(self):
        idio = Idiosyncrasy(amplitude=0.1, seed=42)
        x = np.random.default_rng(1).random((200, 13))
        factors = idio.factor(x)
        assert np.all(factors >= 0.9 - 1e-9)
        assert np.all(factors <= 1.1 + 1e-9)

    def test_zero_amplitude_is_identity(self):
        idio = Idiosyncrasy(amplitude=0.0, seed=1)
        x = np.random.default_rng(2).random((10, 13))
        assert np.allclose(idio.factor(x), 1.0)

    def test_different_seeds_differ(self):
        x = np.random.default_rng(3).random((50, 13))
        a = Idiosyncrasy(amplitude=0.1, seed=1).factor(x)
        b = Idiosyncrasy(amplitude=0.1, seed=2).factor(x)
        assert not np.allclose(a, b)

    def test_varies_over_space(self):
        idio = Idiosyncrasy(amplitude=0.1, seed=4)
        x = np.random.default_rng(5).random((100, 13))
        assert idio.factor(x).std() > 1e-3


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", "b") == stable_seed("a", "b")

    def test_part_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("a", "c")

    def test_fits_32_bits(self):
        assert 0 <= stable_seed("anything") < 2**32


class TestWorkloadProfile:
    def test_ilp_increases_with_window(self):
        profile = spec2000_profile("gzip")
        windows = np.array([8, 16, 32, 64, 128, 256])
        ilp = profile.ilp(windows)
        assert np.all(np.diff(ilp) > 0)

    def test_ilp_saturates_at_max(self):
        profile = spec2000_profile("gzip")
        assert float(profile.ilp(10_000)) == pytest.approx(
            profile.ilp_max, rel=1e-6
        )

    def test_describe_keys(self):
        summary = spec2000_profile("art").describe()
        assert {"memory_fraction", "ilp_max", "mlp_max"} <= set(summary)

    def test_with_overrides(self):
        profile = spec2000_profile("gzip")
        changed = profile.with_overrides(ilp_max=9.0)
        assert changed.ilp_max == 9.0
        assert changed.name == profile.name

    def test_invalid_fields_rejected(self):
        profile = spec2000_profile("gzip")
        with pytest.raises(ValueError):
            profile.with_overrides(ilp_max=-1.0)
        with pytest.raises(ValueError):
            profile.with_overrides(mlp_max=0.5)
        with pytest.raises(ValueError):
            profile.with_overrides(instructions=0)
