"""run_search / SearchOutcome / write_frontier behaviour."""

from __future__ import annotations

import json

import pytest

from repro.search import (
    DesignSpaceEnv,
    PredictorOracle,
    make_agent,
    run_search,
    write_frontier,
)
from repro.sim import Metric


@pytest.fixture()
def outcome(space, search_predictors):
    env = DesignSpaceEnv(
        space,
        PredictorOracle(search_predictors),
        objectives=(Metric.CYCLES, Metric.ENERGY),
        budget=48,
    )
    agent = make_agent("genetic", space, objectives=2, seed=13)
    return run_search(env, agent, batch_size=12, seed=13)


class TestRunSearch:
    def test_spends_exact_budget(self, outcome):
        assert outcome.spent == outcome.budget == 48

    def test_frontier_non_empty_and_reference_dominates(self, outcome):
        assert len(outcome.frontier) >= 1
        for point in outcome.frontier:
            assert all(
                v < r for v, r in zip(point.objectives, outcome.reference)
            )
        assert outcome.hypervolume > 0

    def test_best_entries_per_objective(self, outcome):
        assert set(outcome.best) == {"cycles", "energy"}
        cycles_values = [p.objectives[0] for p in outcome.frontier]
        assert outcome.best["cycles"]["value"] == min(cycles_values)

    def test_hypervolume_at_monotone_in_reference(self, outcome):
        bigger = [r * 2 for r in outcome.reference]
        assert outcome.hypervolume_at(bigger) > outcome.hypervolume

    def test_bad_batch_size(self, space, search_predictors):
        env = DesignSpaceEnv(
            space, PredictorOracle(search_predictors), budget=4
        )
        agent = make_agent("random", space, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            run_search(env, agent, batch_size=0)

    def test_budget_of_one_is_just_baseline(self, space, search_predictors):
        env = DesignSpaceEnv(
            space, PredictorOracle(search_predictors), budget=1
        )
        agent = make_agent("random", space, seed=0)
        result = run_search(env, agent)
        assert result.spent == 1
        assert len(result.frontier) == 1
        assert result.frontier[0].configuration == space.baseline


class TestPayloadAndPersistence:
    def test_payload_round_trips_json(self, outcome):
        payload = outcome.to_payload()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["agent"] == "genetic"
        assert back["spent"] == 48
        assert back["frontier_size"] == len(outcome.frontier)
        assert len(back["frontier"]) == len(outcome.frontier)
        assert back["objectives"] == ["cycles", "energy"]

    def test_write_frontier(self, outcome, tmp_path):
        target = write_frontier(tmp_path / "deep" / "frontier.json", outcome)
        assert target.exists()
        payload = json.loads(target.read_text())
        assert payload["hypervolume"] == pytest.approx(outcome.hypervolume)
        assert payload["frontier"][0]["configuration"]["width"] in (
            2, 4, 6, 8,
        )
