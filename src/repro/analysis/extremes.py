"""Parameter-value frequency in the extremes of the space (Figs. 2, 3).

Section 3.4 of the paper: for each benchmark, take the best and worst
one percent of the sampled configurations by a metric, and count how
often each value of each parameter occurs there.  A value that occurs
far more often than chance strongly contributes to (very good or very
bad) behaviour — e.g. 81 percent of the worst-cycles configurations have
the smallest register file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.space import DesignSpace
from repro.sim.metrics import Metric

from repro.exploration.dataset import DesignSpaceDataset


@dataclass(frozen=True)
class ExtremeFrequencies:
    """Value-occurrence frequencies in one tail of the space.

    Attributes:
        metric: The ranking metric.
        tail: ``"best"`` (lowest metric) or ``"worst"``.
        fraction: Tail size as a fraction of the sample (paper: 0.01).
        frequencies: parameter name -> {value: frequency in [0, 1]}.
            Frequencies are averaged over the suite's programs, each
            program contributing its own tail, as in the paper.
    """

    metric: Metric
    tail: str
    fraction: float
    frequencies: Dict[str, Dict[int, float]]
    marginals: Dict[str, Dict[int, float]]

    def top_value(self, parameter: str) -> Tuple[int, float]:
        """The most frequent value of a parameter and its frequency."""
        values = self.frequencies[parameter]
        value = max(values, key=lambda v: values[v])
        return value, values[value]

    def lift(self, parameter: str, value: int) -> float:
        """Tail frequency of a value relative to its whole-sample share.

        Legality constraints skew the marginals (e.g. wide machines admit
        more port combinations, so width 8 is over half of all *legal*
        points); lift > 1 means a value is genuinely over-represented in
        the tail rather than just common everywhere.
        """
        marginal = self.marginals[parameter][value]
        if marginal == 0.0:
            return 0.0
        return self.frequencies[parameter][value] / marginal


def _tail_indices(
    values: np.ndarray, fraction: float, tail: str
) -> np.ndarray:
    count = max(1, int(round(len(values) * fraction)))
    order = np.argsort(values)
    if tail == "best":
        return order[:count]
    if tail == "worst":
        return order[-count:]
    raise ValueError(f"tail must be 'best' or 'worst', got {tail!r}")


def extreme_frequencies(
    dataset: DesignSpaceDataset,
    metric: Metric,
    tail: str,
    fraction: float = 0.01,
) -> ExtremeFrequencies:
    """Compute per-parameter value frequencies in one tail of the space.

    Each program of the dataset contributes its own best/worst
    ``fraction`` of the shared configuration sample; the frequencies are
    the average over programs of the per-program value shares.
    """
    if not 0.0 < fraction <= 0.5:
        raise ValueError("fraction must be in (0, 0.5]")
    space = dataset.simulator.space
    parameters = space.parameters
    accumulators: Dict[str, Dict[int, float]] = {
        p.name: {value: 0.0 for value in p.values} for p in parameters
    }
    raw = np.array([list(config.values()) for config in dataset.configs])
    names = [p.name for p in parameters]

    programs = dataset.programs
    for program in programs:
        values = dataset.values(program, metric)
        indices = _tail_indices(values, fraction, tail)
        tail_size = len(indices)
        for column, name in enumerate(names):
            chosen, counts = np.unique(
                raw[indices, column], return_counts=True
            )
            for value, count in zip(chosen, counts):
                accumulators[name][int(value)] += count / tail_size
    for name in names:
        for value in accumulators[name]:
            accumulators[name][value] /= len(programs)

    marginals: Dict[str, Dict[int, float]] = {}
    sample_size = raw.shape[0]
    for column, name in enumerate(names):
        counts = {value: 0.0 for value in space.parameter(name).values}
        chosen, occurrences = np.unique(raw[:, column], return_counts=True)
        for value, count in zip(chosen, occurrences):
            counts[int(value)] = count / sample_size
        marginals[name] = counts

    return ExtremeFrequencies(
        metric=metric,
        tail=tail,
        fraction=fraction,
        frequencies=accumulators,
        marginals=marginals,
    )


def dominant_values(
    frequencies: ExtremeFrequencies,
    threshold: float = 0.3,
    minimum_lift: float = 1.25,
) -> List[Tuple[str, int, float]]:
    """Parameters with one value dominating a tail.

    A value counts as dominant when its tail frequency reaches
    ``threshold`` *and* it is over-represented relative to its share of
    the whole sample (``lift >= minimum_lift``).  Returns (parameter,
    value, frequency) sorted by frequency — the paper's 'register file 40
    occurs in 81 percent of the worst one percent' style statement.
    """
    result = []
    for parameter, values in frequencies.frequencies.items():
        value, frequency = max(values.items(), key=lambda item: item[1])
        if (
            frequency >= threshold
            and frequencies.lift(parameter, value) >= minimum_lift
        ):
            result.append((parameter, value, frequency))
    result.sort(key=lambda item: -item[2])
    return result
