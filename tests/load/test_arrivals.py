"""Arrival-process tests: determinism, rates and shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.load import ARRIVAL_KINDS, arrival_offsets
from repro.runtime.faults import derive_rng


class TestInvariants:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_sorted_and_in_range(self, kind):
        offsets = arrival_offsets(kind, 80.0, 2.0, rng=derive_rng(3, kind))
        assert np.all(np.diff(offsets) >= 0)
        assert np.all(offsets >= 0.0)
        assert np.all(offsets < 2.0)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_same_seed_replays(self, kind):
        first = arrival_offsets(kind, 50.0, 3.0, rng=derive_rng(7, kind))
        second = arrival_offsets(kind, 50.0, 3.0, rng=derive_rng(7, kind))
        np.testing.assert_array_equal(first, second)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="arrival kind"):
            arrival_offsets("lumpy", 10.0, 1.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            arrival_offsets("constant", 0.0, 1.0)
        with pytest.raises(ValueError):
            arrival_offsets("constant", 10.0, 0.0)


class TestConstant:
    def test_count_and_spacing(self):
        offsets = arrival_offsets("constant", 100.0, 2.0)
        assert len(offsets) == 200
        gaps = np.diff(offsets)
        np.testing.assert_allclose(gaps, gaps[0])


class TestPoisson:
    def test_mean_rate(self):
        offsets = arrival_offsets(
            "poisson", 200.0, 10.0, rng=derive_rng(1, "poisson")
        )
        # 2000 expected arrivals; 5 sigma is ~220.
        assert 1700 < len(offsets) < 2300

    def test_needs_rng(self):
        with pytest.raises(ValueError, match="rng"):
            arrival_offsets("poisson", 10.0, 1.0)

    def test_different_seeds_differ(self):
        first = arrival_offsets("poisson", 50.0, 2.0, rng=derive_rng(1, "a"))
        second = arrival_offsets("poisson", 50.0, 2.0, rng=derive_rng(1, "b"))
        assert first.shape != second.shape or not np.array_equal(
            first, second
        )


class TestBurst:
    def test_mean_rate_preserved(self):
        offsets = arrival_offsets(
            "burst", 100.0, 4.0, rng=derive_rng(2, "burst"),
            burst_factor=4.0, burst_fraction=0.25, burst_period=1.0,
        )
        assert len(offsets) == pytest.approx(400, abs=4)

    def test_concentrated_in_burst_windows(self):
        offsets = arrival_offsets(
            "burst", 100.0, 2.0, rng=derive_rng(2, "burst"),
            burst_factor=4.0, burst_fraction=0.25, burst_period=1.0,
        )
        phase = offsets % 1.0
        # factor * fraction == 1 puts the whole mean rate in-burst.
        assert np.all(phase < 0.25 + 1e-9)

    def test_overfull_burst_rejected(self):
        with pytest.raises(ValueError, match="burst"):
            arrival_offsets(
                "burst", 10.0, 1.0, rng=derive_rng(0, "x"),
                burst_factor=8.0, burst_fraction=0.5,
            )


class TestRamp:
    def test_mean_is_average_of_endpoints(self):
        offsets = arrival_offsets("ramp", 100.0, 4.0, ramp_from=0.0)
        # Mean rate (0+100)/2 = 50/s over 4s.
        assert len(offsets) == pytest.approx(200, abs=2)

    def test_density_increases(self):
        offsets = arrival_offsets("ramp", 100.0, 4.0, ramp_from=0.0)
        first_half = int(np.sum(offsets < 2.0))
        second_half = len(offsets) - first_half
        assert second_half > 2 * first_half

    def test_ramp_down(self):
        offsets = arrival_offsets("ramp", 10.0, 4.0, ramp_from=90.0)
        first_half = int(np.sum(offsets < 2.0))
        assert first_half > len(offsets) - first_half
        assert np.all(np.diff(offsets) >= 0)
