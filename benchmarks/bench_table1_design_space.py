"""Table 1: the varied design parameters and the size of the space."""

from repro.designspace import DesignSpace, render_table1
from repro.exploration import scale_banner


def test_table1_design_space(benchmark, record_artifact):
    space = DesignSpace()

    def regenerate() -> str:
        return render_table1(space)

    table = benchmark(regenerate)
    banner = scale_banner("Table 1 — microarchitectural design parameters",
                          parameters=space.dimensions)
    record_artifact("table1_design_space", f"{banner}\n{table}")

    assert space.raw_size == 62_668_800_000
    assert space.legal_size == 18_952_704_000
