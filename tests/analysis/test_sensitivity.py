"""Tests for the per-parameter sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis import (
    main_effects,
    parameter_correlations,
    ranked_sensitivities,
    suite_main_effects,
)
from repro.sim import Metric


class TestMainEffects:
    def test_covers_all_parameters(self, small_dataset, space):
        effects = main_effects(small_dataset, "gzip", Metric.CYCLES)
        assert set(effects) == {p.name for p in space.parameters}

    def test_effects_are_fractions(self, small_dataset):
        effects = main_effects(small_dataset, "gzip", Metric.CYCLES)
        for value in effects.values():
            assert 0.0 <= value <= 1.0

    def test_rf_size_dominates_cycles(self, small_dataset):
        """Section 3.4: the register file is the critical parameter."""
        effects = main_effects(small_dataset, "gzip", Metric.CYCLES)
        assert max(effects, key=effects.get) == "rf_size"

    def test_lsq_matters_more_for_memory_heavy_programs(self, small_dataset):
        """Memory-heavy programs bind the window on the LSQ far more
        than compute-heavy ones."""
        art = main_effects(small_dataset, "art", Metric.CYCLES)
        gzip = main_effects(small_dataset, "gzip", Metric.CYCLES)
        assert art["lsq_size"] > 2 * gzip["lsq_size"]

    def test_width_and_l2_drive_energy(self, small_dataset):
        effects = main_effects(small_dataset, "gzip", Metric.ENERGY)
        top3 = sorted(effects, key=effects.get, reverse=True)[:3]
        assert {"width", "l2cache_kb"} & set(top3)


class TestCorrelations:
    def test_bounded(self, small_dataset):
        correlations = parameter_correlations(
            small_dataset, "gzip", Metric.CYCLES
        )
        for value in correlations.values():
            assert -1.0 <= value <= 1.0

    def test_rf_size_negative_for_cycles(self, small_dataset):
        """More registers -> fewer cycles."""
        correlations = parameter_correlations(
            small_dataset, "gzip", Metric.CYCLES
        )
        assert correlations["rf_size"] < 0

    def test_l2_positive_for_energy(self, small_dataset):
        """Bigger L2 -> more leakage energy."""
        correlations = parameter_correlations(
            small_dataset, "gzip", Metric.ENERGY
        )
        assert correlations["l2cache_kb"] > 0


class TestSummaries:
    def test_ranked_sensitivities_sorted(self, small_dataset):
        rows = ranked_sensitivities(small_dataset, "gzip", Metric.CYCLES)
        effects = [effect for _, effect, _ in rows]
        assert effects == sorted(effects, reverse=True)
        assert len(rows) == 13

    def test_suite_main_effects_averaged(self, small_dataset):
        suite_effects = suite_main_effects(small_dataset, Metric.CYCLES)
        per_program = [
            main_effects(small_dataset, p, Metric.CYCLES)["rf_size"]
            for p in small_dataset.programs
        ]
        assert suite_effects["rf_size"] == pytest.approx(
            np.mean(per_program)
        )
