"""Helpers that turn high-level program knobs into full profiles.

Suites describe each program with a handful of architect-level knobs
(how memory bound, how branchy, how much ILP, what working sets).  This
module expands those into a complete :class:`WorkloadProfile`, adding a
small deterministic per-program jitter so that no two programs are exact
scalings of one another.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .profile import (
    BranchBehaviour,
    Idiosyncrasy,
    InstructionMix,
    LocalityModel,
    WorkloadProfile,
    stable_seed,
)

KB = 1024


def _jitter(rng: np.random.Generator, value: float, spread: float = 0.08) -> float:
    """Multiplicative +-spread jitter, deterministic per program."""
    return float(value * (1.0 + rng.uniform(-spread, spread)))


def make_mix(
    rng: np.random.Generator,
    memory_fraction: float,
    branch_fraction: float,
    fp_fraction: float,
    store_share: float = 0.32,
    mul_share: float = 0.12,
) -> InstructionMix:
    """Build an instruction mix from aggregate fractions.

    Args:
        rng: Per-program jitter source.
        memory_fraction: loads + stores.
        branch_fraction: branches.
        fp_fraction: share of the *compute* instructions that are FP.
        store_share: share of memory instructions that are stores.
        mul_share: share of compute instructions that are multiplies.
    """
    memory_fraction = _jitter(rng, memory_fraction, 0.05)
    branch_fraction = _jitter(rng, branch_fraction, 0.05)
    compute = 1.0 - memory_fraction - branch_fraction
    if compute <= 0:
        raise ValueError("memory + branch fractions leave no compute")
    fp = compute * fp_fraction
    integer = compute - fp
    return InstructionMix(
        int_alu=integer * (1.0 - mul_share),
        int_mul=integer * mul_share,
        fp_alu=fp * (1.0 - mul_share),
        fp_mul=fp * mul_share,
        load=memory_fraction * (1.0 - store_share),
        store=memory_fraction * store_share,
        branch=branch_fraction,
    ).normalised()


def make_profile(
    name: str,
    suite: str,
    category: str,
    *,
    memory_fraction: float,
    branch_fraction: float,
    fp_fraction: float,
    ilp_max: float,
    ilp_window_scale: float,
    working_sets_kb: Sequence[Tuple[float, float]],
    cold_miss: float,
    instruction_footprint_kb: float,
    mispredict_floor: float,
    mispredict_scale: float,
    mispredict_alpha: float = 0.5,
    mlp_max: float = 3.0,
    idiosyncrasy: float = 0.05,
    taken_fraction: float = 0.6,
    static_branches: int = 256,
    instructions: int = 10_000_000,
) -> WorkloadProfile:
    """Expand architect-level knobs into a full :class:`WorkloadProfile`.

    Args:
        working_sets_kb: (size in KB, miss weight) pairs for the data
            stream; weights plus ``cold_miss`` must not exceed 1.
        instruction_footprint_kb: Hot code size; a second cold tail a
            factor of 8 larger is added automatically.
        idiosyncrasy: Amplitude of the program's private non-linear
            residual (0.03-0.08 typical, larger for outliers).

    Everything else maps one-to-one onto :class:`WorkloadProfile` fields,
    with deterministic per-program jitter applied to the soft knobs.
    """
    rng = np.random.default_rng(stable_seed(suite, name, "knobs"))
    mix = make_mix(rng, memory_fraction, branch_fraction, fp_fraction)
    branches = BranchBehaviour(
        floor=_jitter(rng, mispredict_floor),
        scale=_jitter(rng, mispredict_scale),
        alpha=_jitter(rng, mispredict_alpha, 0.05),
        btb_floor=_jitter(rng, 0.01),
        btb_scale=_jitter(rng, 0.02),
        taken_fraction=min(0.9, _jitter(rng, taken_fraction, 0.05)),
        static_branches=static_branches,
    )
    data_locality = LocalityModel(
        working_sets=tuple(
            (_jitter(rng, size_kb) * KB, _jitter(rng, weight, 0.05))
            for size_kb, weight in working_sets_kb
        ),
        cold=cold_miss,
        sharpness=_jitter(rng, 1.0, 0.15),
    )
    # Instruction streams are far more cacheable than data streams: the
    # weights here are per-access miss contributions, so even a code
    # footprint larger than the I-cache yields miss ratios of a few
    # percent, matching measured icache behaviour.
    hot_code = _jitter(rng, instruction_footprint_kb) * KB
    instruction_locality = LocalityModel(
        working_sets=((hot_code, 0.05), (hot_code * 8.0, 0.015)),
        cold=0.0005,
        sharpness=1.2,
    )
    return WorkloadProfile(
        name=name,
        suite=suite,
        category=category,
        mix=mix,
        ilp_max=_jitter(rng, ilp_max),
        ilp_window_scale=_jitter(rng, ilp_window_scale),
        iq_pressure=_jitter(rng, 0.35, 0.15),
        dest_fraction=_jitter(rng, 0.72, 0.06),
        reads_per_instruction=_jitter(rng, 1.55, 0.08),
        branches=branches,
        data_locality=data_locality,
        instruction_locality=instruction_locality,
        mlp_max=max(1.0, _jitter(rng, mlp_max)),
        latency_hiding_scale=_jitter(rng, 55.0, 0.2),
        idiosyncrasy_performance=Idiosyncrasy(
            amplitude=idiosyncrasy,
            seed=stable_seed(suite, name, "idio-perf"),
        ),
        idiosyncrasy_energy=Idiosyncrasy(
            amplitude=idiosyncrasy * 0.8,
            seed=stable_seed(suite, name, "idio-energy"),
        ),
        instructions=instructions,
    )
