"""Search-agent quality: frontier hypervolume versus predictor-call budget.

Not a paper artefact — the closed-loop extension built on the paper's
predictor.  Every agent searches the same (cycles, energy) design space
through a :class:`repro.search.DesignSpaceEnv` backed by predictors fit
for one held-out program, at identical predictor-call budgets, and the
resulting Pareto frontiers are scored with the exact hypervolume
against ONE shared reference point (the union of every run's observed
bounds), so the curves in ``results/BENCH_search.json`` are directly
comparable across agents and budgets.

Two guarantees are asserted, matching the CI smoke leg:

* at the top budget at least one non-random agent reaches strictly
  higher frontier hypervolume than pure random sampling;
* seeded replay is deterministic — re-running the winning agent with
  the same seed reproduces the hypervolume bit-for-bit.
"""

import os

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import ArchitectureCentricPredictor
from repro.search import (
    DesignSpaceEnv,
    PredictorOracle,
    make_agent,
    run_search,
    suggest_reference,
)
from repro.sim import Metric

#: Held-out program whose responses fit the searched predictors.
TARGET_PROGRAM = "applu"

#: Agents compared at equal budget.  ``random`` is the baseline the
#: paper's R-sample methodology implies; the others must earn their keep.
AGENTS = ("random", "genetic", "bayes")

#: Predictor-call budgets for the curve.  The genetic agent seeds its
#: population randomly for the first ~24 evaluations, so the smallest
#: budget documents the warm-up regime rather than a win.
BUDGETS = tuple(
    int(b)
    for b in os.environ.get("REPRO_SEARCH_BUDGETS", "48,128,256").split(",")
)

OBJECTIVES = (Metric.CYCLES, Metric.ENERGY)
SEED = 2007
BATCH = 16


def _fit_predictors(spec_dataset, pools):
    predictors = {}
    for metric in OBJECTIVES:
        pool = pools(metric)
        predictor = ArchitectureCentricPredictor(
            pool.models(exclude=[TARGET_PROGRAM])
        )
        indices, _ = spec_dataset.split_indices(RESPONSES, seed=616)
        predictor.fit_responses(
            spec_dataset.subset_configs(indices),
            spec_dataset.subset_values(TARGET_PROGRAM, metric, indices),
        )
        predictors[metric] = predictor
    return predictors


def _run_once(space, oracle, agent_name, budget, seed=SEED):
    env = DesignSpaceEnv(space, oracle, objectives=OBJECTIVES, budget=budget)
    agent = make_agent(
        agent_name, space, objectives=len(OBJECTIVES), seed=seed
    )
    return run_search(env, agent, batch_size=BATCH, seed=seed)


def test_search_hypervolume_vs_budget(spec_dataset, pools, record_json):
    predictors = _fit_predictors(spec_dataset, pools)
    oracle = PredictorOracle(predictors)
    space = spec_dataset.simulator.space

    outcomes = {
        agent: [_run_once(space, oracle, agent, budget) for budget in BUDGETS]
        for agent in AGENTS
    }

    # One reference over the union of every run's observed bounds makes
    # hypervolumes comparable across agents and budgets.
    bounds = np.stack(
        [o.observed_lo for runs in outcomes.values() for o in runs]
        + [o.observed_hi for runs in outcomes.values() for o in runs]
    )
    reference = suggest_reference(bounds)

    curves = {
        agent: [
            {
                "budget": budget,
                "spent": outcome.spent,
                "frontier_size": len(outcome.frontier),
                "hypervolume": outcome.hypervolume_at(reference),
            }
            for budget, outcome in zip(BUDGETS, runs)
        ]
        for agent, runs in outcomes.items()
    }

    top = len(BUDGETS) - 1
    random_top = curves["random"][top]["hypervolume"]
    challengers = {
        agent: curves[agent][top]["hypervolume"]
        for agent in AGENTS
        if agent != "random"
    }
    winner = max(challengers, key=challengers.get)

    # Deterministic seeded replay of the winning run.
    replay = _run_once(space, oracle, winner, BUDGETS[top])
    replay_hv = replay.hypervolume_at(reference)
    replay_identical = replay_hv == challengers[winner]

    payload = {
        "scale": {
            "samples": SAMPLE_SIZE,
            "training_size": TRAINING_SIZE,
            "responses": RESPONSES,
            "program": TARGET_PROGRAM,
            "seed": SEED,
            "batch": BATCH,
        },
        "objectives": [m.value for m in OBJECTIVES],
        "budgets": list(BUDGETS),
        "reference": [float(r) for r in reference],
        "curves": curves,
        "winner": winner,
        "winner_hypervolume": challengers[winner],
        "random_hypervolume": random_top,
        "replay_identical": replay_identical,
    }
    record_json("BENCH_search", payload)

    # Equal budget, strictly better frontier — the subsystem's pitch.
    assert challengers[winner] > random_top, (
        f"{winner} ({challengers[winner]:.4g}) does not beat random "
        f"({random_top:.4g}) at budget {BUDGETS[top]}"
    )
    assert replay_identical, "seeded replay diverged"
    for agent in AGENTS:
        hypervolumes = [point["hypervolume"] for point in curves[agent]]
        assert all(hv >= 0.0 for hv in hypervolumes), agent
        assert all(point["spent"] == point["budget"]
                   for point in curves[agent]), agent
