"""Seeded, scripted failure injection for distributed campaigns.

A resilience claim you cannot replay is a hope, not a property.  This
module drives a *whole fleet* — coordinator, workers, and the wire
between them — through a declarative :class:`ChaosPlan`: kill a worker
mid-lease, spawn a late joiner, partition a worker away until its
lease expires, drop or delay its frames, slow its simulator tenfold,
or restart the coordinator outright.  Every run of the same plan with
the same seed injects the same faults against the same targets in the
same order (:func:`repro.runtime.faults.derive_rng` resolves any
unpinned target), so a failure found under chaos is a failure you can
hand to a colleague as ``(plan, seed)``.

The harness runs everything in-process on one event loop — real
loopback TCP, real frames, real lease expiries — which keeps a full
chaos campaign fast enough for CI while exercising exactly the code
paths a multi-host fleet runs.  Faults are injected at two seams:

* :class:`ChaosWireFilter` sits on a worker's *outbound* frames
  (installed via :attr:`CampaignWorker.wire_filter`): ``drop`` raises
  on the next send, ``delay`` sleeps per frame, ``partition`` blocks
  sends until healed — starving heartbeats exactly the way a real
  partition does, so the coordinator's lease machinery (not a mock)
  decides what happens next.
* Process-level events act on the asyncio tasks themselves: ``kill``
  cancels a worker task (the SIGKILL analogue — its socket dies and
  the coordinator reclaims), ``spawn`` starts a fresh worker
  mid-campaign, ``restart_coordinator`` cancels the coordinator and
  brings a new one up on the same port against the same checkpoint
  (workers reconnect under full-jitter backoff and the journal
  resumes).

The invariant under all of it: **zero lost cells and a checkpoint
journal bit-identical to a serial run's** — the whole point of the
exercise.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import get_logger
from repro.runtime.campaign import CampaignResult, CampaignRunner
from repro.runtime.faults import derive_rng

from .coordinator import CampaignCoordinator, CoordinatorStats
from .worker import CampaignWorker, RepeatBackend

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosRunReport",
    "ChaosWireFilter",
    "journal_checksums",
    "run_chaos_campaign",
    "run_chaos_campaign_sync",
]

_log = get_logger(__name__)

#: The fault vocabulary a plan may use.
CHAOS_ACTIONS = (
    "kill",
    "spawn",
    "partition",
    "drop",
    "delay",
    "slow",
    "restart_coordinator",
)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    Attributes:
        at: Seconds after campaign start to fire.
        action: One of :data:`CHAOS_ACTIONS`.
        target: Worker id to hit; ``None`` picks one deterministically
            from the seeded stream (coordinator actions ignore it).
        duration: Seconds a ``partition``/``delay``/``slow`` window
            stays open (0 means until the run ends).
        factor: ``delay``: seconds added per frame; ``slow``: the
            slowdown multiplier on the worker's per-batch latency.
    """

    at: float
    action: str
    target: Optional[str] = None
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("an event's at must not be negative")
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; pick one of "
                f"{', '.join(CHAOS_ACTIONS)}"
            )
        if self.duration < 0:
            raise ValueError("duration must not be negative")
        if self.factor < 0:
            raise ValueError("factor must not be negative")

    def to_dict(self) -> Dict:
        """Plain-JSON form (the plan-file entry)."""
        out: Dict = {"at": self.at, "action": self.action}
        if self.target is not None:
            out["target"] = self.target
        if self.duration:
            out["duration"] = self.duration
        if self.factor != 1.0:
            out["factor"] = self.factor
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ChaosEvent":
        """Parse one plan-file entry (validators re-run)."""
        if not isinstance(data, dict):
            raise ValueError("a chaos event must be a JSON object")
        unknown = set(data) - {"at", "action", "target", "duration",
                               "factor"}
        if unknown:
            raise ValueError(
                f"unknown chaos event field(s): {sorted(unknown)}"
            )
        try:
            return cls(
                at=float(data["at"]),
                action=str(data["action"]),
                target=(
                    str(data["target"])
                    if data.get("target") is not None else None
                ),
                duration=float(data.get("duration", 0.0)),
                factor=float(data.get("factor", 1.0)),
            )
        except KeyError as error:
            raise ValueError(
                f"a chaos event needs field {error.args[0]!r}"
            ) from error


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, ordered script of faults.

    Attributes:
        seed: Master seed — together with the events it pins every
            random choice the harness makes (unpinned targets).
        events: The faults, in any order; execution sorts by ``at``
            (ties break by position in the plan).
    """

    seed: int = 0
    events: Tuple[ChaosEvent, ...] = ()

    def ordered(self) -> Tuple[ChaosEvent, ...]:
        """Events in firing order: by ``at``, ties by plan position."""
        return tuple(
            event for _, _, event in sorted(
                (event.at, index, event)
                for index, event in enumerate(self.events)
            )
        )

    def to_dict(self) -> Dict:
        """Plain-JSON form (the plan file)."""
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ChaosPlan":
        """Parse a plan file's JSON object."""
        if not isinstance(data, dict):
            raise ValueError("a chaos plan must be a JSON object")
        events = data.get("events", ())
        if not isinstance(events, (list, tuple)):
            raise ValueError('"events" must be a list')
        return cls(
            seed=int(data.get("seed", 0)),
            events=tuple(ChaosEvent.from_dict(entry) for entry in events),
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        """Parse a plan from JSON text."""
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as error:
            raise ValueError(f"chaos plan is not JSON: {error}") from error

    @classmethod
    def load(cls, path) -> "ChaosPlan":
        """Load a plan file (``repro chaos --plan``)."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


class ChaosWireFilter:
    """Fault hooks on one worker's outbound frames.

    Installed as :attr:`CampaignWorker.wire_filter`; the worker awaits
    :meth:`before_send` in front of every frame it writes.  The filter
    never touches payloads — corruption belongs to the codec fuzz
    tests — it only drops, delays or blocks whole frames, which is
    what real networks do to healthy processes.
    """

    def __init__(self) -> None:
        self.delay_seconds = 0.0
        self._drop_next = False
        self._barrier: Optional[asyncio.Event] = None

    def drop_next(self) -> None:
        """Make the next send raise ``ConnectionError`` (one shot)."""
        self._drop_next = True

    def start_partition(self) -> None:
        """Block every send until :meth:`heal_partition`."""
        if self._barrier is None:
            self._barrier = asyncio.Event()

    def heal_partition(self) -> None:
        """Release blocked senders; subsequent sends pass freely."""
        barrier, self._barrier = self._barrier, None
        if barrier is not None:
            barrier.set()

    @property
    def partitioned(self) -> bool:
        """True while a partition window is open."""
        return self._barrier is not None

    async def before_send(self, payload: Dict) -> None:
        """The worker-side hook: applied before every outbound frame."""
        if self._drop_next:
            self._drop_next = False
            raise ConnectionError("chaos: injected connection drop")
        if self.delay_seconds > 0:
            await asyncio.sleep(self.delay_seconds)
        barrier = self._barrier
        if barrier is not None:
            await barrier.wait()


@dataclass
class _WorkerHandle:
    name: str
    worker: CampaignWorker
    task: asyncio.Task
    wire: ChaosWireFilter
    base_delay: float


@dataclass
class ChaosRunReport:
    """What a chaos campaign run hands back.

    Attributes:
        result: The campaign result (same type a serial run returns).
        stats: The final coordinator's stats (steals, reclaims, ...).
        event_log: The injected faults in firing order —
            ``{"seq", "at", "action", "target"}`` — a pure function of
            (plan, seed), so two runs of the same plan compare equal.
        fleet_events: The final coordinator's membership transitions.
        worker_tasks: Tasks completed per worker name.
    """

    result: CampaignResult
    stats: CoordinatorStats
    event_log: List[Dict] = field(default_factory=list)
    fleet_events: List[Dict] = field(default_factory=list)
    worker_tasks: Dict[str, int] = field(default_factory=dict)


def journal_checksums(checkpoint_dir) -> Dict[str, str]:
    """cell id -> artifact checksum from a checkpoint journal.

    The journal's *record order* reflects completion order (and so
    differs run to run), but the mapping it encodes must not: this is
    the form in which two checkpoints are compared for the
    bit-identical guarantee.
    """
    journal = Path(checkpoint_dir) / "journal.jsonl"
    checksums: Dict[str, str] = {}
    if not journal.exists():
        return checksums
    for line in journal.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        checksums[record["cell"]] = record["checksum"]
    return checksums


async def run_chaos_campaign(
    runner_factory: Callable[[], CampaignRunner],
    profiles,
    configs: Sequence,
    plan: ChaosPlan,
    n_workers: int = 3,
    backend_factory=None,
    host: str = "127.0.0.1",
    coordinator_kwargs: Optional[Dict] = None,
    worker_kwargs: Optional[Dict] = None,
) -> ChaosRunReport:
    """Run one campaign while executing ``plan`` against the fleet.

    Args:
        runner_factory: Builds a fresh :class:`CampaignRunner` over the
            *same* checkpoint directory each call — called once at
            start and once per ``restart_coordinator`` event, exactly
            like an operator restarting the real process with
            ``--resume``.
        profiles: Workload profiles of the campaign.
        configs: Configurations of the campaign.
        plan: The fault script.
        n_workers: Initial fleet size (names ``w0`` ... ``wN-1``).
        backend_factory: Per-worker backend factory (defaults to the
            interval model).
        host: Loopback bind address.
        coordinator_kwargs: Extra :class:`CampaignCoordinator` knobs.
        worker_kwargs: Extra :class:`CampaignWorker` knobs; reconnects
            default on (8 attempts, 50 ms full-jitter base) because an
            elastic fleet that cannot re-dial is chaos-proof only by
            dying.

    Returns:
        A :class:`ChaosRunReport`; ``result.complete`` plus a journal
        comparison against a serial baseline is the acceptance test.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    coordinator_kwargs = dict(coordinator_kwargs or {})
    worker_kwargs = dict(worker_kwargs or {})
    worker_kwargs.setdefault("reconnect_attempts", 8)
    worker_kwargs.setdefault("reconnect_delay", 0.05)
    worker_kwargs.setdefault("connect_timeout", 5.0)

    chaos_log: List[Dict] = []
    event_log: List[Dict] = []
    workers: Dict[str, _WorkerHandle] = {}
    #: Deterministic target roster: spawned minus killed, maintained
    #: purely by event execution so target choices never depend on
    #: wall-clock races (a drained worker stays a valid no-op target).
    roster: List[str] = []
    timers: List[asyncio.Task] = []
    port_holder = [int(coordinator_kwargs.pop("port", 0))]

    async def start_coordinator(resume: bool):
        runner = runner_factory()
        coordinator = CampaignCoordinator(
            runner, host=host, port=port_holder[0], **coordinator_kwargs
        )
        coordinator.chaos_log = chaos_log
        ready = asyncio.Event()

        def on_ready(c: CampaignCoordinator) -> None:
            port_holder[0] = c.port
            ready.set()

        task = asyncio.create_task(
            coordinator.run_async(
                profiles, configs, resume=resume, ready_callback=on_ready
            )
        )
        while not ready.is_set():
            if task.done():
                task.result()  # surface the startup error
                raise RuntimeError("coordinator exited before binding")
            await asyncio.sleep(0.01)
        return coordinator, task

    def spawn_worker(name: str) -> _WorkerHandle:
        worker = CampaignWorker(
            host,
            port_holder[0],
            backend_factory=backend_factory,
            worker_id=name,
            **worker_kwargs,
        )
        wire = ChaosWireFilter()
        worker.wire_filter = wire
        base_delay = getattr(worker.backend, "delay", 0.0)
        handle = _WorkerHandle(
            name=name,
            worker=worker,
            task=asyncio.create_task(worker.run_async()),
            wire=wire,
            base_delay=float(base_delay),
        )
        workers[name] = handle
        if name not in roster:
            roster.append(name)
        return handle

    def resolve_target(event: ChaosEvent, seq: int) -> Optional[str]:
        if event.action == "restart_coordinator":
            return None
        if event.target is not None:
            return event.target
        if not roster:
            return None
        rng = derive_rng("chaos", plan.seed, seq, event.action)
        return sorted(roster)[int(rng.integers(0, len(roster)))]

    def after(delay: float, fn: Callable[[], None]) -> None:
        async def fire():
            await asyncio.sleep(delay)
            fn()

        timers.append(asyncio.create_task(fire()))

    def ensure_repeat_backend(handle: _WorkerHandle) -> RepeatBackend:
        if not isinstance(handle.worker.backend, RepeatBackend):
            handle.worker.backend = RepeatBackend(handle.worker.backend)
            handle.base_delay = 0.0
        return handle.worker.backend

    coordinator, coord_task = await start_coordinator(resume=True)
    try:
        for index in range(n_workers):
            spawn_worker(f"w{index}")
        loop = asyncio.get_running_loop()
        started = loop.time()
        spawned = 0

        for seq, event in enumerate(plan.ordered()):
            await asyncio.sleep(
                max(0.0, started + event.at - loop.time())
            )
            target = resolve_target(event, seq)
            entry = {
                "seq": seq,
                "at": event.at,
                "action": event.action,
                "target": target,
            }
            event_log.append(entry)
            chaos_log.append(entry)
            _log.warning(
                "chaos event %d: %s target=%s",
                seq, event.action, target,
                extra={"event": "chaos.inject", "action": event.action,
                       "target": target},
            )
            if event.action == "kill" and target in workers:
                handle = workers[target]
                handle.task.cancel()
                await asyncio.gather(
                    handle.task, return_exceptions=True
                )
                if target in roster:
                    roster.remove(target)
            elif event.action == "spawn":
                spawned += 1
                spawn_worker(target or f"chaos-spawn-{spawned}")
            elif event.action == "partition" and target in workers:
                wire = workers[target].wire
                wire.start_partition()
                if event.duration > 0:
                    after(event.duration, wire.heal_partition)
            elif event.action == "drop" and target in workers:
                workers[target].wire.drop_next()
            elif event.action == "delay" and target in workers:
                wire = workers[target].wire
                wire.delay_seconds = event.factor
                if event.duration > 0:
                    def _reset(w=wire):
                        w.delay_seconds = 0.0
                    after(event.duration, _reset)
            elif event.action == "slow" and target in workers:
                handle = workers[target]
                backend = ensure_repeat_backend(handle)
                base = handle.base_delay if handle.base_delay > 0 else 0.01
                backend.delay = event.factor * base
                if event.duration > 0:
                    def _restore(b=backend, h=handle):
                        b.delay = h.base_delay
                    after(event.duration, _restore)
            elif event.action == "restart_coordinator":
                coord_task.cancel()
                await asyncio.gather(coord_task, return_exceptions=True)
                coordinator, coord_task = await start_coordinator(
                    resume=True
                )

        result = await coord_task
    finally:
        # Heal everything so no worker is left awaiting a barrier, then
        # give in-flight goodbyes a moment and reap the fleet.
        for handle in workers.values():
            handle.wire.heal_partition()
            handle.wire.delay_seconds = 0.0
        for timer in timers:
            timer.cancel()
        await asyncio.gather(*timers, return_exceptions=True)
        live = [h.task for h in workers.values() if not h.task.done()]
        if live:
            await asyncio.wait(live, timeout=1.0)
        for handle in workers.values():
            if not handle.task.done():
                handle.task.cancel()
        await asyncio.gather(
            *(h.task for h in workers.values()), return_exceptions=True
        )

    return ChaosRunReport(
        result=result,
        stats=coordinator.stats,
        event_log=event_log,
        fleet_events=list(coordinator.membership.events),
        worker_tasks={
            name: handle.worker.tasks_completed
            for name, handle in workers.items()
        },
    )


def run_chaos_campaign_sync(*args, **kwargs) -> ChaosRunReport:
    """Blocking wrapper around :func:`run_chaos_campaign`."""
    return asyncio.run(run_chaos_campaign(*args, **kwargs))
