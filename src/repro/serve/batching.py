"""Request coalescing: the cache and the asyncio micro-batcher.

The inference server's whole reason to exist is that one vectorised
forward pass over m configurations costs barely more than one over a
single configuration — the per-call overhead (encoding setup, N member
dispatches, the combine) dominates tiny batches.  The
:class:`PredictionBatcher` therefore never predicts one request at a
time: concurrent requests park on a bounded queue, a collector drains
up to ``max_batch`` of them (waiting at most ``batch_window`` seconds
for stragglers), and the whole batch runs through
:meth:`~repro.core.predictor.ArchitectureCentricPredictor.predict_invariant`
in one call.

That method's batch-composition invariance is what makes the two
optimisations here *exact* rather than approximately right:

* **Coalescing** — a request's answer is the same whether its batch
  held 1 or 64 configurations, so batching is invisible to clients.
* **Caching** — each prediction is a pure function of its
  configuration, so an LRU cache keyed by the canonical value tuple
  (:meth:`~repro.designspace.configuration.Configuration.values`) can
  serve repeats without a forward pass and still return the same bits.

Backpressure is explicit: the queue is bounded, and when it is full
:meth:`PredictionBatcher.predict_one` raises :class:`ServerSaturated`
immediately instead of buffering unboundedly — the HTTP layer turns
that into a 503 with ``Retry-After``, which is the honest answer under
overload.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.designspace.configuration import Configuration
from repro.obs import get_logger, get_registry, span

__all__ = ["LRUCache", "PredictionBatcher", "ServerSaturated"]

_log = get_logger("serve.batching")

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


class ServerSaturated(RuntimeError):
    """The request queue is full; the caller should retry later."""


class LRUCache:
    """A small least-recently-used mapping (no locking; asyncio-only).

    Args:
        capacity: Maximum entries; 0 disables caching entirely.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        """The cached value, or the miss sentinel; refreshes recency."""
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: float) -> None:
        """Insert (or refresh) a value, evicting the oldest past capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @staticmethod
    def miss_sentinel():
        """The object :meth:`get` returns on a miss."""
        return _MISSING


class PredictionBatcher:
    """Coalesce concurrent predictions into vectorised invariant batches.

    Args:
        predictor: A fitted architecture-centric predictor whose pool
            stacks (``predict_invariant`` must work).
        max_batch: Most configurations per forward pass.
        batch_window: Seconds the collector waits for more requests
            after the first before dispatching a partial batch.
        cache_size: LRU prediction-cache entries (0 disables).
        queue_limit: Bound on parked requests; beyond it
            :meth:`predict_one` raises :class:`ServerSaturated`.
        forward_delay: Extra seconds slept inside each forward pass
            (in the executor thread, so the event loop stays live).
            Emulates an expensive model so saturation and scaling
            benchmarks behave on a shared test machine — the serving
            twin of ``repro worker --sim-delay``.
    """

    def __init__(
        self,
        predictor,
        max_batch: int = 64,
        batch_window: float = 0.002,
        cache_size: int = 4096,
        queue_limit: int = 1024,
        forward_delay: float = 0.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if forward_delay < 0:
            raise ValueError("forward_delay must be non-negative")
        self._predictor = predictor
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.queue_limit = queue_limit
        self.forward_delay = forward_delay
        self.cache = LRUCache(cache_size)
        self._queue: Optional[asyncio.Queue] = None
        self._collector: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the collector task on the running loop."""
        if self._collector is not None:
            raise RuntimeError("the batcher is already running")
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._closed = False
        self._collector = asyncio.create_task(
            self._run(), name="prediction-batcher"
        )

    async def stop(self) -> None:
        """Drain parked requests, then stop the collector.

        Requests already queued are answered; new :meth:`predict_one`
        calls fail with :class:`ServerSaturated` the moment draining
        begins.
        """
        if self._collector is None:
            return
        self._closed = True
        await self._queue.join()
        self._collector.cancel()
        try:
            await self._collector
        except asyncio.CancelledError:
            pass
        self._collector = None

    # ------------------------------------------------------------------
    # The request side
    # ------------------------------------------------------------------
    async def predict_one(self, config: Configuration) -> float:
        """One configuration's prediction, batched with its neighbours.

        Raises:
            ServerSaturated: when the queue is full or draining.
        """
        registry = get_registry()
        key = config.values()
        hit = self.cache.get(key)
        if hit is not _MISSING:
            registry.counter("serve.cache.hits").inc()
            return hit
        if self._queue is None or self._closed:
            registry.counter("serve.rejected", reason="closed").inc()
            raise ServerSaturated("the prediction batcher is not accepting")
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((config, key, future))
        except asyncio.QueueFull:
            registry.counter("serve.rejected", reason="queue-full").inc()
            raise ServerSaturated(
                f"prediction queue is full ({self.queue_limit} waiting)"
            ) from None
        registry.gauge("serve.queue.depth").set(self._queue.qsize())
        return await future

    # ------------------------------------------------------------------
    # The collector side
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Past the window: take whatever is already parked,
                    # but wait for no one.
                    try:
                        batch.append(self._queue.get_nowait())
                        continue
                    except asyncio.QueueEmpty:
                        break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            try:
                await self._execute(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()
                get_registry().gauge("serve.queue.depth").set(
                    self._queue.qsize()
                )

    async def _execute(
        self, batch: List[Tuple[Configuration, Tuple[int, ...], "asyncio.Future"]]
    ) -> None:
        """Resolve one collected batch (dedup, cache, one forward pass)."""
        registry = get_registry()
        registry.histogram(
            "serve.batch.size", buckets=_BATCH_BUCKETS
        ).observe(len(batch))
        # Dedup within the batch and against the cache: a configuration
        # requested five times costs one forward-pass row (invariance
        # guarantees all five see identical bits).
        unique: Dict[Tuple[int, ...], Configuration] = {}
        resolved: Dict[Tuple[int, ...], float] = {}
        for config, key, _ in batch:
            if key in unique or key in resolved:
                continue
            cached = self.cache.get(key)
            if cached is not _MISSING:
                registry.counter("serve.cache.hits").inc()
                resolved[key] = cached
            else:
                registry.counter("serve.cache.misses").inc()
                unique[key] = config
        if unique:
            miss_configs = list(unique.values())
            start = time.perf_counter()
            try:
                values = await asyncio.get_running_loop().run_in_executor(
                    None, self._forward, miss_configs
                )
            except BaseException as error:  # noqa: BLE001 - forwarded
                registry.counter("serve.errors").inc()
                for _, _, future in batch:
                    if not future.done():
                        future.set_exception(
                            error if isinstance(error, Exception)
                            else RuntimeError(str(error))
                        )
                return
            registry.histogram("serve.batch.seconds").observe(
                time.perf_counter() - start
            )
            for key, value in zip(unique, values):
                value = float(value)
                resolved[key] = value
                self.cache.put(key, value)
        for _, key, future in batch:
            if not future.done():
                future.set_result(resolved[key])

    def _forward(self, configs: Sequence[Configuration]):
        """The worker-thread forward pass, wrapped in a span."""
        with span("serve.batch.predict", size=len(configs)):
            if self.forward_delay > 0:
                time.sleep(self.forward_delay)
            return self._predictor.predict_invariant(configs)


#: Batch sizes are small integers; the seconds-flavoured default
#: buckets would lump everything into two of them.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
