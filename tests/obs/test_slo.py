"""Declarative SLOs: config, evaluation across sources, burn rates."""

import json
import math

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsView,
    SLObjective,
    SLOTracker,
    TimeSeriesSampler,
)


def _latency(threshold=1.0, **overrides):
    fields = dict(
        name="p99", kind="latency", metric="lat", quantile=0.99,
        threshold=threshold,
    )
    fields.update(overrides)
    return SLObjective(**fields)


def _burn(threshold=0.5, **overrides):
    fields = dict(
        name="burn", kind="error_rate", numerator="errors",
        denominator="requests", threshold=threshold,
    )
    fields.update(overrides)
    return SLObjective(**fields)


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            SLObjective(name="x", kind="vibes", threshold=1.0)

    def test_latency_needs_a_metric(self):
        with pytest.raises(ValueError, match="needs a metric"):
            SLObjective(name="x", kind="latency", threshold=1.0)

    def test_rate_needs_both_counters(self):
        with pytest.raises(ValueError, match="numerator"):
            SLObjective(
                name="x", kind="error_rate", threshold=1.0,
                numerator="errors",
            )

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            _latency(threshold=0.0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown key"):
            SLObjective.from_dict(
                {"name": "x", "kind": "latency", "metric": "m",
                 "threshold": 1.0, "burn_rate": 2}
            )

    def test_from_config_file_and_duplicate_names(self, tmp_path):
        config = {"objectives": [
            {"name": "a", "kind": "latency", "metric": "m",
             "threshold": 1.0},
        ]}
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(config))
        tracker = SLOTracker.from_config(path)
        assert [o.name for o in tracker.objectives] == ["a"]
        with pytest.raises(ValueError, match="unique"):
            SLOTracker([_latency(), _latency()])


class TestEvaluation:
    def test_latency_burn_against_registry(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for _ in range(10):
            histogram.observe(5.0)
        (status,) = SLOTracker([_latency(threshold=2.0)]).evaluate(registry)
        assert not status.ok
        assert status.burn > 1.0
        assert not status.no_data

    def test_rate_objective_within_budget(self):
        registry = MetricsRegistry()
        registry.counter("errors").inc(1)
        registry.counter("requests").inc(10)
        ok, (status,) = SLOTracker([_burn(threshold=0.5)]).check(registry)
        assert ok
        assert status.value == pytest.approx(0.1)
        assert status.burn == pytest.approx(0.2)

    def test_no_data_is_ok_but_flagged(self):
        ok, (status,) = SLOTracker([_latency()]).check(MetricsRegistry())
        assert ok
        assert status.no_data
        assert math.isnan(status.value)
        payload = status.to_payload()
        assert payload["value"] is None and payload["burn"] is None

    def test_zero_denominator_is_no_data(self):
        registry = MetricsRegistry()
        registry.counter("errors").inc(3)
        registry.counter("requests")  # registered, never incremented
        (status,) = SLOTracker([_burn()]).evaluate(registry)
        assert status.no_data  # a campaign that has not started

    def test_missing_numerator_counts_as_zero(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(10)
        (status,) = SLOTracker([_burn()]).evaluate(registry)
        assert not status.no_data
        assert status.value == 0.0

    def test_label_filters_select_series(self):
        registry = MetricsRegistry()
        registry.counter("errors", kind="timeout").inc(4)
        registry.counter("errors", kind="cancelled").inc(40)
        registry.counter("requests").inc(100)
        objective = _burn(
            threshold=0.5,
            numerator_labels=(("kind", "timeout"),),
        )
        (status,) = SLOTracker([objective]).evaluate(registry)
        assert status.value == pytest.approx(0.04)


class TestSourceAgreement:
    """The acceptance criterion: the time-series layer, the live
    registry and a parsed Prometheus export must all yield the same
    SLO verdicts and (windowless) burn rates."""

    def _populated_registry(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 2.0, 2.0, 2.0):
            histogram.observe(value)
        registry.counter("errors").inc(2)
        registry.counter("requests").inc(40)
        return registry

    def test_sampler_agrees_with_prometheus_export(self):
        registry = self._populated_registry()
        sampler = TimeSeriesSampler(registry)
        sampler.sample(now=0.0)
        tracker = SLOTracker([
            _latency(threshold=5.0, quantile=0.99),
            _burn(threshold=0.5),
        ])
        from_sampler = tracker.evaluate(sampler)
        from_registry = tracker.evaluate(registry)
        from_text = tracker.evaluate(
            MetricsView.from_prometheus(registry.to_prometheus())
        )
        for a, b, c in zip(from_sampler, from_registry, from_text):
            assert a.value == pytest.approx(b.value)
            assert b.value == pytest.approx(c.value)
            assert a.burn == pytest.approx(c.burn)
            assert a.ok == b.ok == c.ok

    def test_prometheus_round_trip_with_escaped_labels(self):
        registry = MetricsRegistry()
        registry.counter("errors", path='a\\b"c\nd').inc(2)
        registry.counter("requests").inc(4)
        view = MetricsView.from_prometheus(registry.to_prometheus())
        assert view.total("errors", (("path", 'a\\b"c\nd'),)) == 2.0
        (status,) = SLOTracker([_burn()]).evaluate(view)
        assert status.value == pytest.approx(0.5)

    def test_from_prometheus_tolerates_foreign_lines(self):
        text = "\n".join((
            "# HELP weird who knows",
            "weird_metric{quantile=\"0.99\"} 1.5",
            "not a metric line at all",
            "requests_total 10",
        ))
        view = MetricsView.from_prometheus(text)
        assert view.total("requests_total") == 10.0


class TestGaugeExport:
    def test_statuses_mirrored_as_gauges(self):
        registry = MetricsRegistry()
        source = MetricsRegistry()
        source.counter("errors").inc(1)
        source.counter("requests").inc(10)
        tracker = SLOTracker([_burn(threshold=0.5), _latency()])
        statuses = tracker.evaluate(source)
        tracker.export_gauges(statuses, registry)
        assert registry.value("slo.ok", slo="burn") == 1.0
        assert registry.value("slo.burn", slo="burn") == pytest.approx(0.2)
        # no-data objective exports ok but neither value nor burn
        assert registry.value("slo.ok", slo="p99") == 1.0
        assert ("slo.value", (("slo", "p99"),)) not in dict(
            iter(registry)
        )
