"""Simulation-budget planning for the architecture-centric workflow.

Section 8 of the paper asks "what if offline training is too expensive?"
and answers with a per-pool-size accuracy curve.  This module turns that
question into the form an architect actually faces: *given a total
budget of S simulations, how should it be split* between offline
training (N programs x T simulations each) and the online responses
(R per new program, times the number of new programs expected)?

:func:`plan_budget` enumerates admissible splits and scores each by an
empirical accuracy model fitted from a (small) measurement run, or by
the built-in default curves calibrated on this repository's SPEC
reproduction.  The result ranks splits by expected rmae for the stated
number of future programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Default accuracy curves (rmae %, lower better) calibrated from this
#: repository's Figures 9/10/14 reproduction at 1,500 samples:
#: rmae(T, N, R) ~ base + a/T^0.5 + b/N + c/R^0.7, clipped below by the
#: irreducible idiosyncratic error.
_BASE = 4.0
_TRAINING_COEFFICIENT = 55.0
_POOL_COEFFICIENT = 28.0
_RESPONSE_COEFFICIENT = 35.0


def expected_rmae(
    training_size: int, pool_size: int, responses: int
) -> float:
    """Expected leave-one-out rmae (%) for a (T, N, R) operating point.

    A closed-form surrogate for the repository's measured sweeps; it is
    only used for *ranking* budget splits, where its monotone structure
    (more of anything helps, with diminishing returns) is what matters.
    """
    if training_size < 2 or pool_size < 1 or responses < 2:
        raise ValueError("T >= 2, N >= 1 and R >= 2 are required")
    return (
        _BASE
        + _TRAINING_COEFFICIENT / np.sqrt(training_size)
        + _POOL_COEFFICIENT / pool_size
        + _RESPONSE_COEFFICIENT / responses**0.7
    )


@dataclass(frozen=True)
class BudgetPlan:
    """One admissible budget split and its predicted quality."""

    pool_size: int
    training_size: int
    responses: int
    offline_simulations: int
    online_simulations: int
    expected_rmae: float

    @property
    def total_simulations(self) -> int:
        return self.offline_simulations + self.online_simulations


def plan_budget(
    total_simulations: int,
    new_programs: int = 1,
    max_pool_size: int = 25,
    pool_sizes: Optional[Sequence[int]] = None,
    training_sizes: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    response_counts: Sequence[int] = (8, 16, 32, 64),
    top: int = 5,
) -> List[BudgetPlan]:
    """Rank budget splits for a total simulation budget.

    Args:
        total_simulations: The budget: offline (N x T) plus online
            (R x expected number of new programs) must fit inside it.
        new_programs: How many future programs the pool must serve —
            offline cost amortises across them, which is the entire
            argument of the paper.
        max_pool_size: Cap on available training programs.
        pool_sizes: Candidate N values (default 1..max_pool_size).
        training_sizes: Candidate T values.
        response_counts: Candidate R values.
        top: Number of best plans to return.

    Returns:
        The ``top`` plans by expected rmae, best first.  Empty when no
        split fits the budget.
    """
    if total_simulations < 1:
        raise ValueError("total_simulations must be positive")
    if new_programs < 1:
        raise ValueError("new_programs must be at least 1")
    candidates_n = (
        list(pool_sizes) if pool_sizes is not None
        else list(range(1, max_pool_size + 1))
    )
    plans: List[BudgetPlan] = []
    for pool_size in candidates_n:
        for training_size in training_sizes:
            offline = pool_size * training_size
            if offline >= total_simulations:
                continue
            for responses in response_counts:
                online = responses * new_programs
                if offline + online > total_simulations:
                    continue
                plans.append(
                    BudgetPlan(
                        pool_size=pool_size,
                        training_size=training_size,
                        responses=responses,
                        offline_simulations=offline,
                        online_simulations=online,
                        expected_rmae=expected_rmae(
                            training_size, pool_size, responses
                        ),
                    )
                )
    plans.sort(key=lambda plan: plan.expected_rmae)
    return plans[:top]


def amortisation_curve(
    total_simulations: int,
    program_counts: Sequence[int] = (1, 2, 5, 10, 20, 50),
    **kwargs,
) -> List[Tuple[int, Optional[BudgetPlan]]]:
    """Best plan per expected-program count.

    Shows how the optimal split shifts as the pool must serve more
    programs under a fixed total budget: the per-program online share
    (R) is squeezed first, because the offline pool amortises while the
    responses never do — the quantitative form of the paper's
    amortisation argument."""
    curve = []
    for count in program_counts:
        plans = plan_budget(
            total_simulations, new_programs=count, top=1, **kwargs
        )
        curve.append((count, plans[0] if plans else None))
    return curve
