"""Fig. 10: architecture-centric accuracy vs response count R.

The paper fixes T = 512 and concludes R = 32 responses are enough to
characterise a new program: more responses bring no significant gain.
"""

from scale import SAMPLE_SIZE, TRAINING_SIZE

from repro.exploration import format_series, response_sweep, scale_banner
from repro.sim import Metric

PROGRAMS = ("gzip", "crafty", "parser", "applu", "swim", "mesa", "galgel",
            "art")
COUNTS = (4, 8, 16, 32, 64, 128)


def test_fig10_responses(benchmark, spec_dataset, record_artifact):
    def regenerate():
        return {
            metric: response_sweep(
                spec_dataset, metric, counts=COUNTS,
                training_size=TRAINING_SIZE, repeats=3, programs=PROGRAMS,
            )
            for metric in Metric.all()
        }

    sweeps = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 10 — architecture-centric accuracy vs responses R",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, programs=len(PROGRAMS),
            repeats=3,
        )
    ]
    for metric, sweep in sweeps.items():
        sections.append(
            f"\n({metric.value})\n"
            + format_series(
                "R",
                sweep.budgets(),
                {
                    "rmae%": [p.rmae_mean for p in sweep.points],
                    "corr": [p.correlation_mean for p in sweep.points],
                },
            )
        )
    record_artifact("fig10_responses", "\n".join(sections))

    for metric, sweep in sweeps.items():
        by_budget = {p.budget: p for p in sweep.points}
        # R = 32 beats tiny response sets...
        assert by_budget[32].rmae_mean < by_budget[4].rmae_mean
        # ...and going to 128 responses gains comparatively little.
        assert by_budget[128].rmae_mean > 0.45 * by_budget[32].rmae_mean
        # Correlation at the paper's operating point is high.
        if metric in (Metric.CYCLES, Metric.ENERGY):
            assert by_budget[32].correlation_mean > 0.85
