"""Fig. 3: parameter-value frequencies in the best/worst 1% for energy."""

from bench_fig02_extremes_cycles import _render
from scale import SAMPLE_SIZE

from repro.analysis import extreme_frequencies
from repro.exploration import scale_banner
from repro.sim import Metric


def test_fig03_extremes_energy(benchmark, spec_dataset, record_artifact):
    def regenerate():
        best = extreme_frequencies(spec_dataset, Metric.ENERGY, "best")
        worst = extreme_frequencies(spec_dataset, Metric.ENERGY, "worst")
        return best, worst

    best, worst = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    banner = scale_banner(
        "Fig 3 — parameter frequencies in best/worst 1% (energy)",
        samples=SAMPLE_SIZE, tail="1%",
    )
    text = (
        f"{banner}\n\n(a-f) best 1%\n{_render(best)}\n\n"
        f"(g-l) worst 1%\n{_render(worst)}"
    )
    record_artifact("fig03_extremes_energy", text)

    # Section 3.4: worst energy = wide pipeline + small RF + large L2;
    # best energy = narrow pipeline + few read ports + small L2.
    assert worst.top_value("l2cache_kb")[0] == 4096
    assert worst.top_value("rf_size")[0] == 40
    assert worst.top_value("width")[0] == 8
    assert best.lift("width", 2) > 3.0
    small_l2 = (best.frequencies["l2cache_kb"][256]
                + best.frequencies["l2cache_kb"][512])
    assert small_l2 > best.frequencies["l2cache_kb"][4096]
