"""Analytic branch prediction model.

Combines a workload's :class:`~repro.workloads.profile.BranchBehaviour`
with a machine's predictor sizing into the quantities the interval model
charges: the misprediction rate of the sized gshare, the BTB miss rate
for taken branches, and the front-end bubble each costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.profile import BranchBehaviour


@dataclass(frozen=True)
class BranchPenalties:
    """Per-instruction branch cost components (cycles and rates)."""

    mispredict_rate: np.ndarray
    btb_miss_rate: np.ndarray
    mispredicts_per_instruction: np.ndarray
    btb_bubbles_per_instruction: np.ndarray


def branch_penalties(
    behaviour: BranchBehaviour,
    branch_fraction: float,
    gshare_entries,
    btb_entries,
) -> BranchPenalties:
    """Evaluate the branch cost model for (batches of) predictor sizes.

    Args:
        behaviour: The program's branch-predictability model.
        branch_fraction: Fraction of instructions that are branches.
        gshare_entries: Scalar or array of gshare table sizes.
        btb_entries: Scalar or array of BTB sizes.
    """
    if not 0.0 <= branch_fraction < 1.0:
        raise ValueError("branch_fraction must be a probability")
    mispredict = np.asarray(
        behaviour.mispredict_rate(gshare_entries), dtype=float
    )
    btb_miss = np.asarray(behaviour.btb_miss_rate(btb_entries), dtype=float)
    return BranchPenalties(
        mispredict_rate=mispredict,
        btb_miss_rate=btb_miss,
        mispredicts_per_instruction=branch_fraction * mispredict,
        btb_bubbles_per_instruction=(
            branch_fraction * behaviour.taken_fraction * btb_miss
        ),
    )
