"""Sampling the legal design space.

The paper uses uniform random sampling to draw 3,000 legal configurations
per benchmark (Section 3.3); the predictors' training sets (``T``
simulations per training program) and the responses from a new program
(``R`` simulations) are drawn the same way.  Sampling is rejection-based:
draw uniformly from the raw grid cross product, keep points that satisfy
the legality constraints.  Because the legal fraction is about 30 percent
this terminates quickly, and rejection preserves uniformity over the
legal subspace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .configuration import Configuration
from .space import DesignSpace


def _rng(seed: Optional[int] | np.random.Generator) -> np.random.Generator:
    """Coerce an int seed or a Generator into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def sample_configurations(
    space: DesignSpace,
    count: int,
    seed: Optional[int] | np.random.Generator = None,
    unique: bool = True,
) -> List[Configuration]:
    """Draw ``count`` legal configurations uniformly at random.

    Args:
        space: The design space to sample from.
        count: Number of configurations to return.
        seed: Integer seed or numpy Generator; ``None`` for entropy.
        unique: When true (the default) the returned configurations are
            distinct, matching the paper's protocol of 3,000 distinct
            sampled architectures.

    Returns:
        A list of ``count`` legal configurations.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = _rng(seed)
    grids = [parameter.values for parameter in space.parameters]
    names = [parameter.name for parameter in space.parameters]
    chosen: List[Configuration] = []
    seen = set()
    # Draw in vectorised batches; rejection keeps the legal subset.
    batch = max(64, 4 * count)
    while len(chosen) < count:
        columns = {
            name: rng.choice(grid, size=batch)
            for name, grid in zip(names, grids)
        }
        for i in range(batch):
            config = Configuration(
                **{name: int(columns[name][i]) for name in names}
            )
            if not space.satisfies_constraints(config):
                continue
            if unique:
                if config in seen:
                    continue
                seen.add(config)
            chosen.append(config)
            if len(chosen) == count:
                break
    return chosen


def split_responses(
    configs: Sequence[Configuration],
    response_count: int,
    seed: Optional[int] | np.random.Generator = None,
) -> tuple[List[Configuration], List[Configuration]]:
    """Split sampled configurations into (responses, held-out rest).

    The paper characterises a new program by simulating ``R`` of the
    sampled configurations (the *responses*) and validates predictions on
    the remaining sampled points.

    Returns:
        ``(responses, held_out)`` — disjoint, covering ``configs``.
    """
    if response_count < 0 or response_count > len(configs):
        raise ValueError(
            f"response_count must be in [0, {len(configs)}], "
            f"got {response_count}"
        )
    rng = _rng(seed)
    order = rng.permutation(len(configs))
    response_indices = set(order[:response_count].tolist())
    responses = [c for i, c in enumerate(configs) if i in response_indices]
    held_out = [c for i, c in enumerate(configs) if i not in response_indices]
    return responses, held_out


def stratified_sample(
    space: DesignSpace,
    count: int,
    parameter_name: str,
    seed: Optional[int] | np.random.Generator = None,
) -> List[Configuration]:
    """Sample stratified on one parameter's grid.

    Each value of ``parameter_name`` receives an (almost) equal share of
    the draws.  Used by the response-selection ablation bench.
    """
    rng = _rng(seed)
    parameter = space.parameter(parameter_name)
    per_value = [count // parameter.cardinality] * parameter.cardinality
    for i in range(count % parameter.cardinality):
        per_value[i] += 1
    result: List[Configuration] = []
    for value, quota in zip(parameter.values, per_value):
        picked = 0
        while picked < quota:
            candidate = sample_configurations(space, 1, rng, unique=False)[0]
            pinned = candidate.replace(**{parameter_name: value})
            if space.satisfies_constraints(pinned):
                result.append(pinned)
                picked += 1
    return result


def corner_biased_sample(
    space: DesignSpace,
    count: int,
    seed: Optional[int] | np.random.Generator = None,
    corner_fraction: float = 0.5,
) -> List[Configuration]:
    """Sample biased towards the corners of each parameter's grid.

    With probability ``corner_fraction`` a parameter draws its extreme
    values, otherwise any grid value.  Used by the response-selection
    ablation to test whether extreme responses characterise a program
    better than uniform ones.
    """
    if not 0.0 <= corner_fraction <= 1.0:
        raise ValueError("corner_fraction must be in [0, 1]")
    rng = _rng(seed)
    result: List[Configuration] = []
    names = [p.name for p in space.parameters]
    while len(result) < count:
        values = {}
        for parameter in space.parameters:
            if rng.random() < corner_fraction:
                values[parameter.name] = int(
                    rng.choice((parameter.minimum, parameter.maximum))
                )
            else:
                values[parameter.name] = int(rng.choice(parameter.values))
        config = Configuration(**{name: values[name] for name in names})
        if space.satisfies_constraints(config):
            result.append(config)
    return result
