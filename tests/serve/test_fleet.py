"""Multi-process fleet tests: shared port, merged telemetry, drain."""

from __future__ import annotations

import socket

import pytest

from repro.obs import scoped_registry
from repro.serve import PredictionClient, ServingFleet

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="the serving fleet needs the fork start method",
)


def _counter_total(registry, name, **labels):
    wanted = set(labels.items())
    total = 0.0
    for metric in registry.snapshot()["metrics"]:
        if metric["name"] != name:
            continue
        if wanted <= {tuple(pair) for pair in metric["labels"]}:
            total += metric["state"]
    return total


@pytest.fixture()
def fleet(fitted_predictor):
    active = []

    def _start(workers=2, **kwargs) -> ServingFleet:
        built = ServingFleet(fitted_predictor, workers, port=0, **kwargs)
        built.start(timeout=90.0)
        active.append(built)
        return built

    yield _start
    for built in active:
        built.stop(timeout=30.0)


class TestFleet:
    def test_both_workers_answer_one_port(self, fleet):
        with scoped_registry():
            started = fleet(workers=2)
            pids = set()
            for _ in range(64):
                # A fresh connection each time so the kernel gets a
                # fresh balancing decision.
                with PredictionClient(
                    "127.0.0.1", started.port, timeout=10.0
                ) as client:
                    health = client.healthz()
                    assert health["status"] == "ok"
                    pids.add(health["pid"])
                if len(pids) == 2:
                    break
            assert len(pids) == 2

    def test_merged_metrics_match_client_counts(self, fleet,
                                                holdout_configs):
        issued = 12
        with scoped_registry() as registry:
            started = fleet(workers=2)
            for index in range(issued):
                with PredictionClient(
                    "127.0.0.1", started.port, timeout=10.0
                ) as client:
                    client.predict_one(holdout_configs[index % 4])
            report = started.stop(timeout=30.0)
            assert report.exit_codes == [0, 0]
            assert report.clean
            # The parent-side merge sees exactly the requests issued:
            # `issued` predicts, each on its own connection.
            predicts = _counter_total(
                registry, "serve.requests", status="200"
            )
            assert predicts == issued

    def test_served_predictions_match_direct(self, fleet,
                                             fitted_predictor,
                                             holdout_configs):
        direct = float(
            fitted_predictor.predict_invariant(holdout_configs[:1])[0]
        )
        with scoped_registry():
            started = fleet(workers=2)
            served = set()
            for _ in range(8):
                with PredictionClient(
                    "127.0.0.1", started.port, timeout=10.0
                ) as client:
                    served.add(client.predict_one(holdout_configs[0]))
        # Whichever worker answered, the bits match the in-process
        # predictor — the exactness contract survives forking.
        assert served == {direct}

    def test_shared_socket_mode(self, fleet):
        with scoped_registry():
            started = fleet(workers=2, mode="shared-socket")
            assert started.mode == "shared-socket"
            with PredictionClient(
                "127.0.0.1", started.port, timeout=10.0
            ) as client:
                assert client.healthz()["status"] == "ok"
            report = started.stop(timeout=30.0)
        assert report.exit_codes == [0, 0]

    def test_idle_fleet_drains_clean(self, fleet):
        with scoped_registry() as registry:
            started = fleet(workers=2)
            report = started.stop(timeout=30.0)
            assert report.exit_codes == [0, 0]
            assert len(report.snapshots) == 2
            assert all(snap is not None for snap in report.snapshots)
            # The roster gauges land in the parent registry.
            names = {
                metric["name"]
                for metric in registry.snapshot()["metrics"]
            }
        assert "serve.fleet.workers" in names

    def test_stop_is_idempotent(self, fleet):
        with scoped_registry():
            started = fleet(workers=1)
            first = started.stop(timeout=30.0)
            second = started.stop(timeout=30.0)
        assert first is second

    def test_worker_validation(self, fitted_predictor):
        with pytest.raises(ValueError, match="at least one worker"):
            ServingFleet(fitted_predictor, 0)
        with pytest.raises(ValueError, match="unknown fleet mode"):
            ServingFleet(fitted_predictor, 1, mode="round-robin")

    @pytest.mark.skipif(
        not hasattr(socket, "SO_REUSEPORT"),
        reason="SO_REUSEPORT unavailable on this platform",
    )
    def test_reuse_port_mode_is_default_here(self, fitted_predictor):
        built = ServingFleet(fitted_predictor, 1)
        assert built.mode == "reuse-port"
