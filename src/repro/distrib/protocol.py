"""The length-prefixed, versioned, checksummed JSON wire protocol.

Every message between a coordinator and a worker is one *frame*::

    [4-byte big-endian length][UTF-8 JSON envelope]

and every envelope carries the same three keys::

    {"v": <protocol version>, "sha256": <hex digest>, "payload": {...}}

The digest covers the canonical (sorted-keys, ``allow_nan=False``) JSON
encoding of the payload, so a frame damaged anywhere between the two
``sha256`` computations — a truncated send, a proxy mangling bytes, a
version writing a different canonical form — is rejected as a
:class:`ProtocolError` instead of being half-trusted.  The protocol
version is checked on *every* frame, not just the handshake: a
coordinator and worker from incompatible releases fail loudly on the
first message rather than corrupting a campaign three hours in.
Versions from :data:`MIN_PROTOCOL_VERSION` through
:data:`PROTOCOL_VERSION` are accepted — additive vocabulary (v3's
optional trace context and heartbeat span batches) must not strand a
mixed fleet, so an old peer's frames still decode and its payloads
simply lack the new optional keys ("decode to none").

Payloads are dicts with a ``"type"`` key; the coordinator and worker
modules define the message vocabulary.  This module owns only framing,
integrity and size limits.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import struct
from typing import Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "read_message",
    "write_message",
]

#: Bumped on any change to the envelope or message vocabulary.
#: 2: elastic fleets — HELLO capabilities, task bundles, multi-lease
#: heartbeats, release, status_request.
#: 3: observability — optional trace context on task payloads,
#: optional span batches on heartbeats, series/SLO status fields.
PROTOCOL_VERSION = 3

#: Oldest version this side still decodes.  v3 only *adds* optional
#: payload keys, so v2 frames remain fully meaningful: a v2 worker's
#: spans simply carry no trace context and its heartbeats no spans.
MIN_PROTOCOL_VERSION = 2

#: Hard ceiling on one frame — a 128-configuration chunk of four
#: float64 arrays is ~20 kB of JSON; 32 MiB leaves three orders of
#: magnitude of headroom while still catching a garbage length prefix.
MAX_FRAME_BYTES = 32 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A frame violated the protocol (size, version, checksum, shape)."""


def _canonical(payload: Dict) -> bytes:
    """The byte string the envelope digest is computed over."""
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except ValueError as error:
        raise ProtocolError(
            f"payload is not wire-encodable JSON: {error}"
        ) from error


def encode_frame(payload: Dict) -> bytes:
    """One complete frame (length prefix included) for ``payload``."""
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError('a payload must be a dict with a "type" key')
    body = _canonical(payload)
    envelope = json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "sha256": hashlib.sha256(body).hexdigest(),
            "payload": payload,
        },
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")
    if len(envelope) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(envelope)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(envelope)) + envelope


def decode_frame(envelope: bytes) -> Dict:
    """Verify and unwrap one envelope (without its length prefix)."""
    try:
        message = json.loads(envelope.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("frame envelope is not an object")
    version = message.get("v")
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or not MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION
    ):
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side accepts {MIN_PROTOCOL_VERSION}.."
            f"{PROTOCOL_VERSION} — upgrade the older of "
            "coordinator/worker"
        )
    payload = message.get("payload")
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError('frame payload must be a dict with a "type"')
    recorded = message.get("sha256")
    if hashlib.sha256(_canonical(payload)).hexdigest() != recorded:
        raise ProtocolError(
            "frame failed its payload checksum (corrupted in transit)"
        )
    return payload


async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict]:
    """Read one frame; ``None`` on a cleanly closed connection.

    Raises:
        ProtocolError: on an oversized, truncated or corrupt frame.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # peer closed between frames: a clean goodbye
        raise ProtocolError("connection dropped mid-length-prefix") from error
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        envelope = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection dropped mid-frame ({len(error.partial)} of "
            f"{length} bytes)"
        ) from error
    return decode_frame(envelope)


async def write_message(
    writer: asyncio.StreamWriter, payload: Dict
) -> None:
    """Frame and send one payload, draining the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()
