"""Tests for rmae and the correlation coefficient."""

import numpy as np
import pytest

from repro.ml import correlation, rmae


class TestRmae:
    def test_perfect_prediction_is_zero(self):
        actual = np.array([1.0, 2.0, 3.0])
        assert rmae(actual, actual) == 0.0

    def test_papers_definition(self):
        """rmae of 100 percent = predictions double the actual values."""
        actual = np.array([1.0, 2.0, 4.0])
        assert rmae(2 * actual, actual) == pytest.approx(100.0)

    def test_symmetric_under_sign_of_error(self):
        actual = np.array([10.0, 10.0])
        over = rmae(np.array([11.0, 11.0]), actual)
        under = rmae(np.array([9.0, 9.0]), actual)
        assert over == pytest.approx(under)

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            rmae(np.array([1.0]), np.array([0.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmae(np.array([]), np.array([]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmae(np.ones(3), np.ones(4))


class TestCorrelation:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert correlation(2 * x + 1, x) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert correlation(-x, x) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=100)
        b = 0.5 * a + rng.normal(size=100)
        assert correlation(a, b) == pytest.approx(
            np.corrcoef(a, b)[0, 1], abs=1e-9
        )

    def test_scale_invariant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        assert correlation(a, b) == pytest.approx(
            correlation(1000 * a + 5, b)
        )

    def test_constant_input_returns_zero(self):
        assert correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            correlation(np.array([1.0]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            correlation(np.ones(3), np.ones(4))

    def test_bounded(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            a = rng.normal(size=30)
            b = rng.normal(size=30)
            assert -1.0 <= correlation(a, b) <= 1.0
