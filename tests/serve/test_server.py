"""Tests for the HTTP inference server.

Covers the acceptance criteria head-on: 64+ concurrent in-flight
requests with zero dropped responses, served predictions bit-identical
to direct ``predict_invariant`` calls, 503 backpressure under
saturation, and graceful drain.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import PredictionClient, ServerError


class TestEndpoints:
    def test_healthz(self, harness):
        server = harness(model_info={"name": "m", "version": 3})
        with server.client() as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["model"]["name"] == "m"
        assert health["model"]["version"] == 3
        assert health["model"]["metric"] == "cycles"

    def test_metrics_prometheus_text(self, harness, holdout_configs):
        server = harness()
        with server.client() as client:
            client.predict(holdout_configs[:3])
            text = client.metrics_text()
        assert '# TYPE serve_requests counter' in text
        assert 'serve_requests{status="200"}' in text
        assert "serve_cache_misses" in text
        assert "serve_batch_seconds" in text

    def test_unknown_path_404(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client._request("POST", "/healthz", body="{}")
        assert excinfo.value.status == 405


class TestPredict:
    def test_bit_identical_to_direct_calls(
        self, harness, fitted_predictor, holdout_configs
    ):
        """The acceptance bar: served == direct, bit for bit."""
        server = harness()
        batch = holdout_configs[:32]
        with server.client() as client:
            served = client.predict(batch)
        direct = fitted_predictor.predict_invariant(batch)
        assert np.array_equal(np.array(served), direct)

    def test_partial_dict_uses_baseline(
        self, harness, fitted_predictor, space
    ):
        server = harness()
        config = space.baseline.replace(width=4)
        with server.client() as client:
            value = client.predict_one({"width": 4})
        assert value == fitted_predictor.predict_invariant([config])[0]

    def test_single_config_shorthand(self, harness, holdout_configs):
        server = harness()
        body = json.dumps({"config": list(holdout_configs[0].values())})
        with server.client() as client:
            payload = client._request("POST", "/predict", body=body)
        assert len(payload["predictions"]) == 1

    def test_repeat_requests_are_cached_and_identical(
        self, harness, holdout_configs
    ):
        server = harness()
        batch = holdout_configs[:8]
        with server.client() as client:
            first = client.predict(batch)
            second = client.predict(batch)
            text = client.metrics_text()
        assert first == second
        hits = [
            line for line in text.splitlines()
            if line.startswith("serve_cache_hits")
        ]
        assert hits and float(hits[0].split()[-1]) >= len(batch)

    def test_bad_json_400(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client._request("POST", "/predict", body="{nope")
        assert excinfo.value.status == 400

    def test_unknown_parameter_400(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client.predict([{"warp_drive": 9}])
        assert excinfo.value.status == 400
        assert "warp_drive" in excinfo.value.message

    def test_wrong_length_list_400(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client.predict([[1, 2, 3]])
        assert excinfo.value.status == 400

    def test_illegal_configuration_400(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client.predict([{"width": 7}])  # not a legal width
        assert excinfo.value.status == 400

    def test_empty_configs_400(self, harness):
        server = harness()
        with server.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client._request(
                    "POST", "/predict", body='{"configs": []}'
                )
        assert excinfo.value.status == 400


class TestConcurrency:
    def test_64_concurrent_clients_zero_drops(
        self, harness, fitted_predictor, holdout_configs
    ):
        """64 in-flight requests, every one answered, every one exact."""
        server = harness(max_batch=32, queue_limit=4096)
        clients = 64
        configs = [
            holdout_configs[i % len(holdout_configs)]
            for i in range(clients)
        ]
        direct = fitted_predictor.predict_invariant(configs)
        barrier = threading.Barrier(clients)

        def one_request(index):
            with PredictionClient(
                "127.0.0.1", server.port, timeout=60
            ) as client:
                barrier.wait(timeout=60)  # maximise true concurrency
                return client.predict_one(configs[index])

        with ThreadPoolExecutor(max_workers=clients) as pool:
            values = list(pool.map(one_request, range(clients)))

        assert len(values) == clients
        assert np.array_equal(np.array(values), direct)

    def test_mixed_batch_sizes_concurrently(
        self, harness, fitted_predictor, holdout_configs
    ):
        server = harness()
        slices = [
            holdout_configs[:5], holdout_configs[5:7],
            holdout_configs[7:20], holdout_configs[20:21],
        ]

        def one_batch(batch):
            with PredictionClient("127.0.0.1", server.port) as client:
                return client.predict(batch)

        with ThreadPoolExecutor(max_workers=len(slices)) as pool:
            answers = list(pool.map(one_batch, slices))
        for batch, answer in zip(slices, answers):
            assert np.array_equal(
                np.array(answer), fitted_predictor.predict_invariant(batch)
            )


class TestBackpressure:
    def test_saturated_server_returns_503(self, harness, holdout_configs):
        server = harness(max_batch=1, queue_limit=1, batch_window=0.0)
        # Stall the forward pass so the queue cannot drain.
        release = threading.Event()
        original = server.server.batcher._forward

        def stalled(configs):
            release.wait(timeout=30)
            return original(configs)

        server.server.batcher._forward = stalled
        results = []

        def one_request(index):
            with PredictionClient(
                "127.0.0.1", server.port, timeout=60
            ) as client:
                try:
                    return ("ok", client.predict_one(holdout_configs[index]))
                except ServerError as error:
                    return ("error", error)

        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(one_request, i) for i in range(8)
                ]
                import time
                time.sleep(1.0)  # let requests pile into the queue
                release.set()
                results = [f.result() for f in futures]
        finally:
            release.set()

        statuses = [kind for kind, _ in results]
        rejected = [
            payload for kind, payload in results if kind == "error"
        ]
        assert "ok" in statuses  # the stalled ones complete after release
        assert rejected, "expected at least one 503 under saturation"
        for error in rejected:
            assert error.status == 503
            assert error.retry_after is not None


class TestDrain:
    def test_drain_answers_inflight_then_refuses(
        self, harness, holdout_configs
    ):
        server = harness()
        with server.client() as client:
            assert client.predict(holdout_configs[:4])
        server.drain()
        # New connections are refused once the socket is down.
        with pytest.raises((ServerError, ConnectionError, OSError)):
            with PredictionClient(
                "127.0.0.1", server.port, timeout=5
            ) as client:
                client.predict_one(holdout_configs[0])

    def test_drain_is_idempotent(self, harness):
        server = harness()
        server.drain()
        server.drain()
