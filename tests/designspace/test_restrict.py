"""Tests for design-space restriction."""

import pytest

from repro.designspace import (
    DesignSpace,
    embedded_space,
    restrict,
    sample_configurations,
    server_space,
)


class TestRestrict:
    def test_grids_clipped(self, space):
        narrow = restrict(space, width=(2, 4))
        assert narrow.parameter("width").values == (2, 4)

    def test_other_parameters_untouched(self, space):
        narrow = restrict(space, width=(2, 4))
        assert narrow.parameter("rob_size").values == \
            space.parameter("rob_size").values

    def test_legal_size_shrinks(self, space):
        narrow = restrict(space, width=(2, 4), l2cache_kb=(256, 1024))
        assert narrow.legal_size < space.legal_size

    def test_baseline_snaps_into_window(self, space):
        narrow = restrict(space, width=(6, 8))
        assert narrow.baseline.width == 6

    def test_baseline_kept_when_inside(self, space):
        narrow = restrict(space, width=(2, 8))
        assert narrow.baseline.width == space.baseline.width

    def test_unknown_parameter_rejected(self, space):
        with pytest.raises(KeyError):
            restrict(space, cache_levels=(1, 2))

    def test_empty_window_rejected(self, space):
        with pytest.raises(ValueError, match="no grid values"):
            restrict(space, width=(3, 3))

    def test_inverted_window_rejected(self, space):
        with pytest.raises(ValueError, match="exceeds"):
            restrict(space, width=(8, 2))

    def test_sampling_respects_restriction(self, space):
        narrow = restrict(space, width=(2, 2), l2cache_kb=(256, 512))
        for config in sample_configurations(narrow, 30, seed=1):
            assert config.width == 2
            assert config.l2cache_kb in (256, 512)
            assert narrow.is_legal(config)


class TestPresetSpaces:
    def test_embedded_space_is_narrow(self):
        embedded = embedded_space()
        assert embedded.parameter("width").maximum == 4
        assert embedded.parameter("l2cache_kb").maximum == 1024
        assert embedded.legal_size > 0

    def test_server_space_is_wide(self):
        server = server_space()
        assert server.parameter("width").minimum == 4
        assert server.parameter("l2cache_kb").minimum == 1024

    def test_preset_baselines_legal(self):
        for preset in (embedded_space(), server_space()):
            assert preset.is_legal(preset.baseline)

    def test_presets_are_disjoint_in_l2(self):
        embedded = embedded_space()
        server = server_space()
        assert (embedded.parameter("l2cache_kb").maximum
                <= server.parameter("l2cache_kb").minimum)
