"""Ablation A3: how should the 32 responses be chosen?

The paper selects responses by uniform random sampling.  This ablation
compares that policy against stratified sampling (balanced over one
influential parameter), corner-biased sampling (over-weighting grid
extremes) and active selection (maximum disagreement among the offline
models, our beyond-paper extension in :mod:`repro.core.active`), all at
R = 32 with the same offline pool.
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import ArchitectureCentricPredictor, select_responses
from repro.designspace import corner_biased_sample, stratified_sample
from repro.exploration import format_table, scale_banner
from repro.ml import correlation, rmae
from repro.sim import Metric

PROGRAMS = ("gzip", "applu", "swim", "art")


def test_ablation_response_selection(benchmark, spec_dataset, pools,
                                     record_artifact):
    pool = pools(Metric.CYCLES)
    space = spec_dataset.simulator.space
    simulator = spec_dataset.simulator

    def evaluate(program, response_configs):
        profile = spec_dataset.suite[program]
        response_values = simulator.simulate_batch(
            profile, response_configs
        ).cycles
        predictor = ArchitectureCentricPredictor(
            pool.models(exclude=[program])
        )
        predictor.fit_responses(response_configs, response_values)
        actual = spec_dataset.values(program, Metric.CYCLES)
        predictions = predictor.predict(list(spec_dataset.configs))
        return rmae(predictions, actual), correlation(predictions, actual)

    def run():
        per_policy = {}
        for program in PROGRAMS:
            uniform_idx, _ = spec_dataset.split_indices(RESPONSES, seed=616)
            models = pool.models(exclude=[program])
            active_idx = select_responses(
                models, list(spec_dataset.configs[:500]), RESPONSES,
                seed=616,
            )
            policies = {
                "uniform-random": spec_dataset.subset_configs(uniform_idx),
                "stratified(rf_size)": stratified_sample(
                    space, RESPONSES, "rf_size", seed=616
                ),
                "corner-biased": corner_biased_sample(
                    space, RESPONSES, seed=616
                ),
                "active-disagreement": spec_dataset.subset_configs(
                    active_idx
                ),
            }
            for name, configs in policies.items():
                per_policy.setdefault(name, []).append(
                    evaluate(program, configs)
                )
        return per_policy

    per_policy = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    summary = {}
    for policy, scores in per_policy.items():
        mean_rmae = float(np.mean([s[0] for s in scores]))
        mean_corr = float(np.mean([s[1] for s in scores]))
        summary[policy] = (mean_rmae, mean_corr)
        rows.append((policy, round(mean_rmae, 1), round(mean_corr, 3)))
    text = (
        scale_banner(
            "Ablation A3 — response-selection policies",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            programs=len(PROGRAMS),
        )
        + "\n"
        + format_table(("policy", "rmae%", "corr"), rows)
    )
    record_artifact("ablation_response_selection", text)

    # Every policy must yield a usable predictor; the paper's uniform
    # random choice should be competitive with the engineered ones
    # (within a factor of 1.5 of the best).
    best = min(value[0] for value in summary.values())
    assert summary["uniform-random"][0] < 1.5 * best
    for policy, (error, corr) in summary.items():
        assert corr > 0.7, policy
