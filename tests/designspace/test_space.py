"""Tests for the 13-parameter design space (Table 1)."""

import numpy as np
import pytest

from repro.designspace import Configuration, DesignSpace
from repro.designspace.configuration import PARAMETER_ORDER


class TestSize:
    def test_thirteen_parameters(self, space):
        assert space.dimensions == 13
        assert tuple(p.name for p in space.parameters) == PARAMETER_ORDER

    def test_raw_size_is_the_papers_63_billion(self, space):
        assert space.raw_size == 62_668_800_000

    def test_legal_size_is_the_papers_18_billion(self, space):
        # The paper reports "18 billion" after filtering.
        assert space.legal_size == 18_952_704_000

    def test_legal_smaller_than_raw(self, space):
        assert space.legal_size < space.raw_size

    def test_legal_count_matches_sampling_rate(self, space):
        """The factored count must agree with rejection sampling."""
        rng = np.random.default_rng(0)
        grids = [p.values for p in space.parameters]
        names = [p.name for p in space.parameters]
        trials = 6000
        legal = 0
        for _ in range(trials):
            config = Configuration(
                **{
                    name: int(rng.choice(grid))
                    for name, grid in zip(names, grids)
                }
            )
            if space.satisfies_constraints(config):
                legal += 1
        expected = space.legal_size / space.raw_size
        observed = legal / trials
        assert abs(observed - expected) < 0.03


class TestBaseline:
    def test_baseline_is_legal(self, space):
        assert space.is_legal(space.baseline)

    def test_baseline_encodes_to_the_papers_vector(self, space):
        encoded = space.encode(space.baseline)
        expected = [4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2]
        assert np.allclose(encoded, expected)


class TestConstraints:
    def test_rob_smaller_than_iq_is_illegal(self, space):
        config = space.baseline.replace(rob_size=32, iq_size=64)
        assert not space.satisfies_constraints(config)

    def test_rob_smaller_than_lsq_is_illegal(self, space):
        config = space.baseline.replace(rob_size=32, lsq_size=64)
        assert not space.satisfies_constraints(config)

    def test_excess_read_ports_are_illegal(self, space):
        config = space.baseline.replace(width=2, rf_read_ports=8)
        assert not space.satisfies_constraints(config)

    def test_excess_write_ports_are_illegal(self, space):
        config = space.baseline.replace(width=2, rf_write_ports=4)
        assert not space.satisfies_constraints(config)

    def test_undersized_l2_is_illegal(self, space):
        config = space.baseline.replace(dcache_kb=128, l2cache_kb=256)
        assert not space.satisfies_constraints(config)

    def test_off_grid_value_is_not_legal(self, space):
        config = space.baseline.replace(rob_size=100)
        assert not space.is_legal(config)

    def test_validate_names_the_offending_parameter(self, space):
        config = space.baseline.replace(rob_size=100)
        with pytest.raises(ValueError, match="rob_size"):
            space.validate(config)

    def test_validate_accepts_baseline(self, space):
        space.validate(space.baseline)  # must not raise


class TestEncoding:
    def test_encode_decode_roundtrip(self, space, configs):
        for config in configs[:50]:
            assert space.decode(space.encode(config)) == config

    def test_encode_many_shape(self, space, configs):
        matrix = space.encode_many(list(configs[:10]))
        assert matrix.shape == (10, 13)

    def test_encode_many_empty(self, space):
        assert space.encode_many([]).shape == (0, 13)

    def test_decode_wrong_length_rejected(self, space):
        with pytest.raises(ValueError, match="13"):
            space.decode([1.0, 2.0])

    def test_feature_bounds_cover_encodings(self, space, configs):
        lo, hi = space.feature_bounds()
        matrix = space.encode_many(list(configs[:100]))
        assert np.all(matrix >= lo - 1e-9)
        assert np.all(matrix <= hi + 1e-9)


class TestNeighbours:
    def test_neighbours_are_legal(self, space):
        for neighbour in space.neighbours(space.baseline):
            assert space.is_legal(neighbour)

    def test_neighbours_differ_in_one_parameter(self, space):
        base = space.baseline.values()
        for neighbour in space.neighbours(space.baseline):
            differences = sum(
                1 for a, b in zip(base, neighbour.values()) if a != b
            )
            assert differences == 1

    def test_parameter_lookup_unknown_name(self, space):
        with pytest.raises(KeyError, match="unknown parameter"):
            space.parameter("nonsense")


class TestEnumeration:
    def test_full_space_refused(self, space):
        with pytest.raises(ValueError, match="restrict"):
            next(space.enumerate())

    def test_restricted_space_enumerates_exactly(self, space):
        from repro.designspace import restrict
        tiny = restrict(
            space,
            width=(2, 2), rob_size=(32, 48), iq_size=(8, 32),
            lsq_size=(8, 32), rf_size=(40, 48), rf_read_ports=(2, 4),
            rf_write_ports=(1, 2), gshare_size=(1024, 2048),
            btb_size=(1024, 1024), max_branches=(8, 8),
            icache_kb=(8, 8), dcache_kb=(8, 8), l2cache_kb=(256, 256),
        )
        configs = list(tiny.enumerate())
        assert len(configs) == tiny.legal_size
        assert len(set(configs)) == len(configs)
        assert all(tiny.is_legal(c) for c in configs)
