"""Datasets, experiment runners and reporting.

Public surface:

* :class:`DesignSpaceDataset` — simulate-once, reuse-everywhere data.
* One runner per figure of the paper (see :mod:`.experiments`).
* ASCII reporting helpers used by the benchmark harnesses.
"""

from .budget import BudgetPlan, amortisation_curve, expected_rmae, plan_budget
from .calibration import AccuracyModel, fit_accuracy_model, measure_operating_points
from .dataset import DesignSpaceDataset
from .experiments import (
    ComparisonResult,
    MotivationResult,
    SweepPoint,
    SweepResult,
    comparison_sweep,
    drift_sweep,
    mibench_experiment,
    motivation_experiment,
    noise_sweep,
    response_sweep,
    spec_error_experiment,
    training_programs_sweep,
    training_size_sweep,
)
from .persistence import load_dataset, save_dataset
from .reporting import (
    ascii_bar_chart,
    format_series,
    format_table,
    scale_banner,
)
# The search strategies moved to repro.search (PR 9); re-exported here
# so historical imports keep working.  `.search` itself is now a
# deprecation shim over repro.search.strategies.
from repro.search.strategies import (
    RankedCandidate,
    SearchResult,
    TradeOffPoint,
    dominated_fraction,
    hill_climb,
    pareto_front,
    predicted_best,
    simulated_annealing,
)

__all__ = [
    "AccuracyModel",
    "BudgetPlan",
    "ComparisonResult",
    "DesignSpaceDataset",
    "MotivationResult",
    "SweepPoint",
    "SweepResult",
    "RankedCandidate",
    "SearchResult",
    "TradeOffPoint",
    "amortisation_curve",
    "ascii_bar_chart",
    "comparison_sweep",
    "dominated_fraction",
    "drift_sweep",
    "expected_rmae",
    "fit_accuracy_model",
    "hill_climb",
    "load_dataset",
    "measure_operating_points",
    "pareto_front",
    "plan_budget",
    "predicted_best",
    "save_dataset",
    "format_series",
    "format_table",
    "mibench_experiment",
    "motivation_experiment",
    "noise_sweep",
    "response_sweep",
    "scale_banner",
    "simulated_annealing",
    "spec_error_experiment",
    "training_programs_sweep",
    "training_size_sweep",
]
