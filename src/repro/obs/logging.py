"""Structured logging for the reproduction — one logger tree, two formats.

Every subsystem logs through :func:`get_logger`, which hands out
children of the single ``repro`` logger.  Nothing is emitted until
:func:`configure_logging` installs a handler (the CLI does this from
``--log-level``; library users call it themselves), so importing the
package stays silent — the stdlib's null-handler convention.

Two formats are built in:

* ``human`` — ``HH:MM:SS level logger: message`` lines for terminals;
* ``json`` — one JSON object per line (timestamp, level, logger,
  message, plus any ``extra`` fields), for log shippers.

Both the level and the format are environment-controllable so that a
deep stack (pytest, a batch queue, CI) can be made chatty without
touching code::

    REPRO_LOG=debug REPRO_LOG_FORMAT=json python -m repro simulate ...
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import IO, Optional

__all__ = [
    "ROOT_LOGGER_NAME",
    "JsonFormatter",
    "HumanFormatter",
    "configure_logging",
    "get_logger",
    "resolve_level",
]

#: Root of the package's logger hierarchy; every :func:`get_logger`
#: result is this logger or one of its children.
ROOT_LOGGER_NAME = "repro"

#: Environment variable naming the default log level.
LEVEL_ENV = "REPRO_LOG"

#: Environment variable naming the default format (``human`` or ``json``).
FORMAT_ENV = "REPRO_LOG_FORMAT"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

#: Attributes of a ``LogRecord`` that are bookkeeping, not user payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Format each record as one JSON object per line.

    Standard fields are ``ts`` (epoch seconds), ``level``, ``logger``
    and ``msg``; anything passed through ``extra=`` is merged in as
    additional keys, which is how structured context (program names,
    cell ids, attempt counts) reaches a log pipeline without string
    parsing.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class HumanFormatter(logging.Formatter):
    """Compact single-line format for terminals."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )


def resolve_level(level: Optional[str] = None) -> int:
    """Resolve a level name to a stdlib constant.

    Precedence: the explicit argument, then the ``REPRO_LOG``
    environment variable, then ``warning``.

    Raises:
        ValueError: for a level name outside
            debug/info/warning/error/critical.
    """
    name = level if level is not None else os.environ.get(LEVEL_ENV)
    if name is None or not str(name).strip():
        return logging.WARNING
    try:
        return _LEVELS[str(name).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; pick one of {sorted(_LEVELS)}"
        ) from None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The package logger, or a named child of it.

    Args:
        name: Dotted suffix under ``repro`` (``"runtime.retry"`` gives
            the ``repro.runtime.retry`` logger).  ``None`` returns the
            root package logger.  A name already rooted at ``repro``
            is used as-is, so ``get_logger(__name__)`` works inside the
            package.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: Optional[str] = None,
    fmt: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the package's single stream handler.

    Idempotent: calling it again reconfigures the existing handler
    rather than stacking a second one, so tests and repeated CLI
    invocations in one process stay clean.

    Args:
        level: Level name; ``None`` defers to ``REPRO_LOG`` and then
            ``warning``.
        fmt: ``"human"`` or ``"json"``; ``None`` defers to
            ``REPRO_LOG_FORMAT`` and then ``human``.
        stream: Destination stream (defaults to ``sys.stderr`` so log
            lines never mix with CLI results on stdout).

    Returns:
        The configured root package logger.
    """
    chosen = fmt if fmt is not None else os.environ.get(FORMAT_ENV, "human")
    chosen = str(chosen).strip().lower()
    if chosen not in ("human", "json"):
        raise ValueError(
            f"unknown log format {chosen!r}; pick 'human' or 'json'"
        )
    formatter: logging.Formatter = (
        JsonFormatter() if chosen == "json" else HumanFormatter()
    )

    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(resolve_level(level))
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(formatter)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root
