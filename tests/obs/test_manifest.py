"""Run manifests: content, provenance fields, atomic writes."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_manifest,
    git_sha,
    write_manifest,
)
from repro.obs.manifest import MANIFEST_SCHEMA


class TestGitSha:
    def test_resolves_in_this_checkout(self):
        sha = git_sha()
        # the test runs from a git checkout of the repository
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


class TestBuildManifest:
    def test_core_fields(self):
        manifest = build_manifest(
            run_id="abc123", seed=7, config_checksum="deadbeef"
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["run_id"] == "abc123"
        assert manifest["seed"] == 7
        assert manifest["config_checksum"] == "deadbeef"
        assert manifest["finished"] >= manifest["started"]
        assert manifest["host"]["pid"] > 0

    def test_run_id_defaults_to_fresh_uuid(self):
        first = build_manifest()["run_id"]
        second = build_manifest()["run_id"]
        assert first != second
        assert len(first) == 32

    def test_timing_scoped_by_trace_start(self):
        tracer = Tracer()
        tracer.record("before", 1.0)
        mark = tracer.mark()
        tracer.record("simulate.chunk", 0.5)
        manifest = build_manifest(tracer=tracer, trace_start=mark)
        assert "before" not in manifest["timing"]
        assert manifest["timing"]["simulate.chunk"]["count"] == 1
        assert manifest["spans_dropped"] == 0

    def test_metrics_embedded(self):
        registry = MetricsRegistry()
        registry.counter("retry.attempts").inc(9)
        manifest = build_manifest(registry=registry)
        assert manifest["metrics"]["retry.attempts"]["value"] == 9

    def test_extra_payload_lands_under_run(self):
        manifest = build_manifest(extra={"kind": "campaign", "cells": 12})
        assert manifest["run"] == {"kind": "campaign", "cells": 12}

    def test_wall_clock_bound(self):
        manifest = build_manifest(started=100.0)
        assert manifest["started"] == 100.0
        assert manifest["finished"] > 100.0


class TestWriteManifest:
    def test_round_trips_as_json(self, tmp_path):
        manifest = build_manifest(
            run_id="r1", seed=0, registry=MetricsRegistry(), tracer=Tracer()
        )
        path = write_manifest(tmp_path / "run_manifest.json", manifest)
        loaded = json.loads(path.read_text())
        assert loaded["run_id"] == "r1"
        assert loaded["schema"] == MANIFEST_SCHEMA

    def test_atomic_no_scratch_left(self, tmp_path):
        write_manifest(tmp_path / "deep" / "m.json", build_manifest())
        assert (tmp_path / "deep" / "m.json").exists()
        assert not (tmp_path / "deep" / "m.json.tmp").exists()

    def test_overwrite_replaces(self, tmp_path):
        target = tmp_path / "m.json"
        write_manifest(target, build_manifest(run_id="one"))
        write_manifest(target, build_manifest(run_id="two"))
        assert json.loads(target.read_text())["run_id"] == "two"
