"""Fleet membership: who is in the fleet, how capable, how fast.

PR 5's fleet was implicitly homogeneous — every worker got one chunk at
a time and the coordinator never asked who it was talking to.  This
module makes the fleet explicit.  Workers measure their own capacity at
startup (:func:`detect_capabilities` — cores, memory, and a short
calibration burst that times the same numpy kernels the interval model
leans on) and advertise it in the HELLO; the coordinator folds every
join, leave, completion and rate observation into a
:class:`FleetMembership` roster that answers the three questions the
scheduler asks:

* **How much work should this worker get at once?**
  :meth:`FleetMembership.bundle_size` — capacity-weighted against the
  fleet median throughput, clamped to ``[1, max_bundle]``, and forced
  to 1 for a worker currently flagged slow.
* **Is this worker a straggler?** :meth:`FleetMembership.rebalance_scan`
  compares each worker's observed completion rate (an EWMA over the
  gaps between accepted results) against the fleet median and flags
  workers below ``slow_fraction`` of it; the coordinator stops
  bundling to flagged workers and prefers stealing their leases.
* **Who came and went?** Every join/leave/slow/recovered transition is
  appended to :attr:`FleetMembership.events` with a deterministic
  ordinal, which is what the status endpoint and the chaos harness
  report.

The roster never *schedules* anything itself — the coordinator stays
the single owner of queue and lease state — it only aggregates
observations into answers, which keeps it trivially testable without a
socket in sight.
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_logger

__all__ = [
    "WorkerCapabilities",
    "FleetMembership",
    "FleetMember",
    "detect_capabilities",
    "measure_calibration",
]

_log = get_logger(__name__)


@dataclass(frozen=True)
class WorkerCapabilities:
    """What one worker advertises at HELLO.

    Attributes:
        cores: CPU cores available to the worker process.
        memory_mb: Physical memory of the host in MiB (0 if unknown).
        throughput: Measured calibration throughput in kernel
            iterations per second (0.0 when not measured) — a relative
            number, only ever compared against other workers' values.
        simulate_suite: True when the worker's backend offers the
            program-major ``simulate_suite`` fast path; the coordinator
            then prefers filling that worker's bundles with same-chunk
            cells and doubles the bundle ceiling.  Old workers never
            send the key and decode to False — they keep getting plain
            per-cell bundles, so mixed fleets degrade gracefully.
    """

    cores: int = 1
    memory_mb: int = 0
    throughput: float = 0.0
    simulate_suite: bool = False

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if self.memory_mb < 0:
            raise ValueError("memory_mb must not be negative")
        if self.throughput < 0:
            raise ValueError("throughput must not be negative")

    def to_wire(self) -> Dict:
        """Encode for the HELLO message."""
        return {
            "cores": self.cores,
            "memory_mb": self.memory_mb,
            "throughput": self.throughput,
            "simulate_suite": self.simulate_suite,
        }

    @classmethod
    def from_wire(cls, wire: Optional[Dict]) -> "WorkerCapabilities":
        """Decode a HELLO's capabilities; tolerant of old workers.

        A pre-elastic worker sends no capabilities at all — it decodes
        to the default (one core, unmeasured), which weights it exactly
        like the old one-chunk-at-a-time scheduler did.
        """
        if not isinstance(wire, dict):
            return cls()
        return cls(
            cores=max(1, int(wire.get("cores", 1) or 1)),
            memory_mb=max(0, int(wire.get("memory_mb", 0) or 0)),
            throughput=max(0.0, float(wire.get("throughput", 0.0) or 0.0)),
            simulate_suite=bool(wire.get("simulate_suite", False)),
        )


def measure_calibration(budget_seconds: float = 0.02) -> float:
    """Throughput of a short numpy calibration burst (iterations/sec).

    Runs the same kind of vectorised float64 arithmetic the interval
    model spends its time in, for roughly ``budget_seconds``, and
    reports iterations per second.  The absolute number is meaningless;
    its *ratio* between two hosts is what capacity-weighting needs.
    """
    if budget_seconds <= 0:
        raise ValueError("budget_seconds must be positive")
    x = np.linspace(0.1, 1.0, 4096)
    iterations = 0
    start = time.perf_counter()
    deadline = start + budget_seconds
    while time.perf_counter() < deadline:
        y = np.sqrt(x) * np.log1p(x)
        y = y / (1.0 + y)
        iterations += 1
    elapsed = time.perf_counter() - start
    return iterations / max(elapsed, 1e-9)


def detect_capabilities(calibrate: bool = True) -> WorkerCapabilities:
    """Measure this host's capabilities for the HELLO message."""
    memory_mb = 0
    try:
        pages = os.sysconf("SC_PHYS_PAGES")
        page_size = os.sysconf("SC_PAGE_SIZE")
        if pages > 0 and page_size > 0:
            memory_mb = int(pages * page_size // (1024 * 1024))
    except (ValueError, OSError, AttributeError):
        pass
    return WorkerCapabilities(
        cores=os.cpu_count() or 1,
        memory_mb=memory_mb,
        throughput=measure_calibration() if calibrate else 0.0,
    )


@dataclass
class FleetMember:
    """One worker's standing in the fleet (live accounting, not wire)."""

    worker_id: str
    capabilities: WorkerCapabilities
    joined_at: float
    last_seen: float
    left_at: Optional[float] = None
    tasks_completed: int = 0
    rate: float = 0.0  # EWMA of completions per second
    slow: bool = False
    last_completed_at: Optional[float] = None

    @property
    def active(self) -> bool:
        """True while the worker is connected (has not left)."""
        return self.left_at is None


class FleetMembership:
    """The coordinator's roster of workers and their observed rates.

    Args:
        max_bundle: Ceiling on how many cells one lease bundle holds.
        ewma_alpha: Smoothing of the per-worker completion-rate EWMA
            (1.0 trusts only the latest gap, 0.0 never updates).
        slow_fraction: A worker whose rate drops below this fraction of
            the fleet median is flagged slow until it recovers to
            ``2 * slow_fraction`` (hysteresis, so a borderline worker
            does not flap in and out of the slow set every scan).
    """

    def __init__(
        self,
        max_bundle: int = 4,
        ewma_alpha: float = 0.4,
        slow_fraction: float = 0.25,
    ) -> None:
        if max_bundle < 1:
            raise ValueError("max_bundle must be at least 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < slow_fraction < 1.0:
            raise ValueError("slow_fraction must be in (0, 1)")
        self.max_bundle = max_bundle
        self.ewma_alpha = ewma_alpha
        self.slow_fraction = slow_fraction
        self.members: Dict[str, FleetMember] = {}
        #: Ordered membership transitions: ``{"seq", "event", "worker"}``
        #: plus event-specific fields.  The seq ordinal is assigned in
        #: arrival order, which makes two runs comparable event-by-event.
        self.events: List[Dict] = []
        self._seq = 0
        self.joins = 0
        self.leaves = 0

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _record(self, event: str, worker_id: str, **extra) -> None:
        self._seq += 1
        self.events.append(
            {"seq": self._seq, "event": event, "worker": worker_id, **extra}
        )

    def hello(
        self, worker_id: str, capabilities: WorkerCapabilities, now: float
    ) -> FleetMember:
        """Admit a worker (first join or a rejoin after a disconnect)."""
        member = self.members.get(worker_id)
        if member is None:
            member = FleetMember(
                worker_id=worker_id,
                capabilities=capabilities,
                joined_at=now,
                last_seen=now,
            )
            self.members[worker_id] = member
            self.joins += 1
            self._record("join", worker_id,
                         cores=capabilities.cores,
                         throughput=round(capabilities.throughput, 3))
        else:
            member.capabilities = capabilities
            member.left_at = None
            member.last_seen = now
            self.joins += 1
            self._record("rejoin", worker_id)
        return member

    def leave(self, worker_id: str, now: float, reason: str) -> None:
        """Mark a worker gone (disconnect, drain, or chaos kill)."""
        member = self.members.get(worker_id)
        if member is None or not member.active:
            return
        member.left_at = now
        self.leaves += 1
        self._record("leave", worker_id, reason=reason)

    def task_done(self, worker_id: str, now: float) -> None:
        """Fold one accepted result into the worker's rate EWMA."""
        member = self.members.get(worker_id)
        if member is None:
            return
        member.tasks_completed += 1
        since = member.last_completed_at
        if since is None:
            since = member.joined_at
        gap = max(now - since, 1e-6)
        sample = 1.0 / gap
        if member.rate <= 0.0:
            member.rate = sample
        else:
            member.rate += self.ewma_alpha * (sample - member.rate)
        member.last_completed_at = now
        member.last_seen = now

    # ------------------------------------------------------------------
    # Questions the scheduler asks
    # ------------------------------------------------------------------
    def get(self, worker_id: str) -> Optional[FleetMember]:
        """The member record for ``worker_id`` (``None`` if unknown)."""
        return self.members.get(worker_id)

    def active_members(self) -> List[FleetMember]:
        """Members currently in the fleet, in stable worker-id order."""
        return sorted(
            (m for m in self.members.values() if m.active),
            key=lambda m: m.worker_id,
        )

    def median_rate(self) -> float:
        """Median completion rate over active workers that have rated."""
        rates = [
            m.rate for m in self.active_members()
            if m.rate > 0.0 and m.tasks_completed > 0
        ]
        if not rates:
            return 0.0
        return float(statistics.median(rates))

    def weight(self, worker_id: str) -> float:
        """Capacity weight: advertised throughput vs the fleet median.

        Falls back to 1.0 whenever the worker (or most of the fleet)
        did not measure a calibration throughput.
        """
        member = self.members.get(worker_id)
        if member is None:
            return 1.0
        mine = member.capabilities.throughput
        if mine <= 0.0:
            return 1.0
        peers = [
            m.capabilities.throughput
            for m in self.active_members()
            if m.capabilities.throughput > 0.0
        ]
        if not peers:
            return 1.0
        median = float(statistics.median(peers))
        if median <= 0.0:
            return 1.0
        return mine / median

    def bundle_size(self, worker_id: str) -> int:
        """Cells to lease this worker in one bundle.

        A slow-flagged worker always gets exactly one cell: bundling to
        a straggler just converts one late cell into several.  A
        suite-capable worker gets a doubled size against a doubled
        ceiling — same-chunk cells in one bundle cost it a single
        program-major backend call, so the marginal cell is nearly free.
        """
        member = self.members.get(worker_id)
        if member is not None and member.slow:
            return 1
        size = int(round(self.weight(worker_id)))
        limit = self.max_bundle
        if member is not None and member.capabilities.simulate_suite:
            size = max(1, size) * 2
            limit *= 2
        return max(1, min(limit, size))

    def rebalance_scan(self) -> List[Tuple[str, bool]]:
        """Re-flag slow/recovered workers against the fleet median.

        Returns:
            ``(worker_id, slow)`` for every member whose flag flipped
            this scan, in stable worker-id order.
        """
        median = self.median_rate()
        changed: List[Tuple[str, bool]] = []
        if median <= 0.0:
            return changed
        raters = [
            m for m in self.active_members()
            if m.rate > 0.0 and m.tasks_completed > 0
        ]
        if len(raters) < 2:
            return changed  # one rated worker defines no fleet to lag
        for member in raters:
            if not member.slow and (
                member.rate < self.slow_fraction * median
            ):
                member.slow = True
                changed.append((member.worker_id, True))
                self._record("slow", member.worker_id,
                             rate=round(member.rate, 4),
                             median=round(median, 4))
                _log.warning(
                    "worker %s flagged slow: %.3f/s vs fleet median "
                    "%.3f/s",
                    member.worker_id, member.rate, median,
                    extra={"event": "distrib.worker_slow",
                           "worker": member.worker_id},
                )
            elif member.slow and (
                member.rate >= 2.0 * self.slow_fraction * median
            ):
                member.slow = False
                changed.append((member.worker_id, False))
                self._record("recovered", member.worker_id,
                             rate=round(member.rate, 4),
                             median=round(median, 4))
                _log.info(
                    "worker %s recovered: %.3f/s vs fleet median %.3f/s",
                    member.worker_id, member.rate, median,
                    extra={"event": "distrib.worker_recovered",
                           "worker": member.worker_id},
                )
        return changed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def roster(self, now: Optional[float] = None) -> List[Dict]:
        """JSON-ready fleet roster for the status endpoint."""
        now = time.monotonic() if now is None else now
        return [
            {
                "worker": member.worker_id,
                "active": member.active,
                "slow": member.slow,
                "cores": member.capabilities.cores,
                "memory_mb": member.capabilities.memory_mb,
                "throughput": round(member.capabilities.throughput, 3),
                "simulate_suite": member.capabilities.simulate_suite,
                "weight": round(self.weight(member.worker_id), 3),
                "bundle_size": self.bundle_size(member.worker_id),
                "tasks_completed": member.tasks_completed,
                "rate": round(member.rate, 4),
                "age_seconds": round(max(0.0, now - member.joined_at), 3),
            }
            for member in sorted(
                self.members.values(), key=lambda m: m.worker_id
            )
        ]
