"""Fig. 14: accuracy vs number of offline training programs.

Section 8's answer to "offline training is too expensive": five randomly
chosen training programs already give > 0.85 correlation, and the curve
plateaus around 15 programs.
"""

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.exploration import (
    format_series,
    scale_banner,
    training_programs_sweep,
)
from repro.sim import Metric

POOL_SIZES = (2, 5, 10, 15, 20)
METRICS = (Metric.CYCLES, Metric.ENERGY)


def test_fig14_training_programs(benchmark, spec_dataset, record_artifact):
    def regenerate():
        return {
            metric: training_programs_sweep(
                spec_dataset, metric, pool_sizes=POOL_SIZES,
                training_size=TRAINING_SIZE, responses=RESPONSES,
                repeats=2,
            )
            for metric in METRICS
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 14 — accuracy vs number of offline training programs",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES, repeats=2,
        )
    ]
    for metric, sweep in results.items():
        sections.append(
            f"\n({metric.value})\n"
            + format_series(
                "programs",
                sweep.budgets(),
                {
                    "rmae%": [p.rmae_mean for p in sweep.points],
                    "corr": [p.correlation_mean for p in sweep.points],
                },
            )
        )
    record_artifact("fig14_training_programs", "\n".join(sections))

    for sweep in results.values():
        by_size = {p.budget: p for p in sweep.points}
        # Five programs already give a usable predictor...
        assert by_size[5].correlation_mean > 0.85
        # ...more programs help, with a plateau by ~15.
        assert by_size[15].rmae_mean <= by_size[2].rmae_mean
        plateau_gain = by_size[15].rmae_mean - by_size[20].rmae_mean
        early_gain = by_size[2].rmae_mean - by_size[5].rmae_mean
        assert plateau_gain < max(early_gain, 1.5)
