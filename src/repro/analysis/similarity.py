"""Program similarity in design-space behaviour (Section 4.2).

The paper measures similarity between two programs as the euclidean
distance between their design-space vectors over the 3,000 sampled
configurations, with each program's vector normalised to its value on
the baseline architecture.  This differs from feature-based similarity
work (instruction mix, miss rates): similarity here is defined by how
the programs *respond to the architecture*, which is exactly the
property the architecture-centric predictor exploits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sim.metrics import Metric

from repro.exploration.dataset import DesignSpaceDataset


def normalised_behaviour_matrix(
    dataset: DesignSpaceDataset, metric: Metric
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """(programs, configurations) matrix normalised to the baseline.

    Each program's row is its metric over the sampled configurations
    divided by its metric on the baseline machine, so programs with very
    different absolute scales (art vs parser) become comparable and the
    distance measures *shape*, as in the paper's footnote 1.
    """
    space = dataset.simulator.space
    baseline = space.baseline
    rows = []
    for program in dataset.programs:
        values = dataset.values(program, metric)
        base = dataset.simulator.simulate(
            dataset.suite[program], baseline
        ).metric(metric)
        rows.append(values / base)
    return np.stack(rows), dataset.programs


def distance_matrix(
    dataset: DesignSpaceDataset, metric: Metric
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Pairwise euclidean distances between program behaviours.

    Returns a symmetric (P, P) matrix with zero diagonal, plus the
    program names in matrix order.
    """
    matrix, programs = normalised_behaviour_matrix(dataset, metric)
    # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b, computed in one pass.
    squared_norms = np.sum(matrix * matrix, axis=1)
    gram = matrix @ matrix.T
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    distances = np.sqrt(np.maximum(squared, 0.0))
    np.fill_diagonal(distances, 0.0)
    return distances, programs


def nearest_neighbours(
    distances: np.ndarray, programs: Tuple[str, ...]
) -> dict[str, Tuple[str, float]]:
    """Each program's closest other program and the distance to it."""
    if distances.shape[0] != len(programs):
        raise ValueError("distance matrix and program list disagree")
    result = {}
    for i, program in enumerate(programs):
        row = distances[i].copy()
        row[i] = np.inf
        j = int(np.argmin(row))
        result[program] = (programs[j], float(row[j]))
    return result


def outlier_scores(
    distances: np.ndarray, programs: Tuple[str, ...]
) -> dict[str, float]:
    """Mean distance of each program to all others (outlier ranking).

    The paper's Section 4.2 observation — art and mcf sit far from the
    rest of SPEC CPU 2000 — falls out as the largest scores here.
    """
    if distances.shape[0] != len(programs):
        raise ValueError("distance matrix and program list disagree")
    count = len(programs)
    if count < 2:
        return {program: 0.0 for program in programs}
    means = distances.sum(axis=1) / (count - 1)
    return {program: float(mean) for program, mean in zip(programs, means)}
