"""Graceful drain under load: in-flight work completes, new work sheds.

The SIGTERM contract a supervisor (and the fleet parent) relies on:
requests already inside the server — parked predictions *and*
executor-side searches — are answered during :meth:`drain`, while new
arrivals on established keep-alive connections get a clean 503 instead
of a reset.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import scoped_registry
from repro.serve import PredictionClient, ServerError, ServingFleet


class TestSingleServerDrain:
    def test_inflight_predict_and_search_complete(
        self, harness, holdout_configs
    ):
        # A slow forward pass keeps the prediction in flight long
        # enough for drain to start while it runs; cache off so the
        # request cannot sidestep the queue.
        server = harness(service_delay=0.4, cache_size=0)
        outcomes = {}

        def slow_predict():
            with server.client(timeout=30) as client:
                outcomes["predict"] = client.predict_one(
                    holdout_configs[0]
                )

        def slow_search():
            with server.client(timeout=30) as client:
                outcomes["search"] = client.search(
                    agent="hill", budget=24, seed=3
                )

        # A keep-alive connection established *before* drain begins —
        # its next request must be refused, not reset.
        bystander = server.client(timeout=10)
        assert bystander.healthz()["status"] == "ok"

        workers = [
            threading.Thread(target=slow_predict, daemon=True),
            threading.Thread(target=slow_search, daemon=True),
        ]
        for worker in workers:
            worker.start()
        time.sleep(0.15)  # both requests are now inside the server

        drainer = threading.Thread(target=server.drain, daemon=True)
        drainer.start()
        time.sleep(0.05)  # drain has begun, in-flight work still runs

        with pytest.raises(ServerError) as excinfo:
            bystander.predict_one(holdout_configs[1])
        assert excinfo.value.status == 503
        bystander.close()

        drainer.join(timeout=60)
        assert not drainer.is_alive()
        for worker in workers:
            worker.join(timeout=60)
        # Both in-flight requests finished with real answers.
        assert outcomes["predict"] > 0
        assert outcomes["search"]["best"]


class TestFleetDrain:
    def test_fleet_drains_inflight_and_sheds_new(
        self, fitted_predictor, holdout_configs
    ):
        with scoped_registry():
            fleet = ServingFleet(
                fitted_predictor, 2, port=0,
                server_options={"service_delay": 0.5, "cache_size": 0},
            )
            fleet.start(timeout=90.0)
            try:
                # Idle keep-alive connections into the fleet, opened
                # before the drain (enough that both workers hold some).
                bystanders = []
                for _ in range(6):
                    client = PredictionClient(
                        "127.0.0.1", fleet.port, timeout=10.0
                    )
                    client.healthz()
                    bystanders.append(client)

                def slow_predict(index):
                    with PredictionClient(
                        "127.0.0.1", fleet.port, timeout=30.0
                    ) as client:
                        return client.predict_one(
                            holdout_configs[index % len(holdout_configs)]
                        )

                with ThreadPoolExecutor(max_workers=4) as pool:
                    inflight = [
                        pool.submit(slow_predict, i) for i in range(4)
                    ]
                    time.sleep(0.2)  # requests are inside the workers
                    fleet.begin_drain()
                    time.sleep(0.1)

                    refusals = 0
                    for client in bystanders:
                        try:
                            client.retries = 0
                            client.predict_one(holdout_configs[0])
                        except ServerError as error:
                            assert error.status == 503
                            refusals += 1
                        except (ConnectionError, OSError):
                            # The worker finished draining before this
                            # bystander's request landed.
                            pass
                        finally:
                            client.close()
                    values = [future.result() for future in inflight]

                # Every in-flight request completed with a real
                # prediction, fleet-wide.
                assert len(values) == 4
                assert all(value > 0 for value in values)
                assert refusals >= 1
            finally:
                report = fleet.stop(timeout=60.0)
        assert report.exit_codes == [0, 0]
