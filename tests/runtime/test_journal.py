"""Tests for the append-only campaign journal."""

import pytest

from repro.runtime import CampaignJournal


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.append({"cell": "gzip:0", "checksum": "abc"})
        journal.append({"cell": "gzip:1", "checksum": "def"})
        records = journal.records()
        assert [r["cell"] for r in records] == ["gzip:0", "gzip:1"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl").records() == []

    def test_parent_directories_created(self, tmp_path):
        journal = CampaignJournal(tmp_path / "a" / "b" / "journal.jsonl")
        journal.append({"cell": "x:0"})
        assert journal.exists()

    def test_torn_tail_line_ignored(self, tmp_path):
        """A kill mid-append leaves a half-written last line; reading
        must recover every record before it."""
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.append({"cell": "gzip:0"})
        journal.append({"cell": "gzip:1"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"cell": "gzip:2", "chec')  # torn append
        assert [r["cell"] for r in journal.records()] == ["gzip:0", "gzip:1"]

    def test_corruption_mid_file_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.append({"cell": "gzip:0"})
        journal.append({"cell": "gzip:1"})
        text = path.read_text().replace('"cell": "gzip:0"', '"cell": gz!!')
        path.write_text(text)
        with pytest.raises(ValueError, match="corrupt journal"):
            journal.records()

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not an object"):
            CampaignJournal(path).records()
