"""Tests for the composed multi-metric predictor."""

import numpy as np
import pytest

from repro.core import MultiMetricPredictor, TrainingPool
from repro.sim import Metric


@pytest.fixture(scope="module")
def energy_pool(small_dataset):
    pool = TrainingPool(small_dataset, Metric.ENERGY, training_size=400,
                        seed=7)
    pool.train_all()
    return pool


@pytest.fixture(scope="module")
def fitted(cycles_pool, energy_pool, small_dataset):
    predictor = MultiMetricPredictor(
        cycles_pool.models(exclude=["applu"]),
        energy_pool.models(exclude=["applu"]),
    )
    response_idx, holdout_idx = small_dataset.split_indices(32, seed=88)
    predictor.fit_responses(
        small_dataset.subset_configs(response_idx),
        small_dataset.subset_values("applu", Metric.CYCLES, response_idx),
        small_dataset.subset_values("applu", Metric.ENERGY, response_idx),
    )
    return predictor, holdout_idx


class TestComposition:
    def test_products_are_consistent(self, fitted, small_dataset):
        predictor, holdout = fitted
        configs = small_dataset.subset_configs(holdout[:50])
        everything = predictor.predict_all(configs)
        assert np.allclose(
            everything[Metric.ED],
            everything[Metric.CYCLES] * everything[Metric.ENERGY],
        )
        assert np.allclose(
            everything[Metric.EDD],
            everything[Metric.ED] * everything[Metric.CYCLES],
        )

    def test_single_metric_matches_predict_all(self, fitted, small_dataset):
        predictor, holdout = fitted
        configs = small_dataset.subset_configs(holdout[:20])
        assert np.allclose(
            predictor.predict(configs, Metric.EDD),
            predictor.predict_all(configs)[Metric.EDD],
        )

    def test_composed_edd_is_accurate(self, fitted, small_dataset):
        from repro.ml import correlation
        predictor, holdout = fitted
        configs = small_dataset.subset_configs(holdout)
        prediction = predictor.predict(configs, Metric.EDD)
        actual = small_dataset.subset_values("applu", Metric.EDD, holdout)
        assert correlation(prediction, actual) > 0.8

    def test_training_errors_exposed(self, fitted):
        predictor, _ = fitted
        errors = predictor.training_error
        assert set(errors) == {Metric.CYCLES, Metric.ENERGY}
        assert all(value >= 0 for value in errors.values())


class TestValidation:
    def test_wrong_pool_metrics_rejected(self, cycles_pool):
        models = cycles_pool.models(exclude=["applu"])
        with pytest.raises(ValueError, match="energy"):
            MultiMetricPredictor(models, models)

    def test_empty_pools_rejected(self, cycles_pool, energy_pool):
        with pytest.raises(ValueError):
            MultiMetricPredictor([], energy_pool.models())

    def test_predict_before_fit_rejected(self, cycles_pool, energy_pool,
                                         space):
        predictor = MultiMetricPredictor(
            cycles_pool.models(exclude=["applu"]),
            energy_pool.models(exclude=["applu"]),
        )
        with pytest.raises(RuntimeError):
            predictor.predict([space.baseline], Metric.ED)
        with pytest.raises(RuntimeError):
            predictor.training_error
