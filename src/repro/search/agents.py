"""Pluggable search agents under one ``Agent`` protocol.

Every agent speaks the same two-verb protocol the runner drives:
``propose(count)`` returns up to ``count`` legal configurations, and
``observe(observations)`` feeds the environment's evaluations back.
All agents are seeded and deterministic — the same seed replays the
same trajectory bit for bit, which the tests assert and the benchmark
relies on for its replay leg.

The roster:

* :class:`RandomAgent` — uniform legal sampling; the paper-style
  baseline every other agent must beat at equal budget.
* :class:`HillClimbAgent` — steepest-descent over the legal
  single-step neighbourhood (the migrated ``exploration/search.py``
  climber), restarting from random points with fresh scalarisation
  weights so multi-objective runs spread along the frontier.
* :class:`AnnealingAgent` — Metropolis-accepted neighbour walks (the
  migrated simulated annealer) under a geometric temperature decay.
* :class:`GeneticAgent` — an NSGA-II-flavoured evolutionary loop:
  non-dominated sorting plus crowding distance for selection, uniform
  crossover and grid-step mutation for variation.
* :class:`BayesianAgent` — expected improvement over a cheap Bayesian
  ridge surrogate fitted to the scalarised history, maximised over a
  random candidate pool.

Multi-objective scalarisation (where an agent needs a single score) is
a weighted sum of ``log10`` objectives — scale-free, so cycles and
nanojoules mix sanely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.sampling import sample_configurations
from repro.designspace.space import DesignSpace

from .env import Observation

__all__ = [
    "AGENT_NAMES",
    "Agent",
    "AnnealingAgent",
    "BayesianAgent",
    "GeneticAgent",
    "HillClimbAgent",
    "RandomAgent",
    "make_agent",
]

#: Floor applied before ``log10`` so a pathological oracle value cannot
#: produce ``-inf`` scores.
_TINY = 1e-300


class Agent(Protocol):
    """The protocol every search agent implements."""

    name: str

    def propose(self, count: int) -> List[Configuration]:
        """Up to ``count`` legal configurations to evaluate next."""
        ...

    def observe(self, observations: Sequence[Observation]) -> None:
        """Digest the environment's evaluations of the last proposals."""
        ...


class _ScalarisingAgent:
    """Shared plumbing: seeded RNG, weights, log-space scalarisation."""

    def __init__(
        self,
        space: DesignSpace,
        objectives: int = 2,
        seed: Optional[int] = None,
    ) -> None:
        if objectives < 1:
            raise ValueError("objectives must be at least 1")
        self._space = space
        self._objective_count = objectives
        self._rng = np.random.default_rng(seed)
        self._weights = np.full(objectives, 1.0 / objectives)

    def _redraw_weights(self) -> None:
        """Draw fresh Dirichlet scalarisation weights (frontier spread)."""
        if self._objective_count > 1:
            self._weights = self._rng.dirichlet(
                np.ones(self._objective_count)
            )

    def _score(self, objectives: Sequence[float]) -> float:
        """Weighted sum of log10 objectives (lower is better)."""
        values = np.maximum(np.asarray(objectives, dtype=float), _TINY)
        return float(np.dot(self._weights, np.log10(values)))

    def _random(self, count: int) -> List[Configuration]:
        """``count`` uniform legal samples from the agent's own RNG."""
        return sample_configurations(
            self._space, count, seed=self._rng, unique=False
        )

    def observe(self, observations: Sequence[Observation]) -> None:
        """Default: stateless agents ignore feedback."""


class RandomAgent(_ScalarisingAgent):
    """Uniform random legal sampling — the equal-budget baseline."""

    name = "random"

    def propose(self, count: int) -> List[Configuration]:
        """``count`` fresh uniform samples."""
        return self._random(count)


class HillClimbAgent(_ScalarisingAgent):
    """Steepest-descent local search with random multi-start.

    Proposes the legal single-step neighbourhood of its current point;
    moves to the best-scoring neighbour, and when no neighbour improves
    it restarts from a random configuration with freshly drawn
    scalarisation weights, so successive climbs pull towards different
    regions of the frontier.
    """

    name = "hill"

    def __init__(
        self,
        space: DesignSpace,
        objectives: int = 2,
        seed: Optional[int] = None,
        start_from_baseline: bool = True,
    ) -> None:
        super().__init__(space, objectives, seed)
        self._current: Optional[Configuration] = None
        self._current_score = np.inf
        self._start_from_baseline = start_from_baseline

    def propose(self, count: int) -> List[Configuration]:
        """Neighbours of the current point, or restart candidates."""
        if self._current is None:
            picks: List[Configuration] = []
            if self._start_from_baseline:
                picks.append(self._space.baseline)
                self._start_from_baseline = False
            if len(picks) < count:
                picks.extend(self._random(count - len(picks)))
            return picks[:count]
        neighbours = self._space.neighbours(self._current)
        if not neighbours:
            self._current = None
            self._redraw_weights()
            return self._random(count)
        if len(neighbours) > count:
            chosen = self._rng.choice(
                len(neighbours), size=count, replace=False
            )
            neighbours = [neighbours[i] for i in sorted(chosen)]
        return neighbours

    def observe(self, observations: Sequence[Observation]) -> None:
        """Move to the best observed point, or restart when stuck."""
        if not observations:
            return
        scores = [self._score(o.objectives) for o in observations]
        best = int(np.argmin(scores))
        if self._current is None or scores[best] < self._current_score:
            self._current = observations[best].configuration
            self._current_score = scores[best]
        else:
            # Local optimum: restart somewhere new, chasing a fresh
            # scalarisation so the next climb lands elsewhere on the
            # frontier.
            self._current = None
            self._current_score = np.inf
            self._redraw_weights()


class AnnealingAgent(_ScalarisingAgent):
    """Simulated annealing over single-parameter grid moves.

    Random legal neighbours of the current point are proposed; each
    observation is accepted with the Metropolis probability
    ``exp(-relative_worsening / temperature)``, the temperature
    decaying geometrically to ~1 percent of its initial value across
    the configured horizon.
    """

    name = "anneal"

    def __init__(
        self,
        space: DesignSpace,
        objectives: int = 2,
        seed: Optional[int] = None,
        initial_temperature: float = 0.05,
        horizon: int = 256,
    ) -> None:
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        super().__init__(space, objectives, seed)
        self._current: Optional[Configuration] = None
        self._current_score = np.inf
        self._temperature = initial_temperature
        self._decay = 0.01 ** (1.0 / horizon)

    def propose(self, count: int) -> List[Configuration]:
        """Random neighbours of the current point (or cold starts)."""
        if self._current is None:
            return self._random(count)
        neighbours = self._space.neighbours(self._current)
        if not neighbours:
            return self._random(count)
        picks = self._rng.integers(0, len(neighbours), size=count)
        return [neighbours[int(i)] for i in picks]

    def observe(self, observations: Sequence[Observation]) -> None:
        """Metropolis-accept each observation in order, cooling as we go."""
        for observation in observations:
            score = self._score(observation.objectives)
            worsening = score - self._current_score
            if self._current is None or worsening <= 0 or (
                self._rng.random()
                < np.exp(-worsening / max(self._temperature, 1e-12))
            ):
                self._current = observation.configuration
                self._current_score = score
            self._temperature *= self._decay


class GeneticAgent(_ScalarisingAgent):
    """NSGA-II-flavoured evolutionary multi-objective search.

    A population of evaluated designs is kept sorted by non-domination
    rank with crowding-distance tie-breaks.  Children come from binary
    tournament selection, uniform parameter crossover and per-parameter
    grid-step mutation, repaired to legality (mutation retries, then a
    random legal fallback).  Until the population fills, proposals are
    uniform random — so the first generations match the random baseline
    and every later win is earned by selection pressure.
    """

    name = "genetic"

    def __init__(
        self,
        space: DesignSpace,
        objectives: int = 2,
        seed: Optional[int] = None,
        population: int = 24,
        mutation_rate: float = 0.2,
    ) -> None:
        if population < 2:
            raise ValueError("population must be at least 2")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        super().__init__(space, objectives, seed)
        self._population_size = population
        self._mutation_rate = mutation_rate
        self._members: List[Tuple[Configuration, Tuple[float, ...]]] = []
        self._seen: Dict[Configuration, None] = {}

    def propose(self, count: int) -> List[Configuration]:
        """Random seeds until the population fills, then offspring."""
        if len(self._members) < self._population_size:
            return self._random(count)
        ranks, crowding = self._rank_population()
        children: List[Configuration] = []
        for _ in range(count):
            mother = self._tournament(ranks, crowding)
            father = self._tournament(ranks, crowding)
            child = self._crossover(mother, father)
            child = self._mutate(child)
            children.append(child)
        return children

    def observe(self, observations: Sequence[Observation]) -> None:
        """Fold evaluations into the population and re-select survivors."""
        for observation in observations:
            if observation.configuration in self._seen:
                continue
            self._seen[observation.configuration] = None
            self._members.append(
                (observation.configuration, observation.objectives)
            )
        if len(self._members) > self._population_size:
            self._members = self._select_survivors()

    # -- selection -----------------------------------------------------
    def _objective_matrix(self) -> np.ndarray:
        return np.asarray([m[1] for m in self._members], dtype=float)

    def _rank_population(self) -> Tuple[np.ndarray, np.ndarray]:
        """(non-domination rank, crowding distance) per member."""
        values = self._objective_matrix()
        n = len(values)
        ranks = np.zeros(n, dtype=int)
        remaining = np.arange(n)
        rank = 0
        while remaining.size:
            sub = values[remaining]
            front_local = _nondominated_mask(sub)
            ranks[remaining[front_local]] = rank
            remaining = remaining[~front_local]
            rank += 1
        return ranks, _crowding_distance(values)

    def _tournament(
        self, ranks: np.ndarray, crowding: np.ndarray
    ) -> Configuration:
        """Binary tournament: lower rank wins, crowding breaks ties."""
        a, b = self._rng.integers(0, len(self._members), size=2)
        a, b = int(a), int(b)
        if (ranks[a], -crowding[a]) <= (ranks[b], -crowding[b]):
            return self._members[a][0]
        return self._members[b][0]

    def _select_survivors(
        self,
    ) -> List[Tuple[Configuration, Tuple[float, ...]]]:
        """Truncate to the population size by (rank, -crowding)."""
        ranks, crowding = self._rank_population()
        order = sorted(
            range(len(self._members)),
            key=lambda i: (ranks[i], -crowding[i], i),
        )
        return [self._members[i] for i in order[: self._population_size]]

    # -- variation -----------------------------------------------------
    def _crossover(
        self, mother: Configuration, father: Configuration
    ) -> Configuration:
        """Uniform per-parameter crossover."""
        values = {}
        for parameter in self._space.parameters:
            source = mother if self._rng.random() < 0.5 else father
            values[parameter.name] = getattr(source, parameter.name)
        return Configuration(**values)

    def _mutate(self, child: Configuration) -> Configuration:
        """Grid-step mutation with legality repair.

        Each parameter moves +/-1 grid step with the mutation
        probability; an illegal result retries a few times and finally
        falls back to a random legal sample, so proposals are always
        legal.
        """
        for _ in range(8):
            values = {}
            for parameter in self._space.parameters:
                value = getattr(child, parameter.name)
                if self._rng.random() < self._mutation_rate:
                    index = parameter.index_of(value)
                    step = 1 if self._rng.random() < 0.5 else -1
                    index = min(max(index + step, 0), parameter.cardinality - 1)
                    value = parameter.values[index]
                values[parameter.name] = value
            candidate = Configuration(**values)
            if self._space.satisfies_constraints(candidate):
                return candidate
        return self._random(1)[0]


class BayesianAgent(_ScalarisingAgent):
    """Expected improvement over a cheap Bayesian ridge surrogate.

    The scalarised history fits a closed-form Bayesian linear
    regression on normalised encoded features; each round scores a
    random candidate pool by expected improvement (posterior mean and
    variance both in closed form — no dependency beyond numpy) and
    proposes the best candidates.  Until enough history accumulates the
    agent explores uniformly.
    """

    name = "bayes"

    def __init__(
        self,
        space: DesignSpace,
        objectives: int = 2,
        seed: Optional[int] = None,
        pool_size: int = 512,
        ridge: float = 1e-2,
        min_history: int = 32,
    ) -> None:
        if pool_size < 2:
            raise ValueError("pool_size must be at least 2")
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        super().__init__(space, objectives, seed)
        self._pool_size = pool_size
        self._ridge = ridge
        self._min_history = max(min_history, space.dimensions + 2)
        self._features: List[np.ndarray] = []
        self._scores: List[float] = []
        lo, hi = space.feature_bounds()
        self._lo = lo
        self._span = np.where(hi > lo, hi - lo, 1.0)

    def _encode(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Encoded features normalised to [0, 1] plus a bias column."""
        raw = self._space.encode_many(configs)
        unit = (raw - self._lo) / self._span
        return np.hstack([np.ones((unit.shape[0], 1)), unit])

    def propose(self, count: int) -> List[Configuration]:
        """Top expected-improvement picks from a fresh candidate pool."""
        if len(self._scores) < self._min_history:
            return self._random(count)
        pool = self._random(self._pool_size)
        x = np.asarray(self._features, dtype=float)
        y = np.asarray(self._scores, dtype=float)
        gram = x.T @ x + self._ridge * np.eye(x.shape[1])
        inv = np.linalg.inv(gram)
        weights = inv @ (x.T @ y)
        residual = y - x @ weights
        dof = max(len(y) - x.shape[1], 1)
        noise = float(residual @ residual) / dof
        candidates = self._encode(pool)
        mean = candidates @ weights
        variance = noise * (
            1.0 + np.einsum("ij,jk,ik->i", candidates, inv, candidates)
        )
        sigma = np.sqrt(np.maximum(variance, 1e-18))
        best = y.min()
        z = (best - mean) / sigma
        improvement = (best - mean) * _normal_cdf(z) + sigma * _normal_pdf(z)
        order = np.argsort(-improvement)[:count]
        return [pool[int(i)] for i in order]

    def observe(self, observations: Sequence[Observation]) -> None:
        """Append scalarised evaluations to the surrogate's history."""
        if not observations:
            return
        encoded = self._encode([o.configuration for o in observations])
        for row, observation in zip(encoded, observations):
            self._features.append(row)
            self._scores.append(self._score(observation.objectives))


def _normal_pdf(z: np.ndarray) -> np.ndarray:
    """Standard normal density."""
    return np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (numpy-only)."""
    from math import sqrt

    return 0.5 * (1.0 + _erf_vec(z / sqrt(2.0)))


def _erf_vec(x: np.ndarray) -> np.ndarray:
    """Vectorised erf (Abramowitz-Stegun 7.1.26, |error| < 1.5e-7)."""
    sign = np.sign(x)
    x = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741
                                   + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-x * x))


def _nondominated_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows (duplicates all kept)."""
    n = values.shape[0]
    leq = (values[None, :, :] <= values[:, None, :]).all(axis=2)
    lt = (values[None, :, :] < values[:, None, :]).any(axis=2)
    return ~((leq & lt).any(axis=1))


def _crowding_distance(values: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance (boundary points get infinity)."""
    n, k = values.shape
    distance = np.zeros(n)
    for j in range(k):
        order = np.argsort(values[:, j], kind="stable")
        column = values[order, j]
        span = column[-1] - column[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span > 0 and n > 2:
            gaps = (column[2:] - column[:-2]) / span
            distance[order[1:-1]] += gaps
    return distance


#: Agent names accepted by :func:`make_agent`, the CLI and ``/search``.
AGENT_NAMES: Tuple[str, ...] = (
    "random", "hill", "anneal", "genetic", "bayes",
)

_AGENTS = {
    "random": RandomAgent,
    "hill": HillClimbAgent,
    "anneal": AnnealingAgent,
    "genetic": GeneticAgent,
    "bayes": BayesianAgent,
}


def make_agent(
    name: str,
    space: DesignSpace,
    objectives: int = 2,
    seed: Optional[int] = None,
    **kwargs,
) -> Agent:
    """Build a named agent (``random``/``hill``/``anneal``/``genetic``/``bayes``).

    Args:
        name: One of :data:`AGENT_NAMES`.
        space: The design space to search.
        objectives: Objective-vector length the agent will observe.
        seed: RNG seed; the same seed replays the same trajectory.
        **kwargs: Forwarded to the agent's constructor.

    Raises:
        ValueError: on an unknown agent name.
    """
    try:
        cls = _AGENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown agent {name!r}; known: {', '.join(AGENT_NAMES)}"
        ) from None
    return cls(space, objectives=objectives, seed=seed, **kwargs)
