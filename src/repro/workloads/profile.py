"""Statistical workload profiles — the benchmark substrate.

The paper runs SPEC CPU 2000 and MiBench binaries on a cycle-accurate
simulator.  Those binaries are licensed and unavailable, so this package
substitutes *statistical workload profiles*: each benchmark is described
by the program characteristics that first-order superscalar performance
models and statistical simulators use — instruction mix, an ILP-vs-window
curve, branch-predictability curves, working-set locality mixtures and
memory-level parallelism.  The simulators in :mod:`repro.sim` consume
these profiles, either analytically (interval model) or by synthesising
an instruction trace (pipeline model).

Crucially for the paper's thesis, the profiles share a common mechanistic
structure with per-program parameters *plus* a per-program idiosyncratic
non-linear term over the configuration space, so the per-program design
spaces are individually non-linear yet largely expressible as linear
combinations of one another — with deliberate outliers (art, mcf) that
are not.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of committed instructions by class (must sum to 1)."""

    int_alu: float
    int_mul: float
    fp_alu: float
    fp_mul: float
    load: float
    store: float
    branch: float

    def __post_init__(self) -> None:
        total = sum(self.as_tuple())
        if any(f < 0 for f in self.as_tuple()):
            raise ValueError("instruction-mix fractions must be non-negative")
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"instruction mix must sum to 1, got {total}")

    def as_tuple(self) -> Tuple[float, ...]:
        """The seven class fractions in canonical order."""
        return (
            self.int_alu,
            self.int_mul,
            self.fp_alu,
            self.fp_mul,
            self.load,
            self.store,
            self.branch,
        )

    @property
    def memory(self) -> float:
        """Fraction of instructions that access data memory."""
        return self.load + self.store

    @property
    def fp(self) -> float:
        """Fraction of floating-point computation instructions."""
        return self.fp_alu + self.fp_mul

    def normalised(self) -> "InstructionMix":
        """Return a copy rescaled to sum exactly to 1."""
        total = sum(self.as_tuple())
        return InstructionMix(*(f / total for f in self.as_tuple()))


@dataclass(frozen=True)
class BranchBehaviour:
    """Branch-predictability model of a program.

    The misprediction rate of a gshare predictor with ``entries`` entries
    is modelled as ``floor + scale * (entries / 1024) ** -alpha`` — a
    power-law approach to an irreducible floor, the shape measured across
    predictor-size studies.  The BTB contributes an additional miss term
    for taken branches.
    """

    floor: float
    scale: float
    alpha: float
    btb_floor: float
    btb_scale: float
    taken_fraction: float
    static_branches: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor < 1.0:
            raise ValueError("floor must be a probability")
        if self.scale < 0 or self.btb_scale < 0:
            raise ValueError("scales must be non-negative")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0.0 < self.taken_fraction < 1.0:
            raise ValueError("taken_fraction must be in (0, 1)")
        if self.static_branches < 1:
            raise ValueError("static_branches must be at least 1")

    def mispredict_rate(self, gshare_entries) -> np.ndarray | float:
        """Misprediction probability for a gshare of the given size."""
        entries = np.asarray(gshare_entries, dtype=float)
        rate = self.floor + self.scale * (entries / 1024.0) ** (-self.alpha)
        return np.clip(rate, 0.0, 0.5)

    def btb_miss_rate(self, btb_entries) -> np.ndarray | float:
        """BTB miss probability for taken branches."""
        entries = np.asarray(btb_entries, dtype=float)
        rate = self.btb_floor + self.btb_scale * (entries / 1024.0) ** (-0.8)
        return np.clip(rate, 0.0, 1.0)


@dataclass(frozen=True)
class LocalityModel:
    """Working-set mixture locality model for a reference stream.

    The miss ratio of a cache of effective capacity ``C`` bytes is::

        miss(C) = cold + sum_i weight_i * exp(-(C / ws_i) ** sharpness)

    i.e. each working set ``ws_i`` (bytes) contributes misses until the
    cache is comfortably larger than it.  This is the smooth analogue of
    a reuse-distance CDF and is monotonically non-increasing in ``C``,
    which the hierarchy model relies on.
    """

    working_sets: Tuple[Tuple[float, float], ...]
    cold: float
    sharpness: float = 1.0

    def __post_init__(self) -> None:
        if not self.working_sets:
            raise ValueError("at least one working set is required")
        for size, weight in self.working_sets:
            if size <= 0 or weight < 0:
                raise ValueError("working sets need size > 0 and weight >= 0")
        if not 0.0 <= self.cold < 1.0:
            raise ValueError("cold miss rate must be a probability")
        if self.sharpness <= 0:
            raise ValueError("sharpness must be positive")
        total = self.cold + sum(w for _, w in self.working_sets)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"cold + working-set weights must not exceed 1, got {total}"
            )

    def miss_ratio(self, capacity_bytes) -> np.ndarray | float:
        """Miss ratio of a cache with the given effective capacity."""
        capacity = np.asarray(capacity_bytes, dtype=float)
        miss = np.full_like(capacity, self.cold, dtype=float)
        for size, weight in self.working_sets:
            miss = miss + weight * np.exp(-((capacity / size) ** self.sharpness))
        return np.clip(miss, 0.0, 1.0)

    @property
    def footprint(self) -> float:
        """Largest working set (bytes) — the stream's total footprint."""
        return max(size for size, _ in self.working_sets)


@dataclass(frozen=True)
class Idiosyncrasy:
    """Per-program smooth non-linear quirk over the configuration space.

    Real programs respond to microarchitectural interactions in ways no
    shared mechanistic model captures.  We model that residual as a sum
    of ``bumps`` Gaussian radial basis functions over the normalised
    13-vector, deterministically seeded per program, multiplying the
    mechanistic metric by ``1 + amplitude * phi(x)`` with
    ``phi in [-1, 1]``.  This term is what makes a program's space not
    exactly a linear combination of other programs' spaces, and its
    amplitude controls the irreducible error of the architecture-centric
    predictor (large for outliers like art).
    """

    amplitude: float
    seed: int
    bumps: int = 6
    width: float = 0.45
    active_dimensions: int = 4

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if self.bumps < 0:
            raise ValueError("bumps must be non-negative")
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.active_dimensions < 1:
            raise ValueError("active_dimensions must be at least 1")

    def _bump_parameters(
        self, dims: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Centres, signs and the sparse dimension mask of each bump.

        Each bump responds to a random subset of the parameters (real
        program quirks are interactions of a few parameters, not all
        thirteen); restricting the distance to that subset keeps the
        gaussians from vanishing in high dimension.
        """
        rng = np.random.default_rng(self.seed)
        centres = rng.uniform(0.0, 1.0, size=(self.bumps, dims))
        signs = rng.choice((-1.0, 1.0), size=self.bumps)
        active = min(self.active_dimensions, dims)
        masks = np.zeros((self.bumps, dims))
        for bump in range(self.bumps):
            chosen = rng.choice(dims, size=active, replace=False)
            masks[bump, chosen] = 1.0
        return centres, signs, masks

    def factor(self, unit_features: np.ndarray) -> np.ndarray:
        """Multiplicative factor for configurations in unit coordinates.

        Args:
            unit_features: (n, d) matrix with each feature scaled to
                [0, 1] over its grid.

        Returns:
            Length-n array of factors ``1 + amplitude * phi(x)`` with
            ``phi`` in [-1, 1].
        """
        features = np.atleast_2d(np.asarray(unit_features, dtype=float))
        if self.bumps == 0 or self.amplitude == 0.0:
            return np.ones(features.shape[0])
        centres, signs, masks = self._bump_parameters(features.shape[1])
        # (n, bumps) squared distances over each bump's active subset.
        deltas = features[:, None, :] - centres[None, :, :]
        sq = np.sum(deltas * deltas * masks[None, :, :], axis=2)
        phi = np.sum(signs * np.exp(-sq / (2.0 * self.width**2)), axis=1)
        phi = np.tanh(phi)  # keep within [-1, 1]
        return 1.0 + self.amplitude * phi


def stable_seed(*parts: str) -> int:
    """Deterministic 32-bit seed from string parts (stable across runs)."""
    digest = hashlib.sha256("/".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class WorkloadProfile:
    """Complete statistical description of one benchmark program.

    Attributes:
        name: Benchmark name (e.g. ``"applu"``).
        suite: Suite name (``"spec2000"`` or ``"mibench"``).
        category: Sub-category (``"int"``/``"fp"`` or a MiBench group).
        mix: Instruction mix.
        ilp_max: Asymptotic ILP with an unbounded instruction window.
        ilp_window_scale: Window size (instructions) at which roughly
            63 percent of the asymptotic ILP is extracted.
        iq_pressure: Fraction of in-flight instructions resident in the
            issue queue while waiting for operands.
        dest_fraction: Fraction of instructions producing a register
            result (drives rename-register demand).
        reads_per_instruction: Average register source operands.
        branches: Branch-predictability model.
        data_locality: Locality of the data reference stream.
        instruction_locality: Locality of the instruction fetch stream.
        mlp_max: Program-inherent memory-level parallelism cap.
        latency_hiding_scale: Window size scale over which out-of-order
            execution hides L2-hit latency.
        idiosyncrasy_performance: Non-linear residual applied to cycles.
        idiosyncrasy_energy: Non-linear residual applied to energy.
        instructions: Nominal dynamic instruction count per phase (the
            paper's SimPoint intervals are 10 M instructions).
    """

    name: str
    suite: str
    category: str
    mix: InstructionMix
    ilp_max: float
    ilp_window_scale: float
    iq_pressure: float
    dest_fraction: float
    reads_per_instruction: float
    branches: BranchBehaviour
    data_locality: LocalityModel
    instruction_locality: LocalityModel
    mlp_max: float
    latency_hiding_scale: float
    idiosyncrasy_performance: Idiosyncrasy
    idiosyncrasy_energy: Idiosyncrasy
    instructions: int = 10_000_000

    def __post_init__(self) -> None:
        if self.ilp_max <= 0:
            raise ValueError("ilp_max must be positive")
        if self.ilp_window_scale <= 0:
            raise ValueError("ilp_window_scale must be positive")
        if not 0.0 < self.iq_pressure <= 1.0:
            raise ValueError("iq_pressure must be in (0, 1]")
        if not 0.0 < self.dest_fraction <= 1.0:
            raise ValueError("dest_fraction must be in (0, 1]")
        if self.reads_per_instruction <= 0:
            raise ValueError("reads_per_instruction must be positive")
        if self.mlp_max < 1.0:
            raise ValueError("mlp_max must be at least 1")
        if self.latency_hiding_scale <= 0:
            raise ValueError("latency_hiding_scale must be positive")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")

    def ilp(self, window) -> np.ndarray | float:
        """Extractable ILP (instructions/cycle) for a given window size."""
        window = np.asarray(window, dtype=float)
        return self.ilp_max * (1.0 - np.exp(-window / self.ilp_window_scale))

    def with_overrides(self, **overrides) -> "WorkloadProfile":
        """Return a copy with some fields replaced (used by phases)."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, float]:
        """Compact numeric summary used in reports and tests."""
        return {
            "memory_fraction": self.mix.memory,
            "branch_fraction": self.mix.branch,
            "fp_fraction": self.mix.fp,
            "ilp_max": self.ilp_max,
            "data_footprint_kb": self.data_locality.footprint / 1024.0,
            "mlp_max": self.mlp_max,
        }
