"""Simulator throughput: the speed/fidelity trade the repository offers.

Not a paper artefact — an engineering table a downstream user needs:
how many (program, configuration) evaluations per second does each
simulator tier deliver?  The whole methodology only works because the
bulk tier is orders of magnitude faster than detailed simulation, so
this bench also guards against performance regressions in the
vectorised interval model, the event-driven pipeline engine (measured
against its tick oracle on the same trace, bit-identity checked), and
the campaign executor's program-major suite fast path.  The numbers
land machine-readable in ``results/BENCH_sim.json``.
"""

import time
from dataclasses import asdict

from repro.designspace import DesignSpace, sample_configurations
from repro.exploration import format_table, scale_banner
from repro.runtime import CampaignRunner, IntervalBackend
from repro.sim import IntervalSimulator, MonteCarloSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import generate_trace, spec2000_suite

BATCH = 2000
TRACE_LENGTH = 20_000
CAMPAIGN_PROGRAMS = ("gzip", "applu", "art")
CAMPAIGN_CONFIGS = 60
CAMPAIGN_CHUNK = 16


def _campaign_cells_per_second(backend, suite, configs, root, n_jobs):
    runner = CampaignRunner(
        backend, root, chunk_size=CAMPAIGN_CHUNK, n_jobs=n_jobs, seed=5
    )
    start = time.perf_counter()
    result = runner.run(suite, configs)
    elapsed = time.perf_counter() - start
    assert result.complete
    return result.total_cells / elapsed


def test_simulator_throughput(benchmark, record_artifact, record_json,
                              tmp_path):
    space = DesignSpace()
    suite = spec2000_suite().subset(CAMPAIGN_PROGRAMS)
    profile = suite["gzip"]
    configs = sample_configurations(space, BATCH, seed=77)
    interval = IntervalSimulator(space)

    def interval_batch():
        return interval.simulate_batch(profile, configs)

    benchmark(interval_batch)

    # One-shot measurements for the slower tiers.
    start = time.perf_counter()
    interval.simulate_batch(profile, configs)
    interval_rate = BATCH / (time.perf_counter() - start)

    # The program-major suite fast path: one column build for all
    # programs of the suite at once.
    start = time.perf_counter()
    interval.simulate_suite(list(suite.profiles), configs)
    suite_rate = len(suite) * BATCH / (time.perf_counter() - start)

    montecarlo = MonteCarloSimulator(space, replications=8)
    start = time.perf_counter()
    for config in configs[:20]:
        montecarlo.simulate(profile, config, seed=1)
    montecarlo_rate = 20 / (time.perf_counter() - start)

    # Pipeline tier: the event engine against its tick oracle on the
    # same trace — the speedup only counts if the stats stay identical.
    trace = generate_trace(profile, TRACE_LENGTH)
    start = time.perf_counter()
    event_result = PipelineSimulator(space.baseline, engine="event").run(
        trace
    )
    event_seconds = time.perf_counter() - start
    start = time.perf_counter()
    tick_result = PipelineSimulator(space.baseline, engine="tick").run(
        trace
    )
    tick_seconds = time.perf_counter() - start
    assert asdict(event_result.stats) == asdict(tick_result.stats)
    assert event_result.cycles == tick_result.cycles
    event_speedup = tick_seconds / event_seconds
    pipeline_rate = 1.0 / event_seconds

    # Campaign executor throughput (cells/second), serial and 2-way.
    campaign_configs = configs[:CAMPAIGN_CONFIGS]
    backend = IntervalBackend(interval)
    serial_cells = _campaign_cells_per_second(
        backend, suite, campaign_configs, tmp_path / "serial", n_jobs=1
    )
    parallel_cells = _campaign_cells_per_second(
        backend, suite, campaign_configs, tmp_path / "par", n_jobs=2
    )

    rows = [
        ("interval (vectorised)", f"{interval_rate:,.0f}", "bulk experiments"),
        ("interval suite (3 programs)", f"{suite_rate:,.0f}",
         "campaign fast path"),
        ("monte-carlo (8 windows)", f"{montecarlo_rate:,.1f}",
         "noisy-response studies"),
        (f"pipeline event ({TRACE_LENGTH} instr)", f"{pipeline_rate:,.2f}",
         "deep-dive / fidelity checks"),
        (f"pipeline tick ({TRACE_LENGTH} instr)",
         f"{1.0 / tick_seconds:,.2f}", "equivalence oracle"),
    ]
    text = (
        scale_banner(
            "Simulator throughput (configurations evaluated per second)",
            batch=BATCH,
        )
        + "\n"
        + format_table(("simulator", "configs/second", "role"), rows)
        + f"\nevent engine speedup over tick: {event_speedup:.2f}x"
        + f"\ncampaign cells/second: serial {serial_cells:,.1f}, "
        + f"2 jobs {parallel_cells:,.1f}"
    )
    record_artifact("simulator_throughput", text)
    record_json("BENCH_sim", {
        "configs_per_second": {
            "interval": interval_rate,
            "interval_suite": suite_rate,
            "montecarlo": montecarlo_rate,
            "pipeline_event": pipeline_rate,
            "pipeline_tick": 1.0 / tick_seconds,
        },
        "event_speedup_over_tick": event_speedup,
        "event_bit_identical_to_tick": True,  # asserted above
        "campaign_cells_per_second": {
            "serial": serial_cells,
            "jobs2": parallel_cells,
        },
        "trace_length": TRACE_LENGTH,
        "batch": BATCH,
        "campaign": {
            "programs": len(suite),
            "configs": CAMPAIGN_CONFIGS,
            "chunk_size": CAMPAIGN_CHUNK,
        },
    })

    # The methodology's premise: the bulk tier is vastly faster.  The
    # event rewrite closed most of the old monte-carlo/pipeline gap, so
    # the 10x guard now anchors on the tick oracle; the tiers must
    # still come out in order.
    assert interval_rate > 100 * montecarlo_rate
    assert montecarlo_rate > pipeline_rate
    assert montecarlo_rate > 10 / tick_seconds
    assert interval_rate > 1000
    # The tentpole's premise: event-driven execution beats ticking.
    assert event_speedup > 1.0
